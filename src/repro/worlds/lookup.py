"""The lookup world — simple multi-session goals and online learning.

The substrate for the Juba–Vempala connection ("Semantic Communication for
Simple Goals is Equivalent to On-line Learning", cited as the paper's [5]):
the world repeatedly poses queries from a finite domain; the user must
predict the label assigned by a hidden concept; feedback reports each
prediction's correctness.  A *mistake-bounded learner* is then literally a
good user strategy for this compact goal, and conversely — experiment E8
measures both directions.

The concept class used throughout is thresholds over ``{0..domain-1}``
(``label(x) = 1`` iff ``x >= θ``): simple, size ``domain+1``, and with the
classic gap between enumeration (mistakes ≈ index of θ) and halving
(mistakes ≤ log₂ |class|) that E8 exhibits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.comm.messages import WorldInbox, WorldOutbox, parse_tagged
from repro.core.goals import CompactGoal
from repro.core.referees import LastStateCompactReferee
from repro.core.sensing import GraceSensing, LastWorldMessageSensing, Sensing
from repro.core.strategy import WorldStrategy

EVENT_OK = "ok"
EVENT_BAD = "bad"
EVENT_NONE = "none"


def threshold_label(threshold: int, x: int) -> bool:
    """The concept: ``x`` is positive iff it reaches the threshold."""
    return x >= threshold


@dataclass(frozen=True)
class LookupState:
    """World state: the in-flight query and the score counters."""

    round_index: int = 0
    pending: Tuple[Tuple[int, int], ...] = ()  # (query, issue round)
    scored: int = 0
    mistakes: int = 0
    last_event: str = EVENT_NONE


class LookupWorld(WorldStrategy):
    """Poses threshold-labelling queries; scores ``PRED:<bit>`` replies.

    Mechanically a sibling of :class:`repro.worlds.control.ControlWorld`
    (FIFO scoring, deadline for unanswered queries, per-round feedback) but
    with no server involvement: the knowledge gap lives entirely between
    user and world, which is the "simple goal" shape of Juba–Vempala.
    """

    def __init__(
        self,
        threshold: int,
        domain: int,
        *,
        query_period: int = 3,
        deadline: int = 6,
    ) -> None:
        if domain < 2:
            raise ValueError(f"domain must be >= 2: {domain}")
        if not 0 <= threshold <= domain:
            raise ValueError(f"threshold must be in [0, {domain}]: {threshold}")
        if query_period < 1:
            raise ValueError(f"query_period must be >= 1: {query_period}")
        if deadline <= 2:
            raise ValueError(f"deadline must exceed the channel latency: {deadline}")
        self._threshold = threshold
        self._domain = domain
        self._query_period = query_period
        self._deadline = deadline

    @property
    def name(self) -> str:
        return f"lookup-world[θ={self._threshold},D={self._domain}]"

    def initial_state(self, rng: random.Random) -> LookupState:
        return LookupState()

    def step(
        self, state: LookupState, inbox: WorldInbox, rng: random.Random
    ) -> Tuple[LookupState, WorldOutbox]:
        pending = list(state.pending)
        scored = state.scored
        mistakes = state.mistakes
        event = EVENT_NONE

        parsed = parse_tagged(inbox.from_user)
        answered = False
        scored_query: Optional[int] = None
        if parsed is not None and parsed[0] == "PRED":
            # Predictions name the query they answer (``PRED:<x>=<bit>``),
            # for the same stale-in-flight reason as the control world's
            # ``ACT:<obs>=<action>`` format.
            query_text, sep, bit = parsed[1].partition("=")
            if sep and bit in ("0", "1"):
                for position, (query, _issued) in enumerate(pending):
                    if str(query) == query_text:
                        pending.pop(position)
                        scored += 1
                        answered = True
                        scored_query = query
                        truth = threshold_label(self._threshold, query)
                        if bit == ("1" if truth else "0"):
                            event = EVENT_OK
                        else:
                            mistakes += 1
                            event = EVENT_BAD
                        break
        if not answered and pending and state.round_index - pending[0][1] >= self._deadline:
            scored_query, _ = pending.pop(0)
            scored += 1
            mistakes += 1
            event = EVENT_BAD

        if state.round_index % self._query_period == 0:
            pending.append((rng.randrange(self._domain), state.round_index))

        new_state = LookupState(
            round_index=state.round_index + 1,
            pending=tuple(pending),
            scored=scored,
            mistakes=mistakes,
            last_event=event,
        )
        # Re-announce the oldest unanswered query each round (persistent
        # environment; see the control world for the rationale).
        query_text = str(pending[0][0]) if pending else "-"
        # Feedback names the scored query (``ok@3`` / ``bad@3``) so learners
        # can attribute the verdict without fragile FIFO assumptions.
        feedback = event if scored_query is None else f"{event}@{scored_query}"
        return new_state, WorldOutbox(to_user=f"Q:{query_text};FB:{feedback}")


def lookup_goal(
    threshold: int,
    domain: int,
    *,
    query_period: int = 3,
    deadline: int = 6,
    settle_fraction: float = 0.4,
) -> CompactGoal:
    """The compact goal "eventually always label queries correctly"."""
    return CompactGoal(
        name="lookup",
        world=LookupWorld(
            threshold, domain, query_period=query_period, deadline=deadline
        ),
        referee=LastStateCompactReferee(
            state_acceptable=lambda s: not (
                isinstance(s, LookupState) and s.last_event == EVENT_BAD
            ),
            label="no-mislabel",
        ),
        forgiving=True,
        settle_fraction=settle_fraction,
    )


def _feedback_not_bad(message: str) -> bool:
    _, _, fb = message.partition(";FB:")
    return not fb.startswith(EVENT_BAD)


def lookup_sensing(grace_rounds: int = 10) -> Sensing:
    """Last feedback was not a mislabel, with trial-local grace.

    Grace covers stale in-flight queries from an evicted candidate (period
    + deadline + latency), mirroring :func:`repro.worlds.control.control_sensing`.
    """
    return GraceSensing(
        LastWorldMessageSensing(
            predicate=_feedback_not_bad, default=True, label="lookup-fb"
        ),
        grace_rounds=grace_rounds,
    )
