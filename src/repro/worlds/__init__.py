"""Concrete worlds (environments) and their goals and sensing functions.

One module per goal family: the printer goal (:mod:`.printer`, finite,
side-effect-shaped), the delegation goal (:mod:`.computation`, finite,
knowledge-shaped), the control goal (:mod:`.control`, compact, advisor-
dependent) and the lookup goal (:mod:`.lookup`, compact, learning-shaped).
"""

from repro.worlds.printer import (
    PrinterWorld,
    PrinterState,
    PrintedReferee,
    PrintedTailSensing,
    printing_goal,
    printing_sensing,
)
from repro.worlds.computation import (
    ComputationWorld,
    ComputationState,
    CorrectAnswerReferee,
    VerifiedProofSensing,
    delegation_goal,
    delegation_sensing,
)
from repro.worlds.control import (
    ControlWorld,
    ControlState,
    control_goal,
    control_sensing,
    random_law,
    all_permutation_laws,
    DEFAULT_SYMBOLS,
)
from repro.worlds.counting import (
    CountingWorld,
    CountingState,
    CorrectCountReferee,
    VerifiedSumSensing,
    counting_goal,
    counting_sensing,
    canonical_order,
)
from repro.worlds.repeated import (
    RepeatedComputationWorld,
    RepeatedComputationState,
    repeated_delegation_goal,
    repeated_delegation_sensing,
)
from repro.worlds.navigation import (
    Grid,
    NavigationWorld,
    NavigationState,
    ArrivedReferee,
    navigation_goal,
    navigation_sensing,
    random_grid,
    corridor_grid,
    DIRECTIONS,
)
from repro.worlds.lookup import (
    LookupWorld,
    LookupState,
    lookup_goal,
    lookup_sensing,
    threshold_label,
)

__all__ = [
    "PrinterWorld",
    "PrinterState",
    "PrintedReferee",
    "PrintedTailSensing",
    "printing_goal",
    "printing_sensing",
    "ComputationWorld",
    "ComputationState",
    "CorrectAnswerReferee",
    "VerifiedProofSensing",
    "delegation_goal",
    "delegation_sensing",
    "ControlWorld",
    "ControlState",
    "control_goal",
    "control_sensing",
    "random_law",
    "all_permutation_laws",
    "DEFAULT_SYMBOLS",
    "CountingWorld",
    "CountingState",
    "CorrectCountReferee",
    "VerifiedSumSensing",
    "counting_goal",
    "counting_sensing",
    "canonical_order",
    "RepeatedComputationWorld",
    "RepeatedComputationState",
    "repeated_delegation_goal",
    "repeated_delegation_sensing",
    "Grid",
    "NavigationWorld",
    "NavigationState",
    "ArrivedReferee",
    "navigation_goal",
    "navigation_sensing",
    "random_grid",
    "corridor_grid",
    "DIRECTIONS",
    "LookupWorld",
    "LookupState",
    "lookup_goal",
    "lookup_sensing",
    "threshold_label",
]
