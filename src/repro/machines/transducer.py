"""Finite-state (Mealy) transducers as an enumerable strategy space.

The paper's universal users enumerate "all relevant user strategies".  The
classical way to make that concrete without full Turing machines is to
enumerate finite-state transducers: machines that, in each round, consume
one input symbol and emit one output symbol while moving between finitely
many states.  Every table of a given size is a strategy, the tables of all
sizes are recursively enumerable, and small tables already express the
protocol skeletons our toy goals need — so transducer enumerations exercise
the universal users on a *generic* class, complementing the hand-built
protocol classes used by the headline experiments.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, FrozenSet, Iterator, Optional, Tuple

from repro.comm.messages import UserInbox, UserOutbox
from repro.core.strategy import UserStrategy

if TYPE_CHECKING:
    from repro.core.batch import TabularParty


@dataclass(frozen=True)
class Transducer:
    """A deterministic Mealy machine over symbol alphabets.

    ``transitions[state][input_index]`` is the next state;
    ``outputs[state][input_index]`` is the index of the emitted symbol.
    Symbols outside the input alphabet are read as index 0 (a total machine
    never crashes on foreign input — essential when the counterpart speaks
    an unknown language).
    """

    input_alphabet: Tuple[str, ...]
    output_alphabet: Tuple[str, ...]
    transitions: Tuple[Tuple[int, ...], ...]
    outputs: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        n = self.n_states
        if n == 0:
            raise ValueError("transducer needs at least one state")
        if len(self.outputs) != n:
            raise ValueError("transitions/outputs row count mismatch")
        width = len(self.input_alphabet)
        for row in self.transitions:
            if len(row) != width:
                raise ValueError("transition row width != input alphabet size")
            if any(not 0 <= s < n for s in row):
                raise ValueError("transition target out of range")
        for row in self.outputs:
            if len(row) != width:
                raise ValueError("output row width != input alphabet size")
            if any(not 0 <= o < len(self.output_alphabet) for o in row):
                raise ValueError("output index out of range")

    @property
    def n_states(self) -> int:
        return len(self.transitions)

    def symbol_index(self, symbol: str) -> int:
        """Index of ``symbol`` in the input alphabet (0 for foreign symbols)."""
        try:
            return self.input_alphabet.index(symbol)
        except ValueError:
            return 0

    def step(self, state: int, symbol: str) -> Tuple[int, str]:
        """Consume one symbol: return (next state, emitted symbol)."""
        j = self.symbol_index(symbol)
        return self.transitions[state][j], self.output_alphabet[self.outputs[state][j]]


def enumerate_transducers(
    n_states: int,
    input_alphabet: Tuple[str, ...],
    output_alphabet: Tuple[str, ...],
) -> Iterator[Transducer]:
    """Lazily yield every transducer with exactly ``n_states`` states.

    The count is ``(n_states * |output|) ** (n_states * |input|)``; callers
    should keep the parameters tiny (the point is the enumeration dynamics,
    not scale).  The order is deterministic: lexicographic over the flat
    (next-state, output) table.
    """
    if n_states <= 0:
        raise ValueError(f"n_states must be positive: {n_states}")
    cells = n_states * len(input_alphabet)
    choices = list(itertools.product(range(n_states), range(len(output_alphabet))))
    for table in itertools.product(choices, repeat=cells):
        transitions = tuple(
            tuple(table[s * len(input_alphabet) + j][0] for j in range(len(input_alphabet)))
            for s in range(n_states)
        )
        outputs = tuple(
            tuple(table[s * len(input_alphabet) + j][1] for j in range(len(input_alphabet)))
            for s in range(n_states)
        )
        yield Transducer(input_alphabet, output_alphabet, transitions, outputs)


def enumerate_all_transducers(
    input_alphabet: Tuple[str, ...],
    output_alphabet: Tuple[str, ...],
    max_states: Optional[int] = None,
) -> Iterator[Transducer]:
    """Dovetail transducer enumeration across state counts 1, 2, ...

    With ``max_states=None`` this is an infinite enumeration covering every
    finite-state strategy over the given alphabets — the closest bounded
    analogue of the paper's "all user strategies".
    """
    n = 1
    while max_states is None or n <= max_states:
        yield from enumerate_transducers(n, input_alphabet, output_alphabet)
        n += 1


class TransducerUser(UserStrategy):
    """Adapts a :class:`Transducer` into a user strategy.

    ``observe`` extracts the round's input symbol from the inbox (default:
    the server's message); ``emit`` turns the machine's output symbol into
    an outbox (default: send it to the server).  The adapters carry the
    role-plumbing so the transducer itself stays a pure table.
    """

    def __init__(
        self,
        transducer: Transducer,
        *,
        observe: Optional[Callable[[UserInbox], str]] = None,
        emit: Optional[Callable[[str], UserOutbox]] = None,
        label: str = "transducer",
    ) -> None:
        self._transducer = transducer
        # Default wiring (server-channel in, server-channel out) is what the
        # vectorized batch tier can compile; custom adapters are opaque.
        self._default_wiring = observe is None and emit is None
        self._observe = observe or (lambda inbox: inbox.from_server)
        self._emit = emit or (lambda symbol: UserOutbox(to_server=symbol))
        self._label = label

    @property
    def name(self) -> str:
        return f"{self._label}[{self._transducer.n_states}]"

    def initial_state(self, rng: random.Random) -> int:
        return 0

    def step(
        self, state: int, inbox: UserInbox, rng: random.Random
    ) -> Tuple[int, UserOutbox]:
        symbol = self._observe(inbox)
        new_state, out_symbol = self._transducer.step(state, symbol)
        return new_state, self._emit(out_symbol)

    # -- TabularStrategy protocol (see repro.core.batch) --------------------

    def tabular_symbols(self, inputs: FrozenSet[str]) -> FrozenSet[str]:
        """Everything the machine can emit (its whole output alphabet)."""
        if not self._default_wiring:
            raise ValueError(
                "TransducerUser with custom observe/emit adapters cannot be "
                "compiled to tables"
            )
        return frozenset(self._transducer.output_alphabet)

    def tabular_party(self, alphabet: Tuple[str, ...]) -> "TabularParty":
        """Compile the Mealy table over the batch's global alphabet.

        Input indexing follows :meth:`Transducer.symbol_index` exactly
        (foreign symbols, including silence, read as index 0), so the
        compiled table reproduces the scalar adapter on any input stream
        drawn from ``alphabet``.
        """
        from repro.core.batch import TabularParty

        if not self._default_wiring:
            raise ValueError(
                "TransducerUser with custom observe/emit adapters cannot be "
                "compiled to tables"
            )
        machine = self._transducer
        n = len(alphabet)
        local_in = [machine.symbol_index(symbol) for symbol in alphabet]
        out_index = []
        for symbol in machine.output_alphabet:
            if symbol not in alphabet:
                raise ValueError(f"output symbol missing from alphabet: {symbol!r}")
            out_index.append(alphabet.index(symbol))
        next_state = tuple(
            tuple(
                tuple(machine.transitions[s][local_in[a]] for _b in range(n))
                for a in range(n)
            )
            for s in range(machine.n_states)
        )
        out_a = tuple(
            tuple(
                tuple(
                    out_index[machine.outputs[s][local_in[a]]] for _b in range(n)
                )
                for a in range(n)
            )
            for s in range(machine.n_states)
        )
        silence_row = tuple(tuple(0 for _b in range(n)) for _a in range(n))
        out_b = tuple(silence_row for _s in range(machine.n_states))
        return TabularParty(
            n_symbols=n,
            initial_state=0,
            next_state=next_state,
            out_a=out_a,
            out_b=out_b,
        )
