"""Generic, enumerable strategy machines (transducers and the GVM).

These stand in for the paper's "all user strategies": recursively
enumerable spaces of total machines from which the universal users draw
candidates (see the substitution table in DESIGN.md).
"""

from repro.machines.transducer import (
    Transducer,
    TransducerUser,
    enumerate_transducers,
    enumerate_all_transducers,
)
from repro.machines.vm import (
    Program,
    Instruction,
    VMUser,
    run_program,
    OPCODES,
    PUSH,
    DROP,
    DUP,
    SWAP,
    ADD,
    SUB,
    READ,
    WRITE,
    JMP,
    JNZ,
    HALT,
)
from repro.machines.enumerators import (
    transducer_user_enumeration,
    vm_user_enumeration,
    enumerate_programs,
)

__all__ = [
    "Transducer",
    "TransducerUser",
    "enumerate_transducers",
    "enumerate_all_transducers",
    "Program",
    "Instruction",
    "VMUser",
    "run_program",
    "OPCODES",
    "PUSH",
    "DROP",
    "DUP",
    "SWAP",
    "ADD",
    "SUB",
    "READ",
    "WRITE",
    "JMP",
    "JNZ",
    "HALT",
    "transducer_user_enumeration",
    "vm_user_enumeration",
    "enumerate_programs",
]
