"""GVM — a tiny bounded-step stack machine for program enumeration.

A second generic strategy space, closer in spirit to "all algorithms" than
the transducer tables: GVM programs are short instruction sequences over a
stack of integers with character I/O.  Programs of all lengths are
recursively enumerable (see :mod:`repro.machines.enumerators`), every
program is total (execution is cut off after ``max_steps``), and a program
defines a user strategy by mapping each round's incoming message to an
outgoing one.

The instruction set is deliberately minimal — just enough to express the
string transformations (echo, reverse, shift, tag manipulation) that our
toy servers demand — because enumeration cost grows exponentially with the
instruction vocabulary.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, FrozenSet, List, Tuple

from repro.comm.messages import UserInbox, UserOutbox
from repro.core.strategy import UserStrategy

if TYPE_CHECKING:
    from repro.core.batch import TabularParty

#: Opcodes.  ``arg`` is meaningful only where noted.
PUSH = "PUSH"    # push arg
DROP = "DROP"    # pop and discard
DUP = "DUP"      # duplicate top
SWAP = "SWAP"    # swap top two
ADD = "ADD"      # pop b, a; push a+b
SUB = "SUB"      # pop b, a; push a-b
READ = "READ"    # push code of next input char, or -1 past end
WRITE = "WRITE"  # pop; if in [0, 0x10FFFF], append chr to output
JMP = "JMP"      # jump to instruction arg
JNZ = "JNZ"      # pop; jump to arg when nonzero
HALT = "HALT"    # stop

OPCODES = (PUSH, DROP, DUP, SWAP, ADD, SUB, READ, WRITE, JMP, JNZ, HALT)
_ARG_OPS = frozenset({PUSH, JMP, JNZ})

#: Instruction: (opcode, argument); the argument is 0 for argless opcodes.
Instruction = Tuple[str, int]


@dataclass(frozen=True)
class Program:
    """An immutable GVM program."""

    instructions: Tuple[Instruction, ...]

    def __post_init__(self) -> None:
        for op, _arg in self.instructions:
            if op not in OPCODES:
                raise ValueError(f"unknown opcode: {op}")

    def __len__(self) -> int:
        return len(self.instructions)

    def format(self) -> str:
        """Render like ``READ; PUSH 1; ADD; WRITE; HALT``."""
        parts = []
        for op, arg in self.instructions:
            parts.append(f"{op} {arg}" if op in _ARG_OPS else op)
        return "; ".join(parts)


def run_program(program: Program, input_text: str, *, max_steps: int = 512) -> str:
    """Execute ``program`` on ``input_text``; return the produced output.

    Execution is total: stack underflow reads 0, out-of-range jumps halt,
    and the step budget cuts infinite loops.  Totality matters because the
    enumeration feeds *arbitrary* programs to live executions — a crashing
    candidate would crash the universal user, whereas a merely useless one
    is just switched away from.
    """
    if max_steps <= 0:
        raise ValueError(f"max_steps must be positive: {max_steps}")
    stack: List[int] = []
    out: List[str] = []
    cursor = 0  # next input character
    pc = 0
    code = program.instructions

    def pop() -> int:
        return stack.pop() if stack else 0

    for _ in range(max_steps):
        if not 0 <= pc < len(code):
            break
        op, arg = code[pc]
        pc += 1
        if op == PUSH:
            stack.append(arg)
        elif op == DROP:
            pop()
        elif op == DUP:
            top = pop()
            stack.append(top)
            stack.append(top)
        elif op == SWAP:
            b, a = pop(), pop()
            stack.append(b)
            stack.append(a)
        elif op == ADD:
            b, a = pop(), pop()
            stack.append(a + b)
        elif op == SUB:
            b, a = pop(), pop()
            stack.append(a - b)
        elif op == READ:
            if cursor < len(input_text):
                stack.append(ord(input_text[cursor]))
                cursor += 1
            else:
                stack.append(-1)
        elif op == WRITE:
            value = pop()
            if 0 <= value <= 0x10FFFF:
                out.append(chr(value))
        elif op == JMP:
            pc = arg
        elif op == JNZ:
            if pop() != 0:
                pc = arg
        elif op == HALT:
            break
    return "".join(out)


class VMUser(UserStrategy):
    """A user strategy defined by one GVM program.

    Each round, the program maps the server's incoming message to the
    message sent back to the server.  This is a *memoryless* strategy (the
    program restarts each round); composing programs with round counters is
    possible but unnecessary for the enumeration experiments.
    """

    def __init__(self, program: Program, *, max_steps: int = 512, label: str = "gvm") -> None:
        self._program = program
        self._max_steps = max_steps
        self._label = label

    @property
    def name(self) -> str:
        return f"{self._label}({self._program.format()})"

    @property
    def program(self) -> Program:
        return self._program

    def initial_state(self, rng: random.Random) -> int:
        return 0

    def step(
        self, state: int, inbox: UserInbox, rng: random.Random
    ) -> Tuple[int, UserOutbox]:
        reply = run_program(self._program, inbox.from_server, max_steps=self._max_steps)
        return state + 1, UserOutbox(to_server=reply)

    # -- TabularStrategy protocol (see repro.core.batch) --------------------
    #
    # The program is memoryless, so it compiles to a one-state table whose
    # output column is the program evaluated on each alphabet symbol at
    # compile time.  (The scalar adapter's round-counter state is dropped;
    # the batch tier reports metrics, not final user states.)

    def tabular_symbols(self, inputs: FrozenSet[str]) -> FrozenSet[str]:
        """Image of the program over every symbol it might receive."""
        return frozenset(
            run_program(self._program, symbol, max_steps=self._max_steps)
            for symbol in inputs
        )

    def tabular_party(self, alphabet: Tuple[str, ...]) -> "TabularParty":
        from repro.core.batch import TabularParty

        n = len(alphabet)
        replies = []
        for symbol in alphabet:
            reply = run_program(self._program, symbol, max_steps=self._max_steps)
            if reply not in alphabet:
                raise ValueError(f"program output missing from alphabet: {reply!r}")
            replies.append(alphabet.index(reply))
        out_a = (tuple(tuple(replies[a] for _b in range(n)) for a in range(n)),)
        silence_row = tuple(tuple(0 for _b in range(n)) for _a in range(n))
        return TabularParty(
            n_symbols=n,
            initial_state=0,
            next_state=(tuple(tuple(0 for _b in range(n)) for _a in range(n)),),
            out_a=out_a,
            out_b=(silence_row,),
        )
