"""Enumerations of machine-defined user strategies.

Bridges :mod:`repro.machines` to :mod:`repro.universal`: wraps transducer
tables and GVM programs into :class:`~repro.universal.enumeration.GeneratorEnumeration`
objects the universal users can consume.  These are the "generic class"
enumerations — huge, mostly-useless candidate spaces through which the
enumeration dynamics of Theorem 1 can be observed at full generality.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator, Optional, Sequence, Tuple

from repro.comm.messages import UserInbox, UserOutbox
from repro.core.strategy import UserStrategy
from repro.machines.transducer import (
    TransducerUser,
    enumerate_all_transducers,
)
from repro.machines.vm import _ARG_OPS, OPCODES, Program, VMUser
from repro.universal.enumeration import GeneratorEnumeration


def transducer_user_enumeration(
    input_alphabet: Tuple[str, ...],
    output_alphabet: Tuple[str, ...],
    *,
    max_states: Optional[int] = None,
    observe: Optional[Callable[[UserInbox], str]] = None,
    emit: Optional[Callable[[str], UserOutbox]] = None,
) -> GeneratorEnumeration:
    """All transducer strategies over the given alphabets, smallest first."""

    def factory() -> Iterator[UserStrategy]:
        for transducer in enumerate_all_transducers(
            input_alphabet, output_alphabet, max_states=max_states
        ):
            yield TransducerUser(transducer, observe=observe, emit=emit)

    return GeneratorEnumeration(factory, label="transducers")


def enumerate_programs(
    *,
    max_length: Optional[int] = None,
    constants: Sequence[int] = (0, 1, 2),
    opcodes: Sequence[str] = OPCODES,
) -> Iterator[Program]:
    """Yield every GVM program, shortest first, lexicographic within length.

    Jump targets and PUSH arguments range over ``constants`` plus the
    instruction positions of the program (for jumps), approximated here by
    drawing both from ``constants`` — enumeration completeness over a
    restricted but expressive program space.
    """
    per_slot: list = []
    for op in opcodes:
        if op in _ARG_OPS:
            per_slot.extend((op, c) for c in constants)
        else:
            per_slot.append((op, 0))
    length = 1
    while max_length is None or length <= max_length:
        for body in itertools.product(per_slot, repeat=length):
            yield Program(tuple(body))
        length += 1


def vm_user_enumeration(
    *,
    max_length: Optional[int] = None,
    constants: Sequence[int] = (0, 1, 2),
    max_steps: int = 256,
) -> GeneratorEnumeration:
    """All GVM-program strategies, shortest program first."""

    def factory() -> Iterator[UserStrategy]:
        for program in enumerate_programs(max_length=max_length, constants=constants):
            yield VMUser(program, max_steps=max_steps)

    return GeneratorEnumeration(factory, label="gvm-programs")
