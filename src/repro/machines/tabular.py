"""Tabular strategies: finite-state parties the batched engine can vectorize.

:mod:`repro.core.batch` defines *what* a vectorizable party is — a
:class:`~repro.core.batch.TabularParty` table over an interned message
alphabet.  This module provides the concrete pieces:

* :class:`TabularUser` / :class:`TabularServer` / :class:`TabularWorld` —
  strategy adapters that run a table scalarly through the ordinary engine
  *and* hand the same table to the vectorized kernel.  One definition, two
  execution tiers, parity by construction.
* Cast builders for the **relay goal** — the vectorizable analogue of the
  control experiments' language-mismatch setting: the world cycles through
  challenge symbols, the user relays each challenge to the server, the
  server answers in *its* vocabulary (a permutation codec), and the user's
  fixed decoder must invert it for the world to score the echo correct.
  A (decoder, server-class) sweep over these casts has exactly one
  achieving cell per matching codec — the same shape as the password and
  advisor grids, at vector throughput.

Every adapter here is deterministic and RNG-free (states are plain ints,
``initial_state`` ignores its rng), which is precisely the condition the
vectorized kernel needs; the scalar adapters remain full citizens of the
ordinary engine, usable in any sweep, fault grid, or trace.
"""

from __future__ import annotations

import random
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.comm.messages import (
    SILENCE,
    ServerInbox,
    ServerOutbox,
    UserInbox,
    UserOutbox,
    WorldInbox,
    WorldOutbox,
)
from repro.core.batch import TabularParty
from repro.core.goals import CompactGoal
from repro.core.referees import LastStateCompactReferee
from repro.core.strategy import ServerStrategy, UserStrategy, WorldStrategy

Table = Tuple[Tuple[Tuple[int, ...], ...], ...]


class _TabularBase:
    """Shared mechanics: a local alphabet plus a party table over it.

    ``alphabet[0]`` must be :data:`~repro.comm.messages.SILENCE`; incoming
    messages outside the alphabet read as index 0, mirroring
    :meth:`repro.machines.transducer.Transducer.symbol_index` totality.
    """

    def __init__(
        self, party: TabularParty, alphabet: Tuple[str, ...], label: str
    ) -> None:
        if not alphabet or alphabet[0] != SILENCE:
            raise ValueError("tabular alphabet must start with SILENCE")
        if len(set(alphabet)) != len(alphabet):
            raise ValueError("tabular alphabet has duplicate symbols")
        if party.n_symbols != len(alphabet):
            raise ValueError("party table width != alphabet size")
        self._party = party
        self._alphabet = alphabet
        self._index: Dict[str, int] = {s: i for i, s in enumerate(alphabet)}
        self._label = label

    @property
    def name(self) -> str:
        return self._label

    @property
    def party(self) -> TabularParty:
        """The underlying table (over this strategy's *local* alphabet)."""
        return self._party

    @property
    def alphabet(self) -> Tuple[str, ...]:
        return self._alphabet

    def initial_state(self, rng: random.Random) -> int:
        return self._party.initial_state

    def _in(self, message: str) -> int:
        return self._index.get(message, 0)

    def _step_indices(self, state: int, in_a: str, in_b: str) -> Tuple[int, str, str]:
        a, b = self._in(in_a), self._in(in_b)
        party = self._party
        return (
            party.next_state[state][a][b],
            self._alphabet[party.out_a[state][a][b]],
            self._alphabet[party.out_b[state][a][b]],
        )

    # -- TabularStrategy protocol -------------------------------------------

    def tabular_symbols(self, inputs: FrozenSet[str]) -> FrozenSet[str]:
        """All symbols this party's output tables can ever emit."""
        party = self._party
        emitted = set()
        for table in (party.out_a, party.out_b):
            for plane in table:
                for row in plane:
                    emitted.update(row)
        return frozenset(self._alphabet[i] for i in emitted)

    def tabular_party(self, alphabet: Tuple[str, ...]) -> TabularParty:
        """Re-index the local table over the compiler's global alphabet."""
        local_in = [self._in(symbol) for symbol in alphabet]
        try:
            local_out = {
                i: alphabet.index(symbol) for i, symbol in enumerate(self._alphabet)
            }
        except ValueError as error:  # pragma: no cover - closure prevents this
            raise ValueError(f"symbol missing from global alphabet: {error}")
        party = self._party
        n = len(alphabet)
        next_state = tuple(
            tuple(
                tuple(party.next_state[s][local_in[a]][local_in[b]] for b in range(n))
                for a in range(n)
            )
            for s in range(party.n_states)
        )
        out_a = tuple(
            tuple(
                tuple(
                    local_out[party.out_a[s][local_in[a]][local_in[b]]]
                    for b in range(n)
                )
                for a in range(n)
            )
            for s in range(party.n_states)
        )
        out_b = tuple(
            tuple(
                tuple(
                    local_out[party.out_b[s][local_in[a]][local_in[b]]]
                    for b in range(n)
                )
                for a in range(n)
            )
            for s in range(party.n_states)
        )
        return TabularParty(
            n_symbols=n,
            initial_state=party.initial_state,
            next_state=next_state,
            out_a=out_a,
            out_b=out_b,
        )


class TabularUser(_TabularBase, UserStrategy):
    """A user strategy defined by a table: in (from_server, from_world),
    out (to_server, to_world).  Never halts (compact goals)."""

    def step(
        self, state: int, inbox: UserInbox, rng: random.Random
    ) -> Tuple[int, UserOutbox]:
        nxt, to_server, to_world = self._step_indices(
            state, inbox.from_server, inbox.from_world
        )
        return nxt, UserOutbox(to_server=to_server, to_world=to_world)


class TabularServer(_TabularBase, ServerStrategy):
    """A server strategy defined by a table: in (from_user, from_world),
    out (to_user, to_world)."""

    def step(
        self, state: int, inbox: ServerInbox, rng: random.Random
    ) -> Tuple[int, ServerOutbox]:
        nxt, to_user, to_world = self._step_indices(
            state, inbox.from_user, inbox.from_world
        )
        return nxt, ServerOutbox(to_user=to_user, to_world=to_world)


class TabularWorld(_TabularBase, WorldStrategy):
    """A world strategy defined by a table: in (from_user, from_server),
    out (to_user, to_server).  States are ints, so local referees
    (:class:`~repro.core.referees.LastStateCompactReferee`) reduce to a
    per-state flag lookup — which is what the vectorized kernel exploits."""

    def step(
        self, state: int, inbox: WorldInbox, rng: random.Random
    ) -> Tuple[int, WorldOutbox]:
        nxt, to_user, to_server = self._step_indices(
            state, inbox.from_user, inbox.from_server
        )
        return nxt, WorldOutbox(to_user=to_user, to_server=to_server)


# ---------------------------------------------------------------------------
# Table construction helpers.
# ---------------------------------------------------------------------------

#: ``rule(state, in_a, in_b) -> (next_state, out_a_symbol, out_b_symbol)``.
TransitionRule = Callable[[int, str, str], Tuple[int, str, str]]


def _build_party(
    alphabet: Tuple[str, ...],
    n_states: int,
    initial_state: int,
    rule: "TransitionRule",
) -> TabularParty:
    """Materialise a transition rule into dense S×A×A tables."""
    index = {s: i for i, s in enumerate(alphabet)}
    next_rows: List[Tuple[Tuple[int, ...], ...]] = []
    out_a_rows: List[Tuple[Tuple[int, ...], ...]] = []
    out_b_rows: List[Tuple[Tuple[int, ...], ...]] = []
    for state in range(n_states):
        next_plane: List[Tuple[int, ...]] = []
        out_a_plane: List[Tuple[int, ...]] = []
        out_b_plane: List[Tuple[int, ...]] = []
        for a_sym in alphabet:
            next_row: List[int] = []
            out_a_row: List[int] = []
            out_b_row: List[int] = []
            for b_sym in alphabet:
                nxt, out_a, out_b = rule(state, a_sym, b_sym)
                next_row.append(nxt)
                out_a_row.append(index[out_a])
                out_b_row.append(index[out_b])
            next_plane.append(tuple(next_row))
            out_a_plane.append(tuple(out_a_row))
            out_b_plane.append(tuple(out_b_row))
        next_rows.append(tuple(next_plane))
        out_a_rows.append(tuple(out_a_plane))
        out_b_rows.append(tuple(out_b_plane))
    return TabularParty(
        n_symbols=len(alphabet),
        initial_state=initial_state,
        next_state=tuple(next_rows),
        out_a=tuple(out_a_rows),
        out_b=tuple(out_b_rows),
    )


# ---------------------------------------------------------------------------
# The relay goal: a vectorizable language-mismatch cast.
# ---------------------------------------------------------------------------

#: Rounds from a world emission to the relayed, decoded reply's return:
#: world→user (1) + user→server (1) + server→user (1) + user→world (1).
RELAY_LATENCY = 4


def relay_user(
    symbols: Sequence[str],
    decode: Optional[Mapping[str, str]] = None,
    *,
    label: str = "relay",
) -> TabularUser:
    """The relay user: forwards challenges, decodes answers.

    Each round it sends the world's last message to the server verbatim
    and the server's last message — run through ``decode`` (default: the
    identity) — to the world.  Memoryless (one state): the whole strategy
    is its decoder, which is exactly the degree of freedom the relay goal
    quantifies over.
    """
    decode = dict(decode) if decode is not None else {s: s for s in symbols}
    unknown = set(decode) - set(symbols)
    if unknown:
        raise ValueError(f"decoder maps symbols outside the alphabet: {unknown}")
    alphabet = (SILENCE, *symbols)

    def rule(state: int, from_server: str, from_world: str) -> Tuple[int, str, str]:
        to_server = from_world if from_world in decode else SILENCE
        decoded = decode.get(from_server, SILENCE)
        return 0, to_server, decoded

    return TabularUser(_build_party(alphabet, 1, 0, rule), alphabet, label)


def coded_server(
    symbols: Sequence[str],
    code: Mapping[str, str],
    *,
    label: Optional[str] = None,
) -> TabularServer:
    """A server that answers each relayed challenge in its own vocabulary.

    ``code`` maps challenge symbols to answer symbols (a permutation for
    the classic language-mismatch class); anything else reads as silence.
    Stateless — its helpfulness is entirely in how it is decoded.
    """
    if set(code) != set(symbols) or set(code.values()) != set(symbols):
        raise ValueError("code must be a bijection over the symbol alphabet")
    alphabet = (SILENCE, *symbols)

    def rule(state: int, from_user: str, from_world: str) -> Tuple[int, str, str]:
        return 0, code.get(from_user, SILENCE), SILENCE

    name = label if label is not None else "coded[" + "".join(
        code[s][:1] for s in symbols
    ) + "]"
    return TabularServer(_build_party(alphabet, 1, 0, rule), alphabet, name)


def coded_server_class(
    symbols: Sequence[str], count: Optional[int] = None
) -> List[TabularServer]:
    """The cyclic-shift family of coded servers (deterministic order).

    Server *k* answers challenge ``symbols[i]`` with ``symbols[(i+k) % n]``;
    server 0 speaks the user's language.  ``count`` defaults to one server
    per shift.
    """
    ordered = list(symbols)
    n = len(ordered)
    members = count if count is not None else n
    servers = []
    for k in range(members):
        code = {ordered[i]: ordered[(i + k) % n] for i in range(n)}
        servers.append(coded_server(ordered, code, label=f"coded-shift{k % n}"))
    return servers


def relay_decoder_class(symbols: Sequence[str]) -> List[TabularUser]:
    """The matching decoder family: decoder *k* inverts coded server *k*."""
    ordered = list(symbols)
    n = len(ordered)
    users = []
    for k in range(n):
        decode = {ordered[(i + k) % n]: ordered[i] for i in range(n)}
        users.append(relay_user(ordered, decode, label=f"relay-shift{k}"))
    return users


def cycle_world(
    symbols: Sequence[str],
    *,
    latency: int = RELAY_LATENCY,
    label: str = "cycle-world",
) -> Tuple[TabularWorld, Tuple[bool, ...]]:
    """The relay world plus its per-state acceptability flags.

    Emits challenge ``symbols[r % n]`` to the user each round *r* and
    checks the user's incoming message against the challenge issued
    ``latency`` rounds earlier (the pipeline depth of
    world→user→server→user→world).  States encode ``(phase, warmup,
    last-check-ok)``; a state is acceptable iff its last check passed —
    warmup rounds (nothing due back yet) always pass.
    """
    ordered = tuple(symbols)
    n = len(ordered)
    if n == 0:
        raise ValueError("cycle world needs a non-empty symbol alphabet")
    if latency < 1:
        raise ValueError(f"latency must be >= 1: {latency}")
    alphabet = (SILENCE, *ordered)

    # State id encodes (phase in [0, n), warm in [0, latency], ok flag).
    def encode(phase: int, warm: int, ok: bool) -> int:
        return (phase * (latency + 1) + warm) * 2 + (1 if ok else 0)

    n_states = n * (latency + 1) * 2

    def rule(state: int, from_user: str, from_server: str) -> Tuple[int, str, str]:
        ok_bit = state % 2
        rest = state // 2
        warm = rest % (latency + 1)
        phase = rest // (latency + 1)
        del ok_bit  # the flag records the *previous* check; recomputed below
        if warm < latency:
            checked_ok = True  # nothing due back yet
        else:
            expected = ordered[(phase - latency) % n]
            checked_ok = from_user == expected
        next_state = encode(
            (phase + 1) % n, min(warm + 1, latency), checked_ok
        )
        return next_state, ordered[phase], SILENCE

    world = TabularWorld(
        _build_party(alphabet, n_states, encode(0, 0, True), rule),
        alphabet,
        f"{label}[{n}]",
    )
    flags = tuple(state % 2 == 1 for state in range(n_states))
    return world, flags


class StateFlagPredicate:
    """A picklable per-state-id acceptability predicate (no lambdas)."""

    def __init__(self, flags: Tuple[bool, ...]) -> None:
        self.flags = flags

    def __call__(self, state: int) -> bool:
        return bool(self.flags[state])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StateFlagPredicate) and self.flags == other.flags

    def __hash__(self) -> int:
        return hash(self.flags)


def relay_goal(
    symbols: Sequence[str],
    *,
    latency: int = RELAY_LATENCY,
    settle_fraction: float = 0.5,
) -> CompactGoal:
    """The relay echo goal: a compact goal the vectorized kernel can judge.

    Forgiving in the paper's sense: the world re-challenges forever, so any
    finite prefix of mistakes can be followed by an all-correct tail (the
    matching decoder achieves exactly that from any point).
    """
    world, flags = cycle_world(symbols, latency=latency)
    return CompactGoal(
        name=f"relay-echo[{len(tuple(symbols))}]",
        world=world,
        referee=LastStateCompactReferee(
            state_acceptable=StateFlagPredicate(flags), label="relay-echo"
        ),
        settle_fraction=settle_fraction,
    )
