"""repro — an executable reproduction of *A Theory of Goal-Oriented
Communication* (Goldreich, Juba, Sudan; PODC 2011).

The paper models communication as a means to a *goal*: a synchronous
three-party system (user, server, world) where the goal is a referee
predicate over the world's state history, the server is adversarially
chosen from a class (modelling protocol/language mismatch), and *sensing*
— safe and viable Boolean feedback — is what makes *universal* user
strategies possible (Theorem 1).

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.core` — strategies, execution engine, goals, referees,
  sensing, helpfulness, property checkers (the model itself);
- :mod:`repro.comm` — messages, channels, codecs (language mismatch);
- :mod:`repro.universal` — the Theorem 1 universal users (enumerate-and-
  switch for compact goals, Levin-scheduled for finite goals);
- :mod:`repro.machines` — enumerable generic strategy spaces;
- :mod:`repro.mathx`, :mod:`repro.qbf`, :mod:`repro.ip` — the delegation
  substrate: fields, polynomials, TQBF, and the Shamir/Shen interactive
  proof plus sumcheck;
- :mod:`repro.worlds`, :mod:`repro.servers`, :mod:`repro.users` — concrete
  goals (printing, delegation, control, lookup) with their server classes
  and candidate user protocols;
- :mod:`repro.online` — the Juba–Vempala learning equivalence;
- :mod:`repro.multiparty` — the N-party setting and its reduction;
- :mod:`repro.obs` — structured tracing/metrics for all of the above
  (typed events, counters, timers, deterministic JSONL sinks);
- :mod:`repro.analysis` — experiment sweeps, metrics, tables.

Quickstart::

    from repro.comm.codecs import codec_family
    from repro.core import run_execution
    from repro.universal import CompactUniversalUser, ListEnumeration
    from repro.worlds import control_goal, control_sensing, random_law
    from repro.servers import advisor_server_class
    from repro.users import follower_user_class
    import random

    law = random_law(random.Random(0))
    goal = control_goal(law)
    codecs = codec_family(8)
    user = CompactUniversalUser(
        ListEnumeration(follower_user_class(codecs)), control_sensing()
    )
    server = advisor_server_class(law, codecs)[5]   # adversary's pick
    result = run_execution(user, server, goal.world, max_rounds=2000, seed=1)
    assert goal.evaluate(result).achieved
"""

from repro.version import __version__

__all__ = ["__version__"]
