"""Exception hierarchy for the goal-oriented communication library.

Every error raised by this package derives from :class:`ReproError`, so a
caller can catch the whole family with a single ``except`` clause while the
engine, protocol, and algebra layers keep distinct, meaningful types.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ProtocolError(ReproError):
    """A message violated the wire format a strategy expected.

    Strategies that *interact with untrusted peers* (verifiers, universal
    users) should never raise this during an execution: a malformed message
    from an adversarial server is an expected event, handled by rejecting.
    The error is reserved for local misuse of protocol helpers.
    """


class ExecutionError(ReproError):
    """The synchronous execution engine was driven into an invalid state."""


class EnumerationExhaustedError(ReproError):
    """A finite strategy enumeration ran out of candidates.

    The paper's universal users assume an infinite (or sufficient) class of
    candidate strategies; with the bounded classes used in experiments this
    error signals that no candidate in the class works with the given server
    (i.e., the server is not helpful for the class).
    """


class AlgebraError(ReproError):
    """Invalid algebraic operation (mixed fields, bad degree, etc.)."""


class FormulaError(ReproError):
    """Malformed Boolean formula or quantified Boolean formula."""


class VerificationError(ReproError):
    """An interactive-proof verifier detected cheating.

    Raised only by the *function-level* protocol drivers where an exception
    is the natural control flow.  The strategy-level verifier converts this
    into a rejection message instead of raising.
    """


class CodecError(ReproError):
    """A codec could not decode a message (non-image input)."""


class ServeError(ReproError):
    """The session service was misused or refused an operation.

    Covers lifecycle misuse (stepping a closed session, submitting to a
    closed engine) and admission-control refusals; the engine's
    backpressure rejection is the :class:`repro.serve.engine.SessionRejected`
    subclass so load generators can catch it specifically.
    """
