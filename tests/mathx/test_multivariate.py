"""Tests for grid-sampled multivariate polynomials."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AlgebraError
from repro.mathx.modular import Field
from repro.mathx.multivariate import GridPoly, _lagrange_at

F = Field()


def quadratic_in_x_linear_in_y(a):
    """f(x, y) = 3x²y + 2x + y + 5 — degree (2, 1)."""
    x, y = a["x"], a["y"]
    return (3 * x * x * y + 2 * x + y + 5) % F.p


@pytest.fixture
def grid():
    return GridPoly.from_function(F, ("x", "y"), (2, 1), quadratic_in_x_linear_in_y)


class TestConstruction:
    def test_grid_size(self, grid):
        assert grid.grid_size() == 6  # 3 x-samples * 2 y-samples.

    def test_rejects_length_mismatch(self):
        with pytest.raises(AlgebraError):
            GridPoly(F, ("x",), (1, 2), {})

    def test_rejects_duplicate_variables(self):
        with pytest.raises(AlgebraError):
            GridPoly(F, ("x", "x"), (1, 1), {})

    def test_constant(self):
        c = GridPoly.constant(F, 42)
        assert c.as_constant() == 42
        assert c.arity == 0

    def test_as_constant_rejects_nonconstant(self, grid):
        with pytest.raises(AlgebraError):
            grid.as_constant()


class TestEvaluation:
    @given(
        x=st.integers(min_value=0, max_value=F.p - 1),
        y=st.integers(min_value=0, max_value=F.p - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_evaluate_matches_function_everywhere(self, x, y):
        grid = GridPoly.from_function(F, ("x", "y"), (2, 1), quadratic_in_x_linear_in_y)
        assert grid.evaluate({"x": x, "y": y}) == quadratic_in_x_linear_in_y(
            {"x": x, "y": y}
        )

    def test_missing_variable_rejected(self, grid):
        with pytest.raises(AlgebraError):
            grid.evaluate({"x": 1})


class TestRestrict:
    def test_restrict_at_sample_point(self, grid):
        restricted = grid.restrict("x", 1)
        assert restricted.variables == ("y",)
        assert restricted.evaluate({"y": 9}) == quadratic_in_x_linear_in_y(
            {"x": 1, "y": 9}
        )

    def test_restrict_at_non_sample_point(self, grid):
        restricted = grid.restrict("x", 12345)
        assert restricted.evaluate({"y": 7}) == quadratic_in_x_linear_in_y(
            {"x": 12345, "y": 7}
        )

    def test_restrict_unknown_variable(self, grid):
        with pytest.raises(AlgebraError):
            grid.restrict("z", 0)


class TestUnivariate:
    def test_to_univariate_matches_function(self, grid):
        p = grid.to_univariate("x", {"y": 4})
        for x in (0, 5, 100):
            assert p.evaluate(x) == quadratic_in_x_linear_in_y({"x": x, "y": 4})
        assert p.degree <= 2

    def test_missing_other_variable_rejected(self, grid):
        with pytest.raises(AlgebraError):
            grid.to_univariate("x", {})


class TestRegrid:
    def test_regrid_preserves_values(self, grid):
        bigger = grid.regrid((4, 3))
        for x in (0, 3, 77):
            for y in (0, 2, 19):
                assert bigger.evaluate({"x": x, "y": y}) == grid.evaluate(
                    {"x": x, "y": y}
                )

    def test_regrid_shrink_rejected(self, grid):
        with pytest.raises(AlgebraError):
            grid.regrid((1, 1))

    def test_regrid_wrong_length_rejected(self, grid):
        with pytest.raises(AlgebraError):
            grid.regrid((4,))


class TestCombine:
    def test_pointwise_product_after_regrid(self, grid):
        doubled = tuple(2 * d for d in grid.degrees)
        a = grid.regrid(doubled)
        product = a.pointwise_product(a)
        assert product.evaluate({"x": 3, "y": 2}) == F.mul(
            grid.evaluate({"x": 3, "y": 2}), grid.evaluate({"x": 3, "y": 2})
        )

    def test_misaligned_grids_rejected(self, grid):
        other = grid.regrid((3, 1))
        with pytest.raises(AlgebraError):
            grid.pointwise_product(other)

    def test_pointwise_or_is_arithmetized_or(self, grid):
        doubled = tuple(2 * d for d in grid.degrees)
        a = grid.regrid(doubled)
        combined = a.pointwise_or(a)
        v = grid.evaluate({"x": 1, "y": 1})
        assert combined.evaluate({"x": 1, "y": 1}) == F.bool_or(v, v)


class TestBooleanSum:
    def test_sum_over_boolean_cube(self):
        grid = GridPoly.from_function(
            F, ("a", "b"), (1, 1), lambda v: v["a"] * v["b"]
        )
        assert grid.sum_over_boolean_cube() == 1  # Only (1,1) contributes.


class TestLagrangeHelper:
    @given(x=st.integers(min_value=0, max_value=F.p - 1))
    @settings(max_examples=30, deadline=None)
    def test_lagrange_matches_polynomial(self, x):
        # f(t) = 2t^2 + 3 sampled at 0,1,2.
        xs = [0, 1, 2]
        ys = [(2 * t * t + 3) % F.p for t in xs]
        assert _lagrange_at(F, xs, ys, x) == (2 * x * x + 3) % F.p
