"""Tests for univariate polynomials over GF(p)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AlgebraError
from repro.mathx.modular import Field
from repro.mathx.polynomials import Poly, evaluations, interpolate

F = Field()
coeff_lists = st.lists(
    st.integers(min_value=0, max_value=F.p - 1), min_size=0, max_size=6
)
points = st.integers(min_value=0, max_value=F.p - 1)


def poly(coeffs):
    return Poly.make(F, coeffs)


class TestConstruction:
    def test_trailing_zeros_stripped(self):
        assert poly([1, 2, 0, 0]).coeffs == (1, 2)

    def test_zero_polynomial(self):
        assert Poly.zero(F).degree == -1
        assert poly([0, 0]).is_zero()

    def test_coefficients_normalized(self):
        assert poly([-1]).coeffs == (F.p - 1,)

    def test_constant(self):
        assert Poly.constant(F, 5).evaluate(12345) == 5


class TestRingLaws:
    @given(a=coeff_lists, b=coeff_lists, x=points)
    @settings(max_examples=50, deadline=None)
    def test_add_evaluates_pointwise(self, a, b, x):
        assert (poly(a) + poly(b)).evaluate(x) == F.add(
            poly(a).evaluate(x), poly(b).evaluate(x)
        )

    @given(a=coeff_lists, b=coeff_lists, x=points)
    @settings(max_examples=50, deadline=None)
    def test_mul_evaluates_pointwise(self, a, b, x):
        assert (poly(a) * poly(b)).evaluate(x) == F.mul(
            poly(a).evaluate(x), poly(b).evaluate(x)
        )

    @given(a=coeff_lists, b=coeff_lists)
    @settings(max_examples=50, deadline=None)
    def test_sub_inverts_add(self, a, b):
        assert (poly(a) + poly(b)) - poly(b) == poly(a)

    @given(a=coeff_lists, k=points, x=points)
    @settings(max_examples=30, deadline=None)
    def test_scale(self, a, k, x):
        assert poly(a).scale(k).evaluate(x) == F.mul(k, poly(a).evaluate(x))

    def test_mul_degrees_add(self):
        p = poly([1, 1]) * poly([2, 0, 3])
        assert p.degree == 3

    def test_mixed_fields_rejected(self):
        other = Poly.make(Field(p=101), [1])
        with pytest.raises(AlgebraError):
            poly([1]) + other


class TestEvaluation:
    def test_horner_known_values(self):
        p = poly([3, 2, 1])  # 3 + 2x + x^2
        assert p.evaluate(0) == 3
        assert p.evaluate(1) == 6
        assert p.evaluate(2) == 11

    def test_evaluations_helper(self):
        assert evaluations(poly([0, 1]), [5, 6]) == [5, 6]


class TestInterpolation:
    @given(coeffs=coeff_lists)
    @settings(max_examples=40, deadline=None)
    def test_interpolation_round_trips(self, coeffs):
        p = poly(coeffs)
        pts = [(x, p.evaluate(x)) for x in range(max(1, p.degree + 1))]
        assert interpolate(F, pts) == p

    def test_duplicate_x_rejected(self):
        with pytest.raises(AlgebraError):
            interpolate(F, [(1, 2), (1, 3)])

    def test_empty_gives_zero(self):
        assert interpolate(F, []).is_zero()

    def test_degree_bounded_by_point_count(self):
        pts = [(0, 7), (1, 7), (2, 7), (3, 7)]
        p = interpolate(F, pts)
        assert p == Poly.constant(F, 7)


class TestSerialization:
    @given(coeffs=coeff_lists)
    @settings(max_examples=40, deadline=None)
    def test_round_trip(self, coeffs):
        p = poly(coeffs)
        assert Poly.deserialize(F, p.serialize()) == p

    def test_empty_text_is_zero(self):
        assert Poly.deserialize(F, "").is_zero()

    def test_garbage_rejected(self):
        with pytest.raises(AlgebraError):
            Poly.deserialize(F, "1,banana,3")
