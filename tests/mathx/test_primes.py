"""Tests for the Miller–Rabin primality test and prime search."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mathx.primes import is_prime, next_prime

SMALL_PRIMES = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}


class TestIsPrime:
    @pytest.mark.parametrize("n", sorted(SMALL_PRIMES))
    def test_small_primes(self, n):
        assert is_prime(n)

    @pytest.mark.parametrize("n", [-7, 0, 1, 4, 9, 15, 21, 25, 49, 1001])
    def test_small_composites_and_degenerates(self, n):
        assert not is_prime(n)

    def test_exhaustive_below_1000(self):
        def slow(n):
            if n < 2:
                return False
            return all(n % d for d in range(2, int(n**0.5) + 1))

        for n in range(1000):
            assert is_prime(n) == slow(n), n

    @pytest.mark.parametrize(
        "n", [2_147_483_647, 2**61 - 1, 1_000_000_007, 999_999_937]
    )
    def test_known_large_primes(self, n):
        assert is_prime(n)

    @pytest.mark.parametrize("n", [2**31 - 2, 2**61 - 3, 1_000_000_008])
    def test_known_large_composites(self, n):
        assert not is_prime(n)

    def test_carmichael_numbers_rejected(self):
        # Fermat pseudoprimes that fool a^n-1 tests; Miller-Rabin must not be fooled.
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601, 8911, 41041):
            assert not is_prime(carmichael)

    def test_strong_pseudoprime_to_base_2(self):
        assert not is_prime(2047)  # 23 * 89, strong pseudoprime base 2.


class TestNextPrime:
    @given(n=st.integers(min_value=-5, max_value=10**6))
    @settings(max_examples=60, deadline=None)
    def test_result_is_prime_and_geq(self, n):
        p = next_prime(n)
        assert is_prime(p)
        assert p >= n

    def test_fixed_points(self):
        assert next_prime(7) == 7
        assert next_prime(8) == 11

    def test_below_two(self):
        assert next_prime(-100) == 2
        assert next_prime(2) == 2
