"""Tests for prime-field arithmetic, including the field axioms."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AlgebraError
from repro.mathx.modular import DEFAULT_PRIME, Field

F = Field()
elements = st.integers(min_value=0, max_value=F.p - 1)


class TestConstruction:
    def test_default_prime_is_mersenne_31(self):
        assert DEFAULT_PRIME == 2**31 - 1

    def test_rejects_composite_modulus(self):
        with pytest.raises(AlgebraError):
            Field(p=100)

    def test_rejects_tiny_modulus(self):
        with pytest.raises(AlgebraError):
            Field(p=1)

    def test_small_prime_accepted(self):
        assert Field(p=7).p == 7


class TestAxioms:
    @given(a=elements, b=elements, c=elements)
    @settings(max_examples=50, deadline=None)
    def test_add_associative_commutative(self, a, b, c):
        assert F.add(F.add(a, b), c) == F.add(a, F.add(b, c))
        assert F.add(a, b) == F.add(b, a)

    @given(a=elements, b=elements, c=elements)
    @settings(max_examples=50, deadline=None)
    def test_mul_distributes_over_add(self, a, b, c):
        assert F.mul(a, F.add(b, c)) == F.add(F.mul(a, b), F.mul(a, c))

    @given(a=elements)
    @settings(max_examples=50, deadline=None)
    def test_additive_inverse(self, a):
        assert F.add(a, F.neg(a)) == 0

    @given(a=elements.filter(lambda x: x != 0))
    @settings(max_examples=50, deadline=None)
    def test_multiplicative_inverse(self, a):
        assert F.mul(a, F.inv(a)) == 1

    @given(a=elements, b=elements)
    @settings(max_examples=50, deadline=None)
    def test_sub_is_add_neg(self, a, b):
        assert F.sub(a, b) == F.add(a, F.neg(b))

    def test_zero_has_no_inverse(self):
        with pytest.raises(AlgebraError):
            F.inv(0)


class TestOperations:
    def test_normalize_handles_negatives(self):
        assert F.normalize(-1) == F.p - 1

    def test_pow_matches_builtin(self):
        assert F.pow(3, 20) == pow(3, 20, F.p)

    def test_div_round_trips(self):
        assert F.mul(F.div(10, 7), 7) == 10

    def test_sum_and_product(self):
        assert F.sum([F.p - 1, 1]) == 0
        assert F.product([2, 3, 4]) == 24

    def test_random_element_in_range(self):
        rng = random.Random(1)
        for _ in range(100):
            assert 0 <= F.random_element(rng) < F.p


class TestBooleanArithmetization:
    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    def test_matches_boolean_semantics_on_bits(self, a, b):
        assert F.bool_and(a, b) == int(bool(a) and bool(b))
        assert F.bool_or(a, b) == int(bool(a) or bool(b))

    @pytest.mark.parametrize("a", [0, 1])
    def test_not_on_bits(self, a):
        assert F.bool_not(a) == 1 - a

    @given(a=elements, b=elements)
    @settings(max_examples=30, deadline=None)
    def test_de_morgan_holds_as_polynomial_identity(self, a, b):
        # 1 - (a ⊕̃ b) == (1-a)(1-b) for all field points, not just bits.
        assert F.bool_not(F.bool_or(a, b)) == F.bool_and(F.bool_not(a), F.bool_not(b))
