"""Tests for the safety/viability/forgivingness property checkers.

These tests double as the paper's definitional sanity checks: the shipped
sensing functions must pass their properties on the shipped goals, and
deliberately broken sensing must fail them.
"""

from __future__ import annotations

import random

from repro.comm.codecs import codec_family
from repro.core.properties import (
    check_compact_safety,
    check_compact_viability,
    check_finite_safety,
    check_finite_viability,
    check_forgiving,
)
from repro.core.sensing import ConstantSensing
from repro.servers.advisors import advisor_server_class
from repro.servers.printer_servers import printer_server_class
from repro.users.control_users import follower_user_class
from repro.users.printer_users import printer_user_class
from repro.users.scripted import BabblingUser
from repro.worlds.control import control_goal, control_sensing, random_law
from repro.worlds.printer import printing_goal, printing_sensing

CODECS = codec_family(2)
DIALECTS = ("space", "tagged")

PRINT_GOAL = printing_goal(["hello"])
PRINT_SERVERS = printer_server_class(DIALECTS, CODECS)
PRINT_USERS = printer_user_class(DIALECTS, CODECS)

LAW = random_law(random.Random(3))
CONTROL_GOAL = control_goal(LAW)
CONTROL_SERVERS = advisor_server_class(LAW, CODECS)
CONTROL_USERS = follower_user_class(CODECS)


class TestFiniteSafety:
    def test_printing_sensing_is_safe(self):
        report = check_finite_safety(
            PRINT_GOAL, printing_sensing(), PRINT_USERS, PRINT_SERVERS,
            max_rounds=64,
        )
        assert report.holds, report.violations

    def test_always_positive_sensing_is_unsafe(self):
        # With blind-halting users, always-positive sensing endorses wrong halts.
        blind_users = printer_user_class(
            DIALECTS, CODECS, blind_halt_after=4
        )
        report = check_finite_safety(
            PRINT_GOAL, ConstantSensing(True), blind_users, PRINT_SERVERS,
            max_rounds=64,
        )
        assert not report.holds
        assert report.violations


class TestFiniteViability:
    def test_printing_sensing_is_viable(self):
        report = check_finite_viability(
            PRINT_GOAL, printing_sensing(), PRINT_USERS, PRINT_SERVERS,
            max_rounds=64,
        )
        assert report.holds, report.violations

    def test_always_negative_sensing_is_not_viable(self):
        report = check_finite_viability(
            PRINT_GOAL, ConstantSensing(False), PRINT_USERS, PRINT_SERVERS,
            max_rounds=64,
        )
        assert not report.holds


class TestCompactSafety:
    def test_control_sensing_is_safe(self):
        report = check_compact_safety(
            CONTROL_GOAL, control_sensing(), CONTROL_USERS, CONTROL_SERVERS,
            horizon=200,
        )
        assert report.holds, report.violations

    def test_always_positive_sensing_is_unsafe(self):
        report = check_compact_safety(
            CONTROL_GOAL, ConstantSensing(True), CONTROL_USERS, CONTROL_SERVERS,
            horizon=200,
        )
        # Mismatched followers keep failing while sensing endorses them.
        assert not report.holds


class TestCompactViability:
    def test_control_sensing_is_viable(self):
        report = check_compact_viability(
            CONTROL_GOAL, control_sensing(), CONTROL_USERS, CONTROL_SERVERS,
            horizon=200,
        )
        assert report.holds, report.violations

    def test_always_negative_sensing_is_not_viable(self):
        report = check_compact_viability(
            CONTROL_GOAL, ConstantSensing(False), CONTROL_USERS, CONTROL_SERVERS,
            horizon=200,
        )
        assert not report.holds


class TestForgiving:
    def test_printing_goal_recoverable_after_junk(self):
        report = check_forgiving(
            PRINT_GOAL,
            rescuer=PRINT_USERS[0],
            junk_users=[BabblingUser()],
            server=PRINT_SERVERS[0],
            junk_rounds=(0, 5, 15),
            max_rounds=128,
        )
        assert report.holds, report.violations

    def test_control_goal_recoverable_after_junk(self):
        report = check_forgiving(
            CONTROL_GOAL,
            rescuer=CONTROL_USERS[0],
            junk_users=[BabblingUser()],
            server=CONTROL_SERVERS[0],
            junk_rounds=(0, 10),
            max_rounds=400,
        )
        assert report.holds, report.violations
