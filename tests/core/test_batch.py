"""The lockstep engine's contract: batching never changes results.

Scalar lockstep (:func:`run_execution_batch`) must produce
:class:`ExecutionResult` objects equal to the serial engine's, field by
field, for arbitrary strategies — including RNG consumers, halting users,
fault channels, and every recording policy.  The vectorized kernel
(:func:`run_tabular_batch`) must report the same verdict arithmetic the
serial engine + referee produce over compiled casts.  numpy stays
optional: without it, compilation declines and the scalar tier carries on.
"""

from __future__ import annotations

import pytest

import repro.core.batch as batch_module
from repro.comm.messages import UserOutbox
from repro.core.batch import (
    HAVE_NUMPY,
    BatchItem,
    compile_tabular_cast,
    derive_party_seeds,
    run_execution_batch,
    run_tabular_batch,
)
from repro.core.execution import METRICS_RECORDING, run_execution
from repro.errors import ExecutionError
from repro.faults.channel import drop_channel
from repro.machines.tabular import (
    coded_server_class,
    relay_decoder_class,
    relay_goal,
)
from repro.obs.sinks import MemorySink
from repro.obs.tracer import Tracer
from repro.users.scripted import ScriptedUser

from tests.core.helpers import (
    CountingWorld,
    EchoServer,
    IncrementingUser,
    RandomCoinUser,
)
from repro.core.strategy import SilentServer, SilentUser

SYMBOLS = ("a", "b", "c")


def serial(user, server, world, **kwargs):
    return run_execution(user, server, world, **kwargs)


def lockstep_one(user, server, world, **kwargs):
    return run_execution_batch([BatchItem(user, server, world, **kwargs)])[0]


def assert_executions_equal(got, expected):
    """Field-wise ExecutionResult equality (UserView lacks ``__eq__``)."""
    assert got.rounds == expected.rounds
    assert got.world_states == expected.world_states
    assert got.transcript == expected.transcript
    assert got.halted == expected.halted
    assert got.user_output == expected.user_output
    assert got.final_user_state == expected.final_user_state
    assert got.rounds_completed == expected.rounds_completed
    assert got.recording == expected.recording
    assert got.channel_name == expected.channel_name
    assert list(got.user_view) == list(expected.user_view)
    assert type(got.user_view) is type(expected.user_view)


class TestScalarLockstepParity:
    def test_silent_cast(self):
        expected = serial(SilentUser(), SilentServer(), CountingWorld(),
                          max_rounds=7, seed=0)
        got = lockstep_one(SilentUser(), SilentServer(), CountingWorld(),
                           max_rounds=7, seed=0)
        assert_executions_equal(got, expected)

    def test_rng_consuming_user(self):
        """Per-slot RNG streams match the serial per-party derivation."""
        for seed in (0, 1, 17):
            expected = serial(RandomCoinUser(), EchoServer(), CountingWorld(),
                              max_rounds=9, seed=seed)
            got = lockstep_one(RandomCoinUser(), EchoServer(), CountingWorld(),
                               max_rounds=9, seed=seed)
            assert_executions_equal(got, expected)

    def test_halting_user_stops_its_slot_only(self):
        items = [
            BatchItem(IncrementingUser(limit=3), SilentServer(),
                      CountingWorld(), seed=0, max_rounds=100),
            BatchItem(SilentUser(), SilentServer(), CountingWorld(),
                      seed=0, max_rounds=10),
        ]
        halted, full = run_execution_batch(items)
        assert halted.halted and halted.rounds_executed == 4
        assert halted.user_output == "sent:3"
        assert not full.halted and full.rounds_executed == 10

    def test_fault_channel_parity(self):
        channel = drop_channel(0.2)
        expected = serial(ScriptedUser([UserOutbox(to_server="ping")] * 6),
                          EchoServer(), CountingWorld(),
                          max_rounds=6, seed=3, channel=channel)
        got = lockstep_one(ScriptedUser([UserOutbox(to_server="ping")] * 6),
                           EchoServer(), CountingWorld(),
                           max_rounds=6, seed=3, channel=drop_channel(0.2))
        assert_executions_equal(got, expected)

    def test_recording_policy_parity(self):
        expected = serial(RandomCoinUser(), EchoServer(), CountingWorld(),
                          max_rounds=12, seed=5, recording=METRICS_RECORDING)
        got = lockstep_one(RandomCoinUser(), EchoServer(), CountingWorld(),
                           max_rounds=12, seed=5, recording=METRICS_RECORDING)
        assert_executions_equal(got, expected)

    def test_mixed_batch_matches_pairwise_serial(self):
        """Slots with different casts, seeds, and horizons interleave freely."""
        items = [
            BatchItem(RandomCoinUser(), EchoServer(), CountingWorld(),
                      seed=s, max_rounds=r)
            for s, r in [(0, 3), (1, 11), (2, 7), (3, 1)]
        ]
        got = run_execution_batch(items)
        for item, result in zip(items, got):
            assert_executions_equal(
                result,
                serial(item.user, item.server, item.world,
                       max_rounds=item.max_rounds, seed=item.seed),
            )

    def test_tracer_counters_match_serial(self):
        sink = MemorySink()
        tracer = Tracer(sink=sink)
        serial(ScriptedUser([UserOutbox(to_server="ping")] * 4), EchoServer(),
               CountingWorld(), max_rounds=4, seed=0, tracer=tracer)
        batch_sink = MemorySink()
        lockstep_one(ScriptedUser([UserOutbox(to_server="ping")] * 4),
                     EchoServer(), CountingWorld(), max_rounds=4, seed=0,
                     tracer=Tracer(sink=batch_sink))
        assert [type(e).__name__ for e in batch_sink.events] == [
            type(e).__name__ for e in sink.events
        ]

    def test_empty_batch(self):
        assert run_execution_batch([]) == []

    def test_item_validation(self):
        with pytest.raises(ExecutionError):
            BatchItem(SilentUser(), SilentServer(), CountingWorld(),
                      max_rounds=0)

    def test_seed_derivation_matches_engine_observables(self):
        """Same master seed → same user coin stream as the serial engine."""
        u, s, w, _chan = derive_party_seeds(42)
        assert (u, s, w) != (0, 0, 0)
        a = lockstep_one(RandomCoinUser(), EchoServer(), CountingWorld(),
                         max_rounds=5, seed=42)
        b = serial(RandomCoinUser(), EchoServer(), CountingWorld(),
                   max_rounds=5, seed=42)
        assert a.transcript == b.transcript
        assert_executions_equal(a, b)


def relay_cast(user_shift=0, server_shift=0):
    goal = relay_goal(SYMBOLS)
    user = relay_decoder_class(SYMBOLS)[user_shift]
    server = coded_server_class(SYMBOLS)[server_shift]
    return user, server, goal


@pytest.mark.skipif(not HAVE_NUMPY, reason="vectorized tier needs numpy")
class TestVectorizedKernel:
    def test_verdict_parity_with_serial_referee(self):
        """Kernel verdict arithmetic == serial engine + referee, per cell."""
        goal = relay_goal(SYMBOLS)
        users = relay_decoder_class(SYMBOLS)
        servers = coded_server_class(SYMBOLS)
        casts = []
        expected = []
        for user in users:
            for server in servers:
                cast = compile_tabular_cast(user, server, goal.world, goal)
                assert cast is not None
                casts.append(cast)
                execution = serial(user, server, goal.world,
                                   max_rounds=40, seed=0)
                expected.append(goal.evaluate(execution))
        outcomes = run_tabular_batch(casts, max_rounds=40)
        for outcome, verdict in zip(outcomes, expected):
            assert outcome.achieved == verdict.achieved
            assert verdict.compact_verdict is not None
            assert outcome.bad_prefixes == verdict.compact_verdict.bad_prefixes
            assert (
                outcome.last_bad_round
                == verdict.compact_verdict.last_bad_round
            )

    def test_only_matching_decoder_achieves(self):
        goal = relay_goal(SYMBOLS)
        user = relay_decoder_class(SYMBOLS)[1]
        casts = [
            compile_tabular_cast(user, server, goal.world, goal)
            for server in coded_server_class(SYMBOLS)
        ]
        outcomes = run_tabular_batch(casts, max_rounds=60)
        assert [o.achieved for o in outcomes] == [False, True, False]

    def test_message_counters_match_serial_tracer(self):
        user, server, goal = relay_cast()
        cast = compile_tabular_cast(user, server, goal.world, goal)
        [outcome] = run_tabular_batch([cast], max_rounds=30,
                                      count_messages=True)
        tracer = Tracer()
        serial(user, server, goal.world, max_rounds=30, seed=0, tracer=tracer)
        counters = dict(tracer.counters.snapshot())
        assert outcome.messages == counters["messages"]
        assert outcome.message_bytes == counters["message_bytes"]

    def test_compile_declines_on_channel(self):
        user, server, goal = relay_cast()
        assert compile_tabular_cast(
            user, server, goal.world, goal, channel=drop_channel(0.1)
        ) is None

    def test_compile_declines_on_untabular_party(self):
        _, server, goal = relay_cast()
        assert compile_tabular_cast(
            RandomCoinUser(), server, goal.world, goal
        ) is None

    def test_batch_validation(self):
        user, server, goal = relay_cast()
        cast = compile_tabular_cast(user, server, goal.world, goal)
        with pytest.raises(ExecutionError):
            run_tabular_batch([cast], max_rounds=0)
        assert run_tabular_batch([], max_rounds=5) == []


class TestNumpyOptional:
    def test_compile_declines_without_numpy(self, monkeypatch):
        monkeypatch.setattr(batch_module, "_np", None)
        user, server, goal = relay_cast()
        assert compile_tabular_cast(user, server, goal.world, goal) is None

    def test_kernel_raises_without_numpy(self, monkeypatch):
        monkeypatch.setattr(batch_module, "_np", None)
        with pytest.raises(ExecutionError, match="numpy"):
            run_tabular_batch([], max_rounds=5)

    def test_scalar_lockstep_runs_without_numpy(self, monkeypatch):
        monkeypatch.setattr(batch_module, "_np", None)
        got = lockstep_one(SilentUser(), SilentServer(), CountingWorld(),
                           max_rounds=3, seed=0)
        assert got.rounds_executed == 3
