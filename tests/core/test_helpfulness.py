"""Tests for the helpfulness definition, on the printer goal."""

from __future__ import annotations

from repro.comm.codecs import codec_family
from repro.core.helpfulness import helpful_subclass, is_helpful
from repro.core.strategy import SilentServer
from repro.servers.printer_servers import printer_server_class
from repro.users.printer_users import printer_user_class
from repro.worlds.printer import printing_goal

CODECS = codec_family(2)
DIALECTS = ("space", "tagged")
GOAL = printing_goal(["hello world"])
SERVERS = printer_server_class(DIALECTS, CODECS)
USERS = printer_user_class(DIALECTS, CODECS)


class TestIsHelpful:
    def test_every_printer_is_helpful_for_the_class(self):
        for server in SERVERS:
            report = is_helpful(server, GOAL, USERS, max_rounds=64)
            assert report.helpful, server.name

    def test_witness_matches_server_language(self):
        server = SERVERS[0]  # space dialect, identity codec.
        report = is_helpful(server, GOAL, USERS, max_rounds=64)
        assert report.witness is not None
        assert report.witness.name == "print-space@id"

    def test_silent_server_is_unhelpful(self):
        report = is_helpful(SilentServer(), GOAL, USERS, max_rounds=64)
        assert not report.helpful
        assert report.witness is None
        assert not bool(report)

    def test_per_user_diagnostics_populated_on_failure(self):
        report = is_helpful(SilentServer(), GOAL, USERS, max_rounds=64)
        assert len(report.per_user) == len(USERS)

    def test_report_is_truthy_when_helpful(self):
        report = is_helpful(SERVERS[0], GOAL, USERS, max_rounds=64)
        assert bool(report)


class TestHelpfulSubclass:
    def test_filters_unhelpful_members(self):
        mixed = list(SERVERS) + [SilentServer()]
        helpful = helpful_subclass(mixed, GOAL, USERS, max_rounds=64)
        assert len(helpful) == len(SERVERS)
        assert all(report.helpful for _, report in helpful)
