"""Property-based tests of the execution engine (hypothesis-driven).

Invariants that must hold for *arbitrary* strategies, not just the shipped
ones: determinism under seeds, structural consistency of the recorded
artifacts, and the correspondence between rounds, views and transcripts.
"""

from __future__ import annotations


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.messages import UserOutbox
from repro.core.execution import run_execution
from repro.core.strategy import SilentServer
from repro.users.scripted import BabblingUser, ScriptedUser

from tests.core.helpers import CountingWorld, EchoServer

# Arbitrary short scripts of printable messages.
message = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), max_size=12
)
scripts = st.lists(
    st.tuples(message, message, st.booleans()), min_size=0, max_size=8
)


def build_user(script):
    outboxes = [
        UserOutbox(to_server=s, to_world=w, halt=h, output="done" if h else None)
        for s, w, h in script
    ]
    return ScriptedUser(outboxes)


class TestStructuralInvariants:
    @given(script=scripts, seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_artifact_lengths_agree(self, script, seed):
        result = run_execution(
            build_user(script), EchoServer(), CountingWorld(),
            max_rounds=12, seed=seed, record_transcript=True,
        )
        assert len(result.world_states) == result.rounds_executed + 1
        assert len(result.user_view) == result.rounds_executed
        assert [r.index for r in result.rounds] == list(range(result.rounds_executed))

    @given(script=scripts, seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_halt_iff_script_halts_within_horizon(self, script, seed):
        result = run_execution(
            build_user(script), EchoServer(), CountingWorld(),
            max_rounds=12, seed=seed,
        )
        halts_at = next(
            (i for i, (_, __, h) in enumerate(script) if h), None
        )
        if halts_at is not None and halts_at < 12:
            assert result.halted
            assert result.rounds_executed == halts_at + 1
        else:
            assert not result.halted
            assert result.rounds_executed == 12

    @given(script=scripts)
    @settings(max_examples=30, deadline=None)
    def test_view_outboxes_match_script(self, script):
        result = run_execution(
            build_user(script), SilentServer(), CountingWorld(),
            max_rounds=len(script) + 3, seed=0,
        )
        for record, (to_server, to_world, halt) in zip(result.user_view, script):
            assert record.outbox.to_server == to_server
            assert record.outbox.to_world == to_world
            if halt:
                break

    @given(script=scripts, seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_echo_round_trip_invariant(self, script, seed):
        """Whatever the user says to the server comes back two rounds later."""
        result = run_execution(
            build_user(script), EchoServer(), CountingWorld(),
            max_rounds=len(script) + 4, seed=seed,
        )
        records = list(result.user_view)
        for i in range(len(records) - 2):
            assert records[i + 2].inbox.from_server == records[i].outbox.to_server


class TestDeterminismProperties:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_randomized_user_reproducible(self, seed):
        def run():
            return run_execution(
                BabblingUser(), EchoServer(), CountingWorld(),
                max_rounds=10, seed=seed,
            )

        a, b = run(), run()
        assert [r.outbox for r in a.user_view] == [r.outbox for r in b.user_view]
        assert a.world_states == b.world_states
