"""Tiny strategies shared by the core tests."""

from __future__ import annotations

import random
from typing import Tuple

from repro.comm.messages import (
    ServerInbox,
    ServerOutbox,
    UserInbox,
    UserOutbox,
    WorldInbox,
    WorldOutbox,
)
from repro.core.strategy import ServerStrategy, UserStrategy, WorldStrategy


class EchoServer(ServerStrategy):
    """Repeats the user's last message back."""

    def initial_state(self, rng: random.Random) -> int:
        return 0

    def step(
        self, state: int, inbox: ServerInbox, rng: random.Random
    ) -> Tuple[int, ServerOutbox]:
        return state + 1, ServerOutbox(to_user=inbox.from_user)


class CountingWorld(WorldStrategy):
    """State = number of ``INC`` messages received from the user."""

    def initial_state(self, rng: random.Random) -> int:
        return 0

    def step(
        self, state: int, inbox: WorldInbox, rng: random.Random
    ) -> Tuple[int, WorldOutbox]:
        if inbox.from_user == "INC":
            state += 1
        return state, WorldOutbox(to_user=f"COUNT:{state}")


class IncrementingUser(UserStrategy):
    """Sends ``INC`` to the world every round; halts after ``limit`` rounds."""

    def __init__(self, limit: int = 0) -> None:
        self._limit = limit

    def initial_state(self, rng: random.Random) -> int:
        return 0

    def step(
        self, state: int, inbox: UserInbox, rng: random.Random
    ) -> Tuple[int, UserOutbox]:
        state += 1
        if self._limit and state > self._limit:
            return state, UserOutbox(halt=True, output=f"sent:{self._limit}")
        return state, UserOutbox(to_world="INC")


class RandomCoinUser(UserStrategy):
    """Sends a random bit each round (tests RNG isolation)."""

    def initial_state(self, rng: random.Random) -> int:
        return 0

    def step(
        self, state: int, inbox: UserInbox, rng: random.Random
    ) -> Tuple[int, UserOutbox]:
        return state + 1, UserOutbox(to_server=str(rng.getrandbits(1)))
