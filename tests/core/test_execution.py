"""Tests for the synchronous execution engine."""

from __future__ import annotations


import pytest

from repro.comm.messages import ServerOutbox, UserOutbox
from repro.core.execution import run_execution
from repro.core.strategy import (
    ServerStrategy,
    SilentServer,
    SilentUser,
    UserStrategy,
)
from repro.errors import ExecutionError
from repro.users.scripted import ScriptedUser

from tests.core.helpers import CountingWorld, EchoServer, IncrementingUser, RandomCoinUser


class TestBasics:
    def test_runs_exact_round_count(self):
        result = run_execution(
            SilentUser(), SilentServer(), CountingWorld(), max_rounds=7, seed=0
        )
        assert result.rounds_executed == 7
        assert not result.halted

    def test_world_states_include_initial(self):
        result = run_execution(
            SilentUser(), SilentServer(), CountingWorld(), max_rounds=3, seed=0
        )
        assert len(result.world_states) == 4
        assert result.world_states[0] == 0

    def test_max_rounds_validated(self):
        with pytest.raises(ExecutionError):
            run_execution(
                SilentUser(), SilentServer(), CountingWorld(), max_rounds=0
            )

    def test_halt_stops_execution(self):
        result = run_execution(
            IncrementingUser(limit=3), SilentServer(), CountingWorld(),
            max_rounds=100, seed=0,
        )
        assert result.halted
        assert result.user_output == "sent:3"
        assert result.rounds_executed == 4  # 3 INC rounds + the halting round.

    def test_final_world_state(self):
        result = run_execution(
            IncrementingUser(limit=3), SilentServer(), CountingWorld(),
            max_rounds=100, seed=0,
        )
        assert result.final_world_state() == 3


class TestMessageLatency:
    def test_one_round_delivery_delay(self):
        """A message sent in round t is read in round t+1."""
        user = ScriptedUser([UserOutbox(to_world="INC")])
        result = run_execution(
            user, SilentServer(), CountingWorld(), max_rounds=3, seed=0
        )
        # World state after round 0 is still 0; the INC lands in round 1.
        assert result.world_states[1] == 0
        assert result.world_states[2] == 1

    def test_round_trip_takes_two_rounds(self):
        user = ScriptedUser([UserOutbox(to_server="ping")])
        result = run_execution(
            user, EchoServer(), CountingWorld(), max_rounds=4, seed=0
        )
        echoes = [r.inbox.from_server for r in result.user_view]
        assert echoes[2] == "ping"  # Sent at 0, echoed at 1, read at 2.


class TestDeterminism:
    def test_same_seed_same_execution(self):
        a = run_execution(
            RandomCoinUser(), EchoServer(), CountingWorld(), max_rounds=20, seed=5
        )
        b = run_execution(
            RandomCoinUser(), EchoServer(), CountingWorld(), max_rounds=20, seed=5
        )
        msgs_a = [r.outbox.to_server for r in a.user_view]
        msgs_b = [r.outbox.to_server for r in b.user_view]
        assert msgs_a == msgs_b

    def test_different_seed_different_coins(self):
        a = run_execution(
            RandomCoinUser(), EchoServer(), CountingWorld(), max_rounds=40, seed=1
        )
        b = run_execution(
            RandomCoinUser(), EchoServer(), CountingWorld(), max_rounds=40, seed=2
        )
        msgs_a = [r.outbox.to_server for r in a.user_view]
        msgs_b = [r.outbox.to_server for r in b.user_view]
        assert msgs_a != msgs_b

    def test_party_rngs_are_isolated(self):
        """A user consuming extra randomness must not shift the world's RNG."""

        class HungryUser(RandomCoinUser):
            def step(self, state, inbox, rng):
                for _ in range(100):
                    rng.random()
                return super().step(state, inbox, rng)

        class DrawingWorld(CountingWorld):
            def step(self, state, inbox, rng):
                return state + rng.randrange(1000), type(self)._out(state)

            @staticmethod
            def _out(state):
                from repro.comm.messages import WorldOutbox

                return WorldOutbox()

        a = run_execution(
            RandomCoinUser(), SilentServer(), DrawingWorld(), max_rounds=10, seed=3
        )
        b = run_execution(
            HungryUser(), SilentServer(), DrawingWorld(), max_rounds=10, seed=3
        )
        assert a.world_states == b.world_states


class TestTypeChecking:
    def test_wrong_user_outbox_type_rejected(self):
        class BadUser(UserStrategy):
            def initial_state(self, rng):
                return 0

            def step(self, state, inbox, rng):
                return state, ServerOutbox()  # Wrong type.

        with pytest.raises(ExecutionError):
            run_execution(
                BadUser(), SilentServer(), CountingWorld(), max_rounds=1
            )

    def test_wrong_server_outbox_type_rejected(self):
        class BadServer(ServerStrategy):
            def initial_state(self, rng):
                return 0

            def step(self, state, inbox, rng):
                return state, UserOutbox()

        with pytest.raises(ExecutionError):
            run_execution(
                SilentUser(), BadServer(), CountingWorld(), max_rounds=1
            )


class TestRecording:
    def test_transcript_optional(self):
        result = run_execution(
            SilentUser(), SilentServer(), CountingWorld(), max_rounds=2, seed=0
        )
        assert result.transcript is None

    def test_transcript_captures_traffic(self):
        user = ScriptedUser([UserOutbox(to_server="hello")])
        result = run_execution(
            user, EchoServer(), CountingWorld(), max_rounds=3, seed=0,
            record_transcript=True,
        )
        assert result.transcript is not None
        assert "hello" in result.transcript.messages("user", "server")

    def test_round_records_complete(self):
        result = run_execution(
            IncrementingUser(limit=2), SilentServer(), CountingWorld(),
            max_rounds=10, seed=0,
        )
        assert [r.index for r in result.rounds] == list(range(3))
        assert len(result.user_view) == 3
