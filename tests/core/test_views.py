"""Tests for the user's local view."""

from __future__ import annotations

from repro.comm.messages import UserInbox, UserOutbox
from repro.core.views import UserView, ViewRecord


def record(i, from_server="", from_world="", to_server="", to_world=""):
    return ViewRecord(
        round_index=i,
        state_before=i,
        inbox=UserInbox(from_server=from_server, from_world=from_world),
        outbox=UserOutbox(to_server=to_server, to_world=to_world),
        state_after=i + 1,
    )


class TestUserView:
    def test_append_and_iterate(self):
        view = UserView()
        view.append(record(0))
        view.append(record(1))
        assert len(view) == 2
        assert [r.round_index for r in view] == [0, 1]

    def test_last(self):
        view = UserView()
        assert view.last() is None
        view.append(record(0))
        assert view.last().round_index == 0

    def test_message_extractors_skip_silence(self):
        view = UserView(
            [
                record(0, from_server="s0", to_world="w0"),
                record(1),
                record(2, from_world="in2", to_server="out2"),
            ]
        )
        assert view.messages_from_server() == ["s0"]
        assert view.messages_from_world() == ["in2"]
        assert view.messages_to_server() == ["out2"]
        assert view.messages_to_world() == ["w0"]

    def test_tail(self):
        view = UserView([record(i) for i in range(5)])
        tail = view.tail(2)
        assert [r.round_index for r in tail] == [3, 4]

    def test_indexing(self):
        view = UserView([record(0), record(1)])
        assert view[1].round_index == 1

    def test_records_tuple_is_snapshot(self):
        view = UserView([record(0)])
        snapshot = view.records
        view.append(record(1))
        assert len(snapshot) == 1
