"""Tests for finite and compact referees."""

from __future__ import annotations

from repro.core.execution import ExecutionResult
from repro.core.referees import (
    CompactVerdict,
    FunctionCompactReferee,
    FunctionFiniteReferee,
    LastStateCompactReferee,
)


def execution_with_states(states, halted=True, output=None):
    result = ExecutionResult(halted=halted, user_output=output)
    result.world_states = list(states)
    return result


class TestFiniteReferee:
    def test_accepts_via_predicate(self):
        referee = FunctionFiniteReferee(lambda e: e.final_world_state() == 3)
        assert referee.accepts(execution_with_states([1, 2, 3]))
        assert not referee.accepts(execution_with_states([1, 2]))

    def test_never_accepts_unhalted(self):
        referee = FunctionFiniteReferee(lambda e: True)
        assert not referee.accepts(execution_with_states([1], halted=False))


class TestCompactVerdict:
    def test_counts_bad_prefixes(self):
        referee = FunctionCompactReferee(lambda states: states[-1] >= 0)
        verdict = referee.judge(execution_with_states([-1, -2, 3, 4]))
        assert verdict.bad_prefixes == 2
        assert verdict.last_bad_round == 2
        assert verdict.total_prefixes == 4

    def test_all_good(self):
        referee = FunctionCompactReferee(lambda states: True)
        verdict = referee.judge(execution_with_states([0, 1]))
        assert verdict.bad_prefixes == 0
        assert verdict.last_bad_round is None

    def test_settled_since(self):
        verdict = CompactVerdict(bad_prefixes=2, last_bad_round=5, flags=(True,) * 10)
        assert verdict.settled_since(5)
        assert verdict.settled_since(7)
        assert not verdict.settled_since(4)

    def test_settled_since_with_no_bad(self):
        verdict = CompactVerdict(bad_prefixes=0, last_bad_round=None, flags=())
        assert verdict.settled_since(0)

    def test_prefix_semantics_sees_growing_histories(self):
        seen = []
        referee = FunctionCompactReferee(lambda states: bool(seen.append(len(states))) or True)
        referee.judge(execution_with_states([0, 1, 2]))
        assert seen == [1, 2, 3]


class TestLastStateReferee:
    def test_only_inspects_last_state(self):
        referee = LastStateCompactReferee(state_acceptable=lambda s: s % 2 == 0)
        verdict = referee.judge(execution_with_states([0, 1, 2, 3]))
        assert verdict.flags == (True, False, True, False)
        assert verdict.bad_prefixes == 2

    def test_linear_judge_matches_generic_judge(self):
        local = LastStateCompactReferee(state_acceptable=lambda s: s != 2)
        generic = FunctionCompactReferee(lambda states: states[-1] != 2)
        execution = execution_with_states([0, 2, 1, 2, 5])
        assert local.judge(execution) == generic.judge(execution)
