"""Tests for sensing combinators."""

from __future__ import annotations

from repro.comm.messages import UserInbox, UserOutbox
from repro.core.sensing import (
    AllOfSensing,
    AnyOfSensing,
    ConstantSensing,
    FunctionSensing,
    GraceSensing,
    LastWorldMessageSensing,
    NoRecentProgressSensing,
)
from repro.core.views import UserView, ViewRecord


def view_from_world_messages(messages):
    view = UserView()
    for i, message in enumerate(messages):
        view.append(
            ViewRecord(
                round_index=i,
                state_before=i,
                inbox=UserInbox(from_world=message),
                outbox=UserOutbox(),
                state_after=i + 1,
            )
        )
    return view


class TestConstant:
    def test_values(self):
        view = view_from_world_messages([])
        assert ConstantSensing(True).indicate(view)
        assert not ConstantSensing(False).indicate(view)

    def test_names(self):
        assert ConstantSensing(True).name == "always-positive"
        assert ConstantSensing(False).name == "always-negative"


class TestNegation:
    def test_negate(self):
        view = view_from_world_messages([])
        assert not ConstantSensing(True).negate().indicate(view)
        assert "not(" in ConstantSensing(True).negate().name


class TestFunctionSensing:
    def test_wraps_callable(self):
        sensing = FunctionSensing(lambda v: len(v) > 2, label="long")
        assert not sensing.indicate(view_from_world_messages(["a"]))
        assert sensing.indicate(view_from_world_messages(["a", "b", "c"]))
        assert sensing.name == "long"


class TestLastWorldMessage:
    def test_judges_latest_nonsilent(self):
        sensing = LastWorldMessageSensing(predicate=lambda m: m == "good")
        assert sensing.indicate(view_from_world_messages(["bad", "good"]))
        assert not sensing.indicate(view_from_world_messages(["good", "bad"]))

    def test_silence_skipped(self):
        sensing = LastWorldMessageSensing(predicate=lambda m: m == "good")
        assert sensing.indicate(view_from_world_messages(["good", "", ""]))

    def test_default_before_any_message(self):
        positive = LastWorldMessageSensing(predicate=lambda m: False, default=True)
        negative = LastWorldMessageSensing(predicate=lambda m: True, default=False)
        empty = view_from_world_messages(["", ""])
        assert positive.indicate(empty)
        assert not negative.indicate(empty)


class TestGrace:
    def test_positive_during_grace(self):
        sensing = GraceSensing(ConstantSensing(False), grace_rounds=3)
        assert sensing.indicate(view_from_world_messages(["x"]))
        assert sensing.indicate(view_from_world_messages(["x"] * 3))

    def test_inner_applies_after_grace(self):
        sensing = GraceSensing(ConstantSensing(False), grace_rounds=3)
        assert not sensing.indicate(view_from_world_messages(["x"] * 4))

    def test_negative_grace_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            GraceSensing(ConstantSensing(True), grace_rounds=-1)


class TestBooleanCombinators:
    def test_all_of(self):
        view = view_from_world_messages(["m"])
        assert AllOfSensing((ConstantSensing(True), ConstantSensing(True))).indicate(view)
        assert not AllOfSensing((ConstantSensing(True), ConstantSensing(False))).indicate(view)

    def test_any_of(self):
        view = view_from_world_messages(["m"])
        assert AnyOfSensing((ConstantSensing(False), ConstantSensing(True))).indicate(view)
        assert not AnyOfSensing((ConstantSensing(False),)).indicate(view)


class TestNoRecentProgress:
    def test_positive_while_young(self):
        sensing = NoRecentProgressSensing(stall_rounds=4)
        assert sensing.indicate(view_from_world_messages(["", ""]))

    def test_negative_after_long_silence(self):
        sensing = NoRecentProgressSensing(stall_rounds=4)
        assert not sensing.indicate(view_from_world_messages([""] * 6))

    def test_positive_with_recent_chatter(self):
        sensing = NoRecentProgressSensing(stall_rounds=4)
        assert sensing.indicate(view_from_world_messages([""] * 5 + ["news"]))
