"""Incremental sensing must be indistinguishable from prefix re-evaluation.

The contract under test (see :meth:`repro.core.sensing.Sensing.incremental`):
feeding a view's records to a monitor's ``observe`` in order yields exactly
the Booleans ``indicate`` returns on each prefix — for every library
sensing natively, and for arbitrary custom sensing via the replay fallback.
"""

from __future__ import annotations

import random

import pytest

from repro.comm.messages import UserInbox, UserOutbox
from repro.core.execution import run_execution
from repro.core.properties import _indications_per_round
from repro.core.sensing import (
    AllOfSensing,
    AnyOfSensing,
    ConstantSensing,
    FunctionSensing,
    GraceSensing,
    LastWorldMessageSensing,
    NoRecentProgressSensing,
    Sensing,
    incremental_sensing,
)
from repro.core.views import UserView, ViewRecord
from repro.obs import MemorySink, GraceSuppressed, Tracer
from repro.servers.advisors import AdvisorServer
from repro.users.control_users import AdvisorFollowingUser
from repro.comm.codecs import IdentityCodec
from repro.worlds.control import control_goal, control_sensing


def synthetic_view(seed: int, rounds: int = 60) -> UserView:
    """A view with a mix of silence, world chatter, and server chatter."""
    rng = random.Random(seed)
    view = UserView()
    for index in range(rounds):
        from_world = f"FB:{rng.choice(['ok', 'bad'])}" if rng.random() < 0.4 else ""
        from_server = f"S{index}" if rng.random() < 0.3 else ""
        view.append(
            ViewRecord(
                round_index=index,
                state_before=index,
                inbox=UserInbox(from_world=from_world, from_server=from_server),
                outbox=UserOutbox(to_server=f"U{index}" if rng.random() < 0.5 else ""),
                state_after=index + 1,
            )
        )
    return view


def prefix_trace(sensing: Sensing, view: UserView) -> list:
    """The reference semantics: indicate() on every rebuilt prefix."""
    records = view.records
    return [
        sensing.indicate(UserView(records[: t + 1])) for t in range(len(records))
    ]


def monitor_trace(sensing: Sensing, view: UserView) -> list:
    monitor = incremental_sensing(sensing)
    return [monitor.observe(record) for record in view]


def _feedback_ok(message: str) -> bool:
    return message.endswith("ok")


LIBRARY_SENSINGS = [
    ConstantSensing(True),
    ConstantSensing(False),
    LastWorldMessageSensing(predicate=_feedback_ok, default=True),
    LastWorldMessageSensing(predicate=_feedback_ok, default=False),
    GraceSensing(LastWorldMessageSensing(predicate=_feedback_ok), grace_rounds=7),
    GraceSensing(ConstantSensing(False), grace_rounds=3),
    NoRecentProgressSensing(stall_rounds=5),
    NoRecentProgressSensing(stall_rounds=1),
    LastWorldMessageSensing(predicate=_feedback_ok).negate(),
    AllOfSensing(
        (
            GraceSensing(LastWorldMessageSensing(predicate=_feedback_ok), 4),
            NoRecentProgressSensing(stall_rounds=6),
        )
    ),
    AnyOfSensing(
        (
            LastWorldMessageSensing(predicate=_feedback_ok, default=False),
            NoRecentProgressSensing(stall_rounds=9),
        )
    ),
]


class TestNativeEquivalence:
    @pytest.mark.parametrize("sensing", LIBRARY_SENSINGS, ids=lambda s: s.name)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_monitor_matches_prefix_reevaluation(self, sensing, seed):
        view = synthetic_view(seed)
        assert monitor_trace(sensing, view) == prefix_trace(sensing, view)

    def test_library_sensing_is_native(self):
        """The shipped sensing functions must not fall back to replay."""
        for sensing in LIBRARY_SENSINGS:
            assert sensing.incremental() is not None, sensing.name

    def test_monitors_are_fresh_per_call(self):
        sensing = NoRecentProgressSensing(stall_rounds=3)
        view = synthetic_view(5)
        first = monitor_trace(sensing, view)
        second = monitor_trace(sensing, view)
        assert first == second


class TestFallback:
    def test_function_sensing_uses_replay(self):
        sensing = FunctionSensing(fn=lambda view: len(view) % 2 == 0, label="even")
        assert sensing.incremental() is None
        view = synthetic_view(3)
        assert monitor_trace(sensing, view) == prefix_trace(sensing, view)

    def test_replay_shares_record_objects(self):
        """The fallback appends the caller's records, never copies of them."""
        seen = []

        class Spy(Sensing):
            def indicate(self, view):
                seen.append(view.last())
                return True

        view = synthetic_view(1, rounds=5)
        monitor_trace(Spy(), view)
        assert all(a is b for a, b in zip(seen, view))


class TestGraceEvents:
    def test_traced_grace_emits_same_suppressions(self):
        """Suppression events agree between serial and incremental paths."""
        def serial_events():
            tracer = Tracer(sink=MemorySink())
            sensing = GraceSensing(ConstantSensing(False), 4).with_tracer(tracer)
            view = synthetic_view(2, rounds=10)
            prefix_trace(sensing, view)
            return [e.round_index for e in tracer.sink.of_kind(GraceSuppressed)]

        def incremental_events():
            tracer = Tracer(sink=MemorySink())
            sensing = GraceSensing(ConstantSensing(False), 4).with_tracer(tracer)
            view = synthetic_view(2, rounds=10)
            monitor_trace(sensing, view)
            return [e.round_index for e in tracer.sink.of_kind(GraceSuppressed)]

        assert serial_events() == incremental_events()


class TestIndicationsPerRound:
    """The properties-checker satellite: no more O(T²) prefix rebuilding."""

    def test_identical_trace_on_a_real_execution(self):
        law = {"red": "blue", "blue": "red"}
        goal = control_goal(law)
        result = run_execution(
            AdvisorFollowingUser(IdentityCodec()),
            AdvisorServer(law),
            goal.world,
            max_rounds=120,
            seed=0,
        )
        sensing = control_sensing()
        assert _indications_per_round(sensing, result.user_view) == prefix_trace(
            sensing, result.user_view
        )

    def test_identical_trace_for_custom_sensing(self):
        law = {"red": "blue", "blue": "red"}
        goal = control_goal(law)
        result = run_execution(
            AdvisorFollowingUser(IdentityCodec()),
            AdvisorServer(law),
            goal.world,
            max_rounds=80,
            seed=1,
        )
        sensing = FunctionSensing(
            fn=lambda view: bool(len(view) % 3), label="mod3"
        )
        assert _indications_per_round(sensing, result.user_view) == prefix_trace(
            sensing, result.user_view
        )
