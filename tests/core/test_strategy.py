"""Tests for strategy base classes."""

from __future__ import annotations

import random

import pytest

from repro.comm.messages import UserInbox, UserOutbox
from repro.core.strategy import SilentServer, SilentUser, StatelessUser, Strategy


class TestBaseStrategy:
    def test_abstract_methods_raise(self):
        s = Strategy()
        with pytest.raises(NotImplementedError):
            s.initial_state(random.Random(0))
        with pytest.raises(NotImplementedError):
            s.step(None, None, random.Random(0))

    def test_default_name_is_class_name(self):
        assert SilentUser().name == "SilentUser"

    def test_repr_contains_name(self):
        assert "SilentServer" in repr(SilentServer())


class TestStatelessUser:
    def test_react_receives_round_counter(self):
        seen = []

        class Probe(StatelessUser):
            def react(self, round_index, inbox, rng):
                seen.append(round_index)
                return UserOutbox()

        probe = Probe()
        rng = random.Random(0)
        state = probe.initial_state(rng)
        for _ in range(3):
            state, _ = probe.step(state, UserInbox(), rng)
        assert seen == [0, 1, 2]


class TestSilentStrategies:
    def test_silent_user_says_nothing_and_never_halts(self):
        user = SilentUser()
        rng = random.Random(0)
        state = user.initial_state(rng)
        state, out = user.step(state, UserInbox(from_server="provoke"), rng)
        assert out.to_server == "" and out.to_world == "" and not out.halt

    def test_silent_server_says_nothing(self):
        from repro.comm.messages import ServerInbox

        server = SilentServer()
        rng = random.Random(0)
        state = server.initial_state(rng)
        _, out = server.step(state, ServerInbox(from_user="provoke"), rng)
        assert out.to_user == "" and out.to_world == ""
