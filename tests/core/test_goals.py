"""Tests for goal evaluation semantics."""

from __future__ import annotations

import pytest

from repro.core.execution import ExecutionResult
from repro.core.goals import CompactGoal, FiniteGoal
from repro.core.referees import FunctionCompactReferee, FunctionFiniteReferee
from repro.core.strategy import WorldStrategy


class DummyWorld(WorldStrategy):
    def initial_state(self, rng):
        return 0

    def step(self, state, inbox, rng):
        from repro.comm.messages import WorldOutbox

        return state, WorldOutbox()


def execution(states, halted, output=None):
    result = ExecutionResult(halted=halted, user_output=output)
    result.world_states = list(states)
    result.rounds = [None] * (len(states) - 1)  # Only the count is used.
    return result


def finite_goal(predicate):
    return FiniteGoal(
        name="g", world=DummyWorld(), referee=FunctionFiniteReferee(predicate)
    )


def compact_goal(predicate, settle=0.5):
    return CompactGoal(
        name="g",
        world=DummyWorld(),
        referee=FunctionCompactReferee(predicate),
        settle_fraction=settle,
    )


class TestFiniteGoal:
    def test_achieved_requires_halt_and_acceptance(self):
        goal = finite_goal(lambda e: True)
        assert goal.evaluate(execution([0, 1], halted=True)).achieved
        assert not goal.evaluate(execution([0, 1], halted=False)).achieved

    def test_outcome_carries_output(self):
        goal = finite_goal(lambda e: True)
        outcome = goal.evaluate(execution([0], halted=True, output="ANSWER:1"))
        assert outcome.user_output == "ANSWER:1"

    def test_note_explains_non_halt(self):
        goal = finite_goal(lambda e: True)
        assert "halt" in goal.evaluate(execution([0, 1], halted=False)).note

    def test_is_compact_flag(self):
        assert not finite_goal(lambda e: True).is_compact


class TestCompactGoal:
    def test_achieved_when_bad_prefixes_stop_early(self):
        # Bad only at prefix 1 of 10; settle window is the last half.
        goal = compact_goal(lambda states: len(states) != 1)
        outcome = goal.evaluate(execution(list(range(10)), halted=False))
        assert outcome.achieved
        assert outcome.compact_verdict.bad_prefixes == 1

    def test_not_achieved_when_bad_prefix_late(self):
        goal = compact_goal(lambda states: len(states) != 9)
        outcome = goal.evaluate(execution(list(range(10)), halted=False))
        assert not outcome.achieved
        assert "round 9" in outcome.note

    def test_settle_fraction_bounds_validated(self):
        with pytest.raises(ValueError):
            compact_goal(lambda s: True, settle=0.0)
        with pytest.raises(ValueError):
            compact_goal(lambda s: True, settle=1.0)

    def test_stricter_settle_fraction_is_harder(self):
        # Bad prefix at 60% of the horizon: passes settle=0.3, fails 0.5.
        def predicate(states):
            return len(states) != 6

        lenient = compact_goal(predicate, settle=0.3)
        strict = compact_goal(predicate, settle=0.5)
        run = execution(list(range(10)), halted=False)
        assert lenient.evaluate(run).achieved
        assert not strict.evaluate(run).achieved

    def test_is_compact_flag(self):
        assert compact_goal(lambda s: True).is_compact
