"""Recording policies must change what is *kept*, never what *happens*.

``METRICS_RECORDING`` skips per-round allocations; everything metric
collection reads — world states, halt flag, user output, round count,
final user state, goal evaluation — must be identical to a ``FULL_RECORDING``
run from the same seed, on every benchmark goal family.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.metrics import collect_metrics
from repro.comm.codecs import IdentityCodec, codec_family
from repro.core.execution import (
    FULL_RECORDING,
    METRICS_RECORDING,
    RecordingPolicy,
    run_execution,
)
from repro.core.sensing import (
    ConstantSensing,
    FunctionSensing,
    GraceSensing,
    LastWorldMessageSensing,
    NoRecentProgressSensing,
)
from repro.core.views import BoundedUserView, UserView, ViewRecord
from repro.comm.messages import UserInbox, UserOutbox
from repro.mathx.modular import Field
from repro.qbf.generators import random_cnf, random_qbf
from repro.servers.advisors import AdvisorServer
from repro.servers.counting_provers import HonestCountingServer
from repro.servers.guides import GuideServer
from repro.servers.printer_servers import make_printer
from repro.servers.provers import HonestProverServer
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import AdvisorFollowingUser, follower_user_class
from repro.users.counting_users import CountingUser
from repro.users.delegation_users import DelegationUser
from repro.users.navigation_users import GuidedNavigator
from repro.users.printer_users import PrinterProtocolUser
from repro.worlds.computation import delegation_goal
from repro.worlds.control import control_goal, control_sensing
from repro.worlds.counting import counting_goal
from repro.worlds.navigation import corridor_grid, navigation_goal
from repro.worlds.printer import printing_goal

LAW = {"red": "blue", "blue": "red"}
F = Field()


def control_family():
    return (
        AdvisorFollowingUser(IdentityCodec()),
        AdvisorServer(LAW),
        control_goal(LAW),
        200,
    )


def control_universal_family():
    user = CompactUniversalUser(
        ListEnumeration(follower_user_class(codec_family(2))), control_sensing()
    )
    return user, AdvisorServer(LAW), control_goal(LAW), 400


def printer_family():
    return (
        PrinterProtocolUser("tagged", IdentityCodec()),
        make_printer("tagged"),
        printing_goal(["the document"]),
        120,
    )


def counting_family():
    formula = random_cnf(random.Random(1), 4, 5)
    return (
        CountingUser(IdentityCodec(), F),
        HonestCountingServer(F),
        counting_goal([formula]),
        300,
    )


def delegation_family():
    instances = [random_qbf(random.Random(s), 2) for s in (1, 4)]
    return (
        DelegationUser(IdentityCodec(), F),
        HonestProverServer(F),
        delegation_goal(instances),
        300,
    )


def navigation_family():
    grid = corridor_grid(8)
    return (
        GuidedNavigator(IdentityCodec()),
        GuideServer(grid),
        navigation_goal(grid),
        300,
    )


FAMILIES = [
    pytest.param(control_family, id="control"),
    pytest.param(control_universal_family, id="control-universal"),
    pytest.param(printer_family, id="printer"),
    pytest.param(counting_family, id="counting"),
    pytest.param(delegation_family, id="delegation"),
    pytest.param(navigation_family, id="navigation"),
]


class TestMetricsParity:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", [0, 7])
    def test_metrics_run_matches_full_run(self, family, seed):
        user, server, goal, max_rounds = family()
        full = run_execution(
            user, server, goal.world, max_rounds=max_rounds, seed=seed,
            recording=FULL_RECORDING,
        )
        user, server, goal, max_rounds = family()  # fresh strategies
        lean = run_execution(
            user, server, goal.world, max_rounds=max_rounds, seed=seed,
            recording=METRICS_RECORDING,
        )

        assert lean.rounds == []
        assert len(full.rounds) == full.rounds_executed
        assert lean.rounds_executed == full.rounds_executed
        assert lean.world_states == full.world_states
        assert lean.halted == full.halted
        assert lean.user_output == full.user_output
        # Some user states hold protocol sessions without ``__eq__``, so
        # compare type here and content via the metrics extracted below.
        assert type(lean.final_user_state) is type(full.rounds[-1].user_state_after)
        assert collect_metrics(lean, goal) == collect_metrics(full, goal)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_goal_outcome_identical(self, family):
        user, server, goal, max_rounds = family()
        full_outcome = goal.evaluate(
            run_execution(
                user, server, goal.world, max_rounds=max_rounds, seed=3
            )
        )
        user, server, goal, max_rounds = family()
        lean_outcome = goal.evaluate(
            run_execution(
                user, server, goal.world, max_rounds=max_rounds, seed=3,
                recording=METRICS_RECORDING,
            )
        )
        assert lean_outcome == full_outcome


class TestRecordingPolicy:
    def test_defaults(self):
        assert FULL_RECORDING.keep_rounds
        assert FULL_RECORDING.view_window is None
        assert not METRICS_RECORDING.keep_rounds
        assert METRICS_RECORDING.view_window == 0

    def test_for_sensing_uses_declared_window(self):
        policy = RecordingPolicy.for_sensing(NoRecentProgressSensing(stall_rounds=6))
        assert not policy.keep_rounds
        assert policy.view_window == 6
        assert RecordingPolicy.for_sensing(ConstantSensing(True)).view_window == 0

    def test_for_sensing_keeps_full_view_when_undeclared(self):
        custom = FunctionSensing(fn=lambda view: True, label="opaque")
        assert RecordingPolicy.for_sensing(custom).view_window is None

    def test_declared_windows(self):
        inner = LastWorldMessageSensing(predicate=lambda m: True)
        assert inner.view_window() is None  # last message can be arbitrarily old
        assert GraceSensing(ConstantSensing(True), 5).view_window() == 0
        assert NoRecentProgressSensing(stall_rounds=4).view_window() == 4

    def test_engine_honours_view_window(self):
        user, server, goal, max_rounds = control_family()
        policy = RecordingPolicy(keep_rounds=False, view_window=5, label="metrics")
        result = run_execution(
            user, server, goal.world, max_rounds=50, seed=0, recording=policy
        )
        view = result.user_view
        assert isinstance(view, BoundedUserView)
        assert len(view) == 50          # len counts every round...
        assert len(view.records) == 5   # ...but only the window is retained
        assert [r.round_index for r in view.records] == [45, 46, 47, 48, 49]


def record(index: int) -> ViewRecord:
    return ViewRecord(
        round_index=index,
        state_before=index,
        inbox=UserInbox(),
        outbox=UserOutbox(),
        state_after=index + 1,
    )


class TestBoundedUserView:
    def test_len_counts_total_not_retained(self):
        view = BoundedUserView(3)
        for i in range(10):
            view.append(record(i))
        assert len(view) == 10
        assert [r.round_index for r in view.records] == [7, 8, 9]

    def test_tail_within_window(self):
        view = BoundedUserView(4)
        for i in range(6):
            view.append(record(i))
        assert [r.round_index for r in view.tail(2)] == [4, 5]

    def test_zero_window_stores_nothing(self):
        view = BoundedUserView(0)
        for i in range(5):
            view.append(record(i))
        view.advance(3)
        assert len(view) == 8
        assert list(view) == []
        assert view.last() is None

    def test_sensing_on_bounded_view_matches_full(self):
        """A windowed sensing reads the same verdict off a bounded view."""
        sensing = NoRecentProgressSensing(stall_rounds=3)
        full = UserView()
        bounded = BoundedUserView(3)
        rng = random.Random(9)
        for i in range(40):
            inbox = UserInbox(from_world="ping" if rng.random() < 0.3 else "")
            rec = ViewRecord(
                round_index=i, state_before=i, inbox=inbox,
                outbox=UserOutbox(), state_after=i + 1,
            )
            full.append(rec)
            bounded.append(rec)
            assert sensing.indicate(bounded) == sensing.indicate(full)

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            BoundedUserView(-1)
