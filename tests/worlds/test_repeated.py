"""Tests for the repeated-computation world (compact delegation)."""

from __future__ import annotations

import random

import pytest

from repro.comm.codecs import IdentityCodec, ReverseCodec, codec_family
from repro.core.execution import run_execution
from repro.core.strategy import SilentServer, SilentUser
from repro.mathx.modular import Field
from repro.qbf.generators import random_qbf
from repro.servers.provers import CheatingProverServer, HonestProverServer
from repro.servers.wrappers import EncodedServer
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.delegation_users import (
    RepeatedDelegationUser,
    repeated_delegation_user_class,
)
from repro.worlds.repeated import (
    RepeatedComputationWorld,
    repeated_delegation_goal,
    repeated_delegation_sensing,
)

F = Field()
INSTANCES = [random_qbf(random.Random(s), 3) for s in (1, 2, 5)]
GOAL = repeated_delegation_goal(INSTANCES)


class TestWorldMechanics:
    def test_announces_session_and_instance(self):
        from repro.comm.messages import WorldInbox

        world = RepeatedComputationWorld(INSTANCES)
        rng = random.Random(0)
        state = world.initial_state(rng)
        state, out = world.step(state, WorldInbox(), rng)
        assert out.to_user.startswith("INSTANCE:0:")
        assert ";FB:" in out.to_user

    def test_correct_answer_scores_and_advances(self):
        from repro.comm.messages import WorldInbox

        world = RepeatedComputationWorld(INSTANCES)
        rng = random.Random(0)
        state = world.initial_state(rng)
        bit = "1" if state.truth else "0"
        state, out = world.step(
            state, WorldInbox(from_user=f"ANSWER:0={bit}"), rng
        )
        assert state.session == 1
        assert state.answered == 1 and state.mistakes == 0
        assert ";FB:ok" in out.to_user

    def test_wrong_answer_scores_mistake(self):
        from repro.comm.messages import WorldInbox

        world = RepeatedComputationWorld(INSTANCES)
        rng = random.Random(0)
        state = world.initial_state(rng)
        wrong = "0" if state.truth else "1"
        state, out = world.step(
            state, WorldInbox(from_user=f"ANSWER:0={wrong}"), rng
        )
        assert state.mistakes == 1
        assert ";FB:bad" in out.to_user

    def test_stale_session_answer_ignored(self):
        from repro.comm.messages import WorldInbox

        world = RepeatedComputationWorld(INSTANCES)
        rng = random.Random(0)
        state = world.initial_state(rng)
        state, _ = world.step(state, WorldInbox(from_user="ANSWER:7=1"), rng)
        assert state.answered == 0 and state.session == 0

    def test_deadline_scores_mistake_and_advances(self):
        from repro.comm.messages import WorldInbox

        world = RepeatedComputationWorld(INSTANCES, deadline=20)
        rng = random.Random(0)
        state = world.initial_state(rng)
        for _ in range(25):
            state, _ = world.step(state, WorldInbox(), rng)
        assert state.mistakes >= 1
        assert state.session >= 1

    def test_tight_deadline_rejected(self):
        with pytest.raises(ValueError):
            RepeatedComputationWorld(INSTANCES, deadline=10)


class TestRepeatedDelegation:
    def test_matched_user_answers_forever_without_mistakes(self):
        user = RepeatedDelegationUser(IdentityCodec(), F)
        server = HonestProverServer(F)
        result = run_execution(user, server, GOAL.world, max_rounds=2000, seed=0)
        state = result.final_world_state()
        assert GOAL.evaluate(result).achieved
        assert state.answered > 50
        assert state.mistakes == 0

    def test_wrong_codec_only_accrues_deadline_mistakes(self):
        user = RepeatedDelegationUser(ReverseCodec(), F)
        result = run_execution(
            user, HonestProverServer(F), GOAL.world, max_rounds=1000, seed=0
        )
        state = result.final_world_state()
        assert state.answered == 0
        assert state.mistakes > 0  # All deadline expiries, never wrong answers.

    def test_universal_over_codecs(self):
        codecs = codec_family(3)
        universal = CompactUniversalUser(
            ListEnumeration(repeated_delegation_user_class(codecs, F)),
            repeated_delegation_sensing(),
        )
        for index, codec in enumerate(codecs):
            server = EncodedServer(HonestProverServer(F), codec)
            result = run_execution(
                universal, server, GOAL.world, max_rounds=4000, seed=index
            )
            assert GOAL.evaluate(result).achieved, codec.name
            assert result.rounds[-1].user_state_after.index == index

    def test_cheating_prover_never_gets_an_answer_accepted(self):
        codecs = codec_family(3)
        universal = CompactUniversalUser(
            ListEnumeration(repeated_delegation_user_class(codecs, F)),
            repeated_delegation_sensing(),
        )
        result = run_execution(
            universal, CheatingProverServer(F, "constant"), GOAL.world,
            max_rounds=2000, seed=0,
        )
        state = result.final_world_state()
        assert state.answered == 0
        assert not GOAL.evaluate(result).achieved

    def test_silent_pairing_fails(self):
        result = run_execution(
            SilentUser(), SilentServer(), GOAL.world, max_rounds=1000, seed=0
        )
        assert not GOAL.evaluate(result).achieved
