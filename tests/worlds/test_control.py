"""Tests for the control world's scoring mechanics and goal semantics."""

from __future__ import annotations

import random

import pytest

from repro.comm.messages import WorldInbox
from repro.core.execution import run_execution
from repro.core.strategy import SilentServer, SilentUser
from repro.servers.advisors import AdvisorServer
from repro.users.control_users import AdvisorFollowingUser
from repro.comm.codecs import IdentityCodec
from repro.worlds.control import (
    ControlState,
    ControlWorld,
    all_permutation_laws,
    control_goal,
    control_sensing,
    random_law,
)

LAW = {"red": "blue", "blue": "red"}


def step_world(world, state, from_user="", seed=0):
    return world.step(state, WorldInbox(from_user=from_user), random.Random(seed))


class TestScoring:
    def test_correct_act_scores_ok(self):
        world = ControlWorld(LAW, obs_period=100, deadline=50)
        state = ControlState(round_index=1, pending=(("red", 0),))
        state, out = step_world(world, state, from_user="ACT:red=blue")
        assert state.last_event == "ok"
        assert state.mistakes == 0
        assert ";FB:ok" in out.to_user

    def test_wrong_act_scores_bad(self):
        world = ControlWorld(LAW, obs_period=100, deadline=50)
        state = ControlState(round_index=1, pending=(("red", 0),))
        state, _ = step_world(world, state, from_user="ACT:red=red")
        assert state.last_event == "bad"
        assert state.mistakes == 1

    def test_act_for_non_pending_obs_ignored(self):
        world = ControlWorld(LAW, obs_period=100, deadline=50)
        state = ControlState(round_index=1, pending=(("red", 0),))
        state, _ = step_world(world, state, from_user="ACT:blue=red")
        assert state.last_event == "none"
        assert state.pending == (("red", 0),)

    def test_act_matches_named_observation_not_fifo_head(self):
        world = ControlWorld(LAW, obs_period=100, deadline=50)
        state = ControlState(round_index=1, pending=(("red", 0), ("blue", 1)))
        state, _ = step_world(world, state, from_user="ACT:blue=red")
        assert state.last_event == "ok"
        assert state.pending == (("red", 0),)

    def test_overdue_observation_scores_bad(self):
        world = ControlWorld(LAW, obs_period=100, deadline=5)
        state = ControlState(round_index=6, pending=(("red", 0),))
        state, _ = step_world(world, state)
        assert state.last_event == "bad"
        assert state.mistakes == 1
        assert state.pending == ()

    def test_malformed_act_ignored(self):
        world = ControlWorld(LAW, obs_period=100, deadline=50)
        state = ControlState(round_index=1, pending=(("red", 0),))
        state, _ = step_world(world, state, from_user="ACT:redblue")
        assert state.last_event == "none"

    def test_observation_issued_on_period(self):
        world = ControlWorld(LAW, obs_period=3, deadline=50)
        state = ControlState(round_index=0)
        state, out = step_world(world, state)
        assert len(state.pending) == 1
        first_obs = state.pending[0][0]
        assert out.to_user.startswith(f"OBS:{first_obs}")
        # Off-period rounds re-announce the pending observation.
        state, out = step_world(world, state)
        assert len(state.pending) == 1
        assert out.to_user.startswith(f"OBS:{first_obs}")

    def test_no_pending_announces_dash(self):
        world = ControlWorld(LAW, obs_period=3, deadline=50)
        state = ControlState(round_index=1)  # Off-period, nothing pending.
        _, out = step_world(world, state)
        assert out.to_user.startswith("OBS:-")

    def test_observation_broadcast_to_server(self):
        world = ControlWorld(LAW, obs_period=1, deadline=50)
        state = ControlState(round_index=0)
        _, out = step_world(world, state)
        assert out.to_server.startswith("OBS:")


class TestValidation:
    def test_empty_law_rejected(self):
        with pytest.raises(ValueError):
            ControlWorld({})

    def test_tight_deadline_rejected(self):
        with pytest.raises(ValueError):
            ControlWorld(LAW, deadline=3)

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            ControlWorld(LAW, obs_period=0)


class TestGoal:
    def test_matched_follower_achieves(self):
        goal = control_goal(LAW)
        user = AdvisorFollowingUser(IdentityCodec())
        server = AdvisorServer(LAW)
        result = run_execution(user, server, goal.world, max_rounds=300, seed=1)
        outcome = goal.evaluate(result)
        assert outcome.achieved
        assert result.final_world_state().mistakes == 0

    def test_silent_user_fails_by_deadline(self):
        goal = control_goal(LAW)
        result = run_execution(
            SilentUser(), SilentServer(), goal.world, max_rounds=300, seed=1
        )
        assert not goal.evaluate(result).achieved
        assert result.final_world_state().mistakes > 0


class TestLawHelpers:
    def test_random_law_is_permutation(self):
        law = random_law(random.Random(0))
        assert sorted(law.keys()) == sorted(law.values())

    def test_all_permutation_laws_count(self):
        laws = all_permutation_laws(("a", "b", "c"))
        assert len(laws) == 6
        assert len({tuple(sorted(law.items())) for law in laws}) == 6


class TestSensing:
    def test_grace_then_feedback(self):
        from repro.comm.messages import UserInbox, UserOutbox
        from repro.core.views import UserView, ViewRecord

        sensing = control_sensing(grace_rounds=2)
        view = UserView()
        for i, fb in enumerate(["bad", "bad", "bad"]):
            view.append(
                ViewRecord(
                    i, i, UserInbox(from_world=f"OBS:-;FB:{fb}"), UserOutbox(), i
                )
            )
        assert not sensing.indicate(view)  # Past grace, last is bad.
        short = UserView(view.records[:2])
        assert sensing.indicate(short)  # Within grace.
