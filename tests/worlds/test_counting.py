"""Tests for the counting (#SAT delegation) world and its users/provers."""

from __future__ import annotations

import random

import pytest

from repro.comm.codecs import IdentityCodec, ReverseCodec, codec_family
from repro.core.execution import run_execution
from repro.core.strategy import SilentServer
from repro.ip.sumcheck import count_satisfying_assignments
from repro.mathx.modular import Field
from repro.qbf.generators import random_cnf
from repro.servers.counting_provers import (
    CheatingCountingServer,
    HonestCountingServer,
    OverflowCountingServer,
)
from repro.servers.wrappers import EncodedServer
from repro.users.counting_users import CountingUser, counting_user_class
from repro.users.scripted import ScriptedUser
from repro.worlds.counting import canonical_order, counting_goal

F = Field()
INSTANCES = [random_cnf(random.Random(s), 4, 5) for s in (0, 3)]
GOAL = counting_goal(INSTANCES)


def run_pair(user, server, max_rounds=400, seed=0):
    result = run_execution(user, server, GOAL.world, max_rounds=max_rounds, seed=seed)
    return GOAL.evaluate(result), result


class TestReferee:
    def test_accepts_true_count(self):
        # Determine the drawn instance's count via a probe run.
        _, probe = run_pair(ScriptedUser([], halt_after="COUNT:0"), SilentServer())
        from repro.qbf import formulas

        instance = formulas.parse(probe.final_world_state().instance)
        truth = count_satisfying_assignments(instance, canonical_order(instance))
        user = ScriptedUser([], halt_after=f"COUNT:{truth}")
        outcome, _ = run_pair(user, SilentServer())
        assert outcome.achieved

    def test_rejects_wrong_count(self):
        user = ScriptedUser([], halt_after="COUNT:9999")
        outcome, _ = run_pair(user, SilentServer())
        assert not outcome.achieved

    @pytest.mark.parametrize("bad", ["", "COUNT:", "COUNT:x", "ANSWER:3"])
    def test_rejects_malformed(self, bad):
        user = ScriptedUser([], halt_after=bad)
        outcome, _ = run_pair(user, SilentServer())
        assert not outcome.achieved


class TestHonestInteraction:
    def test_matched_codec_counts_correctly(self):
        outcome, result = run_pair(
            CountingUser(IdentityCodec(), F), HonestCountingServer(F)
        )
        assert outcome.achieved
        assert result.user_output.startswith("COUNT:")

    def test_through_codec(self):
        server = EncodedServer(HonestCountingServer(F), ReverseCodec())
        outcome, _ = run_pair(CountingUser(ReverseCodec(), F), server)
        assert outcome.achieved

    def test_wrong_codec_never_halts(self):
        outcome, result = run_pair(
            CountingUser(ReverseCodec(), F), HonestCountingServer(F)
        )
        assert not result.halted


class TestMaliceResistance:
    @pytest.mark.parametrize("style", ["inflate", "adaptive"])
    def test_cheating_counters_rejected(self, style):
        outcome, result = run_pair(
            CountingUser(IdentityCodec(), F), CheatingCountingServer(F, style)
        )
        assert not result.halted

    def test_overflow_claim_blocked_by_range_check(self):
        """count + p is field-equal to the truth — the integer range check
        is the only defence, and it must hold."""
        outcome, result = run_pair(
            CountingUser(IdentityCodec(), F), OverflowCountingServer(F)
        )
        assert not result.halted
        assert not result.rounds[-1].user_state_after.proof_accepted

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            CheatingCountingServer(F, "overcount")


class TestClassBuilder:
    def test_order_and_names(self):
        codecs = codec_family(3)
        users = counting_user_class(codecs, F)
        assert [u.name for u in users] == [f"count@{c.name}" for c in codecs]
