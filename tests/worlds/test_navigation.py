"""Tests for the navigation world, grid substrate, guides and navigators."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.codecs import IdentityCodec, ReverseCodec, codec_family
from repro.comm.messages import WorldInbox
from repro.core.execution import run_execution
from repro.core.helpfulness import is_helpful
from repro.core.strategy import SilentServer, SilentUser
from repro.servers.guides import GuideServer, MisleadingGuideServer, guide_server_class
from repro.universal.enumeration import ListEnumeration
from repro.universal.finite import FiniteUniversalUser
from repro.universal.schedules import doubling_sweep_trials
from repro.users.navigation_users import GuidedNavigator, navigator_user_class
from repro.worlds.navigation import (
    Grid,
    corridor_grid,
    navigation_goal,
    navigation_sensing,
    random_grid,
)


def open_grid(width=4, height=4):
    return Grid(width, height, frozenset(), (0, 0), (width - 1, height - 1))


class TestGrid:
    def test_validation(self):
        with pytest.raises(ValueError):
            Grid(1, 5, frozenset(), (0, 0), (0, 4))        # Too narrow.
        with pytest.raises(ValueError):
            Grid(4, 4, frozenset(), (9, 9), (0, 0))        # Start OOB.
        with pytest.raises(ValueError):
            Grid(4, 4, frozenset({(0, 0)}), (0, 0), (3, 3))  # Start walled.
        with pytest.raises(ValueError):
            # Full wall row disconnects start from target.
            Grid(4, 4, frozenset((x, 2) for x in range(4)), (0, 0), (3, 3))

    def test_distance_field_open_grid(self):
        grid = open_grid()
        field = grid.distance_field()
        assert field[(3, 3)] == 0
        assert field[(0, 0)] == 6  # Manhattan distance on an open grid.

    def test_shortest_step_decreases_distance(self):
        grid = corridor_grid(8)
        position = grid.start
        field = grid.distance_field()
        for _ in range(field[grid.start]):
            direction = grid.shortest_step(position)
            new_position = grid.step_from(position, direction)
            assert field[new_position] == field[position] - 1
            position = new_position
        assert position == grid.target

    def test_shortest_step_at_target_is_none(self):
        assert open_grid().shortest_step((3, 3)) is None

    def test_step_from_bump_stays(self):
        grid = open_grid()
        assert grid.step_from((0, 0), "north") == (0, 0)  # Edge bump.
        assert grid.step_from((0, 0), "nonsense") == (0, 0)

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_random_grids_always_connected(self, seed):
        grid = random_grid(random.Random(seed), 7, 7, 0.3)
        assert grid.distance_from_target(grid.start) is not None

    def test_corridor_length(self):
        grid = corridor_grid(10)
        # Down one side, across the bottom, up: (len-1) + 2 + ... exact:
        assert grid.distance_from_target(grid.start) == 11


class TestNavigationWorld:
    def test_reports_position_and_arrival(self):
        goal = navigation_goal(open_grid())
        rng = random.Random(0)
        state = goal.world.initial_state(rng)
        state, out = goal.world.step(state, WorldInbox(), rng)
        assert out.to_user == "POS:0,0;AT:0"
        assert out.to_server == "POS:0,0"

    def test_executes_moves_and_counts_bumps(self):
        world = navigation_goal(open_grid()).world
        rng = random.Random(0)
        state = world.initial_state(rng)
        state, _ = world.step(state, WorldInbox(from_user="MOVE:east"), rng)
        assert state.position == (1, 0) and state.bumps == 0
        state, _ = world.step(state, WorldInbox(from_user="MOVE:north"), rng)
        assert state.position == (1, 0) and state.bumps == 1

    def test_referee_requires_target_and_halt(self):
        goal = navigation_goal(open_grid())
        result = run_execution(
            SilentUser(), SilentServer(), goal.world, max_rounds=10, seed=0
        )
        assert not goal.evaluate(result).achieved


class TestGuidedNavigation:
    CODECS = codec_family(3)

    def test_matched_pair_is_step_optimal(self):
        grid = random_grid(random.Random(5), 8, 8, 0.25)
        goal = navigation_goal(grid)
        result = run_execution(
            GuidedNavigator(ReverseCodec()),
            guide_server_class(grid, self.CODECS)[1],
            goal.world, max_rounds=300, seed=0,
        )
        state = result.final_world_state()
        assert goal.evaluate(result).achieved
        assert state.moves == grid.distance_from_target(grid.start)
        assert state.bumps == 0

    def test_wrong_codec_never_moves(self):
        grid = open_grid()
        goal = navigation_goal(grid)
        result = run_execution(
            GuidedNavigator(ReverseCodec()), GuideServer(grid), goal.world,
            max_rounds=100, seed=0,
        )
        assert result.final_world_state().moves == 0
        assert not result.halted

    def test_universal_navigator(self):
        grid = random_grid(random.Random(7), 6, 6, 0.2)
        goal = navigation_goal(grid)
        user = FiniteUniversalUser(
            ListEnumeration(navigator_user_class(self.CODECS)),
            navigation_sensing(),
            schedule_factory=lambda cap: doubling_sweep_trials(
                None if cap is None else cap - 1
            ),
        )
        for index, server in enumerate(guide_server_class(grid, self.CODECS)):
            result = run_execution(user, server, goal.world, max_rounds=3000, seed=index)
            assert goal.evaluate(result).achieved, server.name
            # Wrong candidates are silent, so the path stays optimal.
            assert result.final_world_state().moves == grid.distance_from_target(
                grid.start
            )

    def test_every_guide_is_helpful(self):
        grid = open_grid(5, 5)
        goal = navigation_goal(grid)
        users = navigator_user_class(self.CODECS)
        for server in guide_server_class(grid, self.CODECS):
            assert is_helpful(server, goal, users, seeds=(0,), max_rounds=200)

    def test_misleading_guide_is_unhelpful(self):
        grid = open_grid(5, 5)
        goal = navigation_goal(grid)
        users = navigator_user_class(self.CODECS)
        assert not is_helpful(
            MisleadingGuideServer(grid), goal, users, seeds=(0,), max_rounds=300
        )

    def test_forgiving_after_junk_moves(self):
        """Wandering off first does not block success (forgiving goal)."""
        from repro.core.properties import check_forgiving
        from repro.users.scripted import BabblingUser

        grid = open_grid(5, 5)
        goal = navigation_goal(grid)
        report = check_forgiving(
            goal,
            rescuer=GuidedNavigator(IdentityCodec()),
            junk_users=[BabblingUser()],
            server=GuideServer(grid),
            junk_rounds=(0, 8),
            max_rounds=300,
        )
        assert report.holds, report.violations
