"""Tests for the computation (delegation) world."""

from __future__ import annotations

import random

from repro.comm.messages import UserInbox, UserOutbox, WorldInbox
from repro.core.execution import run_execution
from repro.core.strategy import SilentServer
from repro.core.views import UserView, ViewRecord
from repro.qbf.generators import random_qbf
from repro.users.scripted import ScriptedUser
from repro.worlds.computation import (
    ComputationWorld,
    VerifiedProofSensing,
    delegation_goal,
)


def instances(n=2, count=3):
    return [random_qbf(random.Random(s), n) for s in range(count)]


class TestComputationWorld:
    def test_announces_instance_every_round(self):
        world = ComputationWorld(instances())
        rng = random.Random(0)
        state = world.initial_state(rng)
        for _ in range(3):
            state, out = world.step(state, WorldInbox(), rng)
            assert out.to_user.startswith("INSTANCE:")

    def test_instance_fixed_for_execution(self):
        world = ComputationWorld(instances())
        rng = random.Random(0)
        state = world.initial_state(rng)
        first = world.step(state, WorldInbox(), rng)[1].to_user
        second = world.step(state, WorldInbox(), rng)[1].to_user
        assert first == second


class TestCorrectAnswerReferee:
    def _run_with_answer(self, answer):
        batch = instances(count=1)
        goal = delegation_goal(batch)
        truth = batch[0].evaluate()
        output = answer if answer is not None else f"ANSWER:{int(truth)}"
        user = ScriptedUser([], halt_after=output)
        result = run_execution(user, SilentServer(), goal.world, max_rounds=10, seed=0)
        return goal.evaluate(result), truth

    def test_accepts_correct_answer(self):
        outcome, _ = self._run_with_answer(None)
        assert outcome.achieved

    def test_rejects_wrong_answer(self):
        batch = instances(count=1)
        goal = delegation_goal(batch)
        wrong = 1 - int(batch[0].evaluate())
        user = ScriptedUser([], halt_after=f"ANSWER:{wrong}")
        result = run_execution(user, SilentServer(), goal.world, max_rounds=10, seed=0)
        assert not goal.evaluate(result).achieved

    def test_rejects_malformed_answers(self):
        for bad in ("", "ANSWER:", "ANSWER:2", "GUESS:1", "1"):
            outcome, _ = self._run_with_answer(bad)
            assert not outcome.achieved, bad


class TestVerifiedProofSensing:
    class _StateWithFlag:
        def __init__(self, accepted):
            self.proof_accepted = accepted

    def _view(self, flag_values):
        view = UserView()
        for i, flag in enumerate(flag_values):
            view.append(
                ViewRecord(
                    i, None, UserInbox(), UserOutbox(),
                    self._StateWithFlag(flag),
                )
            )
        return view

    def test_positive_only_after_acceptance(self):
        sensing = VerifiedProofSensing()
        assert not sensing.indicate(self._view([False, False]))
        assert sensing.indicate(self._view([False, True]))

    def test_negative_on_empty_view(self):
        assert not VerifiedProofSensing().indicate(UserView())

    def test_negative_on_states_without_flag(self):
        view = UserView(
            [ViewRecord(0, 0, UserInbox(), UserOutbox(), 42)]
        )
        assert not VerifiedProofSensing().indicate(view)
