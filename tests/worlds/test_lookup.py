"""Tests for the lookup world."""

from __future__ import annotations

import random

import pytest

from repro.comm.messages import WorldInbox
from repro.core.execution import run_execution
from repro.core.strategy import SilentServer
from repro.online.adapter import ThresholdUser
from repro.worlds.lookup import (
    LookupState,
    LookupWorld,
    lookup_goal,
    threshold_label,
)


def step_world(world, state, from_user="", seed=0):
    return world.step(state, WorldInbox(from_user=from_user), random.Random(seed))


class TestThresholdLabel:
    def test_semantics(self):
        assert threshold_label(3, 3)
        assert threshold_label(3, 7)
        assert not threshold_label(3, 2)

    def test_extremes(self):
        assert threshold_label(0, 0)       # θ=0 labels everything positive.
        assert not threshold_label(5, 4)


class TestScoring:
    def test_correct_prediction_scores_ok(self):
        world = LookupWorld(threshold=3, domain=8, query_period=100, deadline=50)
        state = LookupState(round_index=1, pending=((5, 0),))
        state, out = step_world(world, state, from_user="PRED:5=1")
        assert state.last_event == "ok"
        assert ";FB:ok@5" in out.to_user

    def test_wrong_prediction_scores_bad(self):
        world = LookupWorld(threshold=3, domain=8, query_period=100, deadline=50)
        state = LookupState(round_index=1, pending=((5, 0),))
        state, out = step_world(world, state, from_user="PRED:5=0")
        assert state.last_event == "bad"
        assert state.mistakes == 1
        assert ";FB:bad@5" in out.to_user

    def test_prediction_for_unknown_query_ignored(self):
        world = LookupWorld(threshold=3, domain=8, query_period=100, deadline=50)
        state = LookupState(round_index=1, pending=((5, 0),))
        state, _ = step_world(world, state, from_user="PRED:4=1")
        assert state.last_event == "none"

    def test_malformed_bit_ignored(self):
        world = LookupWorld(threshold=3, domain=8, query_period=100, deadline=50)
        state = LookupState(round_index=1, pending=((5, 0),))
        state, _ = step_world(world, state, from_user="PRED:5=2")
        assert state.last_event == "none"

    def test_overdue_query_scores_bad_with_attribution(self):
        world = LookupWorld(threshold=3, domain=8, query_period=100, deadline=4)
        state = LookupState(round_index=5, pending=((6, 0),))
        state, out = step_world(world, state)
        assert state.mistakes == 1
        assert ";FB:bad@6" in out.to_user

    def test_queries_issued_on_period(self):
        world = LookupWorld(threshold=3, domain=8, query_period=2, deadline=50)
        state = LookupState(round_index=0)
        state, out = step_world(world, state)
        first = state.pending[0][0]
        assert out.to_user.startswith(f"Q:{first}")
        # Off-period rounds re-announce the pending query.
        state, out = step_world(world, state)
        assert out.to_user.startswith(f"Q:{first}")

    def test_no_pending_announces_dash(self):
        world = LookupWorld(threshold=3, domain=8, query_period=2, deadline=50)
        state = LookupState(round_index=1)
        _, out = step_world(world, state)
        assert out.to_user.startswith("Q:-")


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(threshold=0, domain=1),
            dict(threshold=9, domain=8),
            dict(threshold=-1, domain=8),
            dict(threshold=3, domain=8, query_period=0),
            dict(threshold=3, domain=8, deadline=2),
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LookupWorld(**kwargs)


class TestGoal:
    def test_true_threshold_user_achieves(self):
        goal = lookup_goal(threshold=3, domain=8)
        result = run_execution(
            ThresholdUser(3), SilentServer(), goal.world, max_rounds=300, seed=2
        )
        assert goal.evaluate(result).achieved
        assert result.final_world_state().mistakes == 0

    def test_wrong_threshold_user_fails(self):
        goal = lookup_goal(threshold=3, domain=8)
        result = run_execution(
            ThresholdUser(7), SilentServer(), goal.world, max_rounds=300, seed=2
        )
        assert not goal.evaluate(result).achieved
        assert result.final_world_state().mistakes > 0
