"""Tests for the printer world and its goal/sensing."""

from __future__ import annotations

import random

import pytest

from repro.comm.messages import UserInbox, UserOutbox, WorldInbox
from repro.core.execution import run_execution
from repro.core.strategy import SilentUser
from repro.core.views import UserView, ViewRecord
from repro.servers.printer_servers import SpacePrinter
from repro.users.scripted import ScriptedUser
from repro.worlds.printer import (
    PrintedTailSensing,
    PrinterState,
    PrinterWorld,
    printing_goal,
    printing_sensing,
)


class TestPrinterWorld:
    def test_announces_job_every_round(self):
        world = PrinterWorld(["doc"])
        rng = random.Random(0)
        state = world.initial_state(rng)
        for _ in range(3):
            state, out = world.step(state, WorldInbox(), rng)
            assert out.to_user.startswith("JOB:doc")

    def test_accumulates_server_output(self):
        world = PrinterWorld(["doc"])
        rng = random.Random(0)
        state = world.initial_state(rng)
        state, _ = world.step(state, WorldInbox(from_server="OUT:ab"), rng)
        state, _ = world.step(state, WorldInbox(from_server="OUT:cd"), rng)
        assert state.printed == "abcd"

    def test_ignores_garbage_from_server(self):
        world = PrinterWorld(["doc"])
        rng = random.Random(0)
        state = world.initial_state(rng)
        state, _ = world.step(state, WorldInbox(from_server="%%garbage%%"), rng)
        assert state.printed == ""

    def test_feedback_reports_tail(self):
        world = PrinterWorld(["doc"], tail_length=4)
        rng = random.Random(0)
        state = PrinterState(document="doc", printed="abcdefgh")
        _, out = world.step(state, WorldInbox(), rng)
        assert ";TAIL:efgh" in out.to_user

    def test_blind_variant_reports_no_tail(self):
        world = PrinterWorld(["doc"], feedback=False)
        rng = random.Random(0)
        state = world.initial_state(rng)
        _, out = world.step(state, WorldInbox(), rng)
        assert "TAIL" not in out.to_user

    def test_document_drawn_from_list(self):
        world = PrinterWorld(["a-doc", "b-doc"])
        docs = {world.initial_state(random.Random(s)).document for s in range(20)}
        assert docs == {"a-doc", "b-doc"}

    def test_documents_with_separators_rejected(self):
        with pytest.raises(ValueError):
            PrinterWorld(["bad;doc"])
        with pytest.raises(ValueError):
            PrinterWorld(["bad:doc"])
        with pytest.raises(ValueError):
            PrinterWorld([])

    def test_printed_stream_bounded(self):
        world = PrinterWorld(["doc"])
        rng = random.Random(0)
        state = PrinterState(document="doc", printed="x" * 65536)
        state, _ = world.step(state, WorldInbox(from_server="OUT:yy"), rng)
        assert len(state.printed) == 65536
        assert state.printed.endswith("yy")


class TestPrintedReferee:
    def test_substring_semantics(self):
        goal = printing_goal(["doc"])
        # Two silent rounds let the command reach the printer and the output
        # reach the paper (one-round channel latency each) before halting.
        user = ScriptedUser(
            [UserOutbox(to_server="PRINT junkdocjunk"), UserOutbox(), UserOutbox()],
            halt_after="done",
        )
        result = run_execution(
            user, SpacePrinter(), goal.world, max_rounds=20, seed=0
        )
        # Note: world picks "doc"; printed contains it as substring.
        assert goal.evaluate(result).achieved

    def test_rejects_wrong_output(self):
        goal = printing_goal(["doc"])
        user = ScriptedUser([UserOutbox(to_server="PRINT other")], halt_after="done")
        result = run_execution(
            user, SpacePrinter(), goal.world, max_rounds=20, seed=0
        )
        assert not goal.evaluate(result).achieved

    def test_rejects_non_halting_run(self):
        goal = printing_goal(["doc"])
        result = run_execution(
            SilentUser(), SpacePrinter(), goal.world, max_rounds=10, seed=0
        )
        assert not goal.evaluate(result).achieved


class TestPrintedTailSensing:
    def _view(self, messages):
        view = UserView()
        for i, m in enumerate(messages):
            view.append(
                ViewRecord(i, i, UserInbox(from_world=m), UserOutbox(), i + 1)
            )
        return view

    def test_positive_when_document_in_tail(self):
        sensing = printing_sensing()
        assert sensing.indicate(self._view(["JOB:doc;TAIL:xxdocxx"]))

    def test_negative_when_not_printed(self):
        sensing = printing_sensing()
        assert not sensing.indicate(self._view(["JOB:doc;TAIL:garbage"]))

    def test_negative_without_any_feedback(self):
        sensing = PrintedTailSensing()
        assert not sensing.indicate(self._view([]))

    def test_negative_in_blind_world(self):
        # No TAIL section -> no evidence -> negative (safe default).
        sensing = PrintedTailSensing()
        assert not sensing.indicate(self._view(["JOB:doc"]))

    def test_uses_latest_announcement(self):
        sensing = printing_sensing()
        view = self._view(["JOB:doc;TAIL:doc", "JOB:doc;TAIL:"])
        assert not sensing.indicate(view)
