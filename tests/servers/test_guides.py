"""Tests for the maze guide servers."""

from __future__ import annotations

import random

from repro.comm.messages import ServerInbox
from repro.servers.guides import GuideServer, MisleadingGuideServer, guide_server_class
from repro.comm.codecs import codec_family
from repro.worlds.navigation import Grid, corridor_grid


def open_grid():
    return Grid(4, 4, frozenset(), (0, 0), (3, 3))


def advise(server, from_world, seed=0):
    rng = random.Random(seed)
    state = server.initial_state(rng)
    _, out = server.step(state, ServerInbox(from_world=from_world), rng)
    return out.to_user


class TestGuideServer:
    def test_advice_names_position_and_decreases_distance(self):
        grid = corridor_grid(6)
        guide = GuideServer(grid)
        advice = advise(guide, "POS:0,0")
        assert advice.startswith("GO:0,0=")
        direction = advice.partition("=")[2]
        field = grid.distance_field()
        assert field[grid.step_from((0, 0), direction)] == field[(0, 0)] - 1

    def test_silent_at_target(self):
        grid = open_grid()
        assert advise(GuideServer(grid), "POS:3,3") == ""

    def test_silent_on_garbage(self):
        guide = GuideServer(open_grid())
        for bad in ("", "POS:", "POS:x,y", "POS:1", "WEATHER:sunny", "POS:99,99"):
            assert advise(guide, bad) == "", bad

    def test_silent_on_wall_position(self):
        grid = corridor_grid(6)
        wall = next(iter(grid.walls))
        assert advise(GuideServer(grid), f"POS:{wall[0]},{wall[1]}") == ""

    def test_deterministic(self):
        grid = open_grid()
        assert advise(GuideServer(grid), "POS:1,1") == advise(
            GuideServer(grid), "POS:1,1", seed=99
        )


class TestMisleadingGuide:
    def test_advice_never_decreases_distance(self):
        grid = open_grid()
        guide = MisleadingGuideServer(grid)
        field = grid.distance_field()
        advised = 0
        for cell in field:
            if cell == grid.target:
                continue
            advice = advise(guide, f"POS:{cell[0]},{cell[1]}")
            if not advice:
                # At distance-maximal cells every neighbour is closer; the
                # misleader goes silent rather than help.
                assert all(
                    field[n] < field[cell] for _, n in grid.neighbours(cell)
                )
                continue
            advised += 1
            direction = advice.partition("=")[2]
            assert field[grid.step_from(cell, direction)] >= field[cell]
        assert advised > 5  # It does mislead almost everywhere.

    def test_silent_at_target(self):
        assert advise(MisleadingGuideServer(open_grid()), "POS:3,3") == ""


class TestClassBuilder:
    def test_one_guide_per_codec(self):
        codecs = codec_family(3)
        servers = guide_server_class(open_grid(), codecs)
        assert [s.codec.name for s in servers] == [c.name for c in codecs]

    def test_members_speak_their_codec(self):
        codecs = codec_family(3)
        for server, codec in zip(guide_server_class(open_grid(), codecs), codecs):
            wire = advise(server, "POS:0,0")
            assert codec.decode(wire).startswith("GO:0,0=")
