"""Tests for the printer dialects."""

from __future__ import annotations

import random

import pytest

from repro.comm.codecs import codec_family
from repro.comm.messages import ServerInbox
from repro.servers.printer_servers import (
    DIALECTS,
    HandshakePrinter,
    SpacePrinter,
    TaggedPrinter,
    make_printer,
    printer_server_class,
)


def drive(server, messages, seed=0):
    """Feed messages; return the list of (to_user, to_world) pairs."""
    rng = random.Random(seed)
    state = server.initial_state(rng)
    outputs = []
    for message in messages:
        state, out = server.step(state, ServerInbox(from_user=message), rng)
        outputs.append((out.to_user, out.to_world))
    return outputs


class TestSpacePrinter:
    def test_prints_on_command(self):
        [(ack, out)] = drive(SpacePrinter(), ["PRINT hello"])
        assert ack == "ACK:" and out == "OUT:hello"

    def test_rejects_other_messages(self):
        [(ack, out)] = drive(SpacePrinter(), ["JOB:hello"])
        assert ack == "ERR:" and out == ""

    def test_silent_on_silence(self):
        [(ack, out)] = drive(SpacePrinter(), [""])
        assert ack == "" and out == ""


class TestTaggedPrinter:
    def test_prints_on_command(self):
        [(ack, out)] = drive(TaggedPrinter(), ["JOB:hello"])
        assert ack == "DONE:" and out == "OUT:hello"

    def test_rejects_space_dialect(self):
        [(ack, out)] = drive(TaggedPrinter(), ["PRINT hello"])
        assert ack == "ERR:" and out == ""


class TestHandshakePrinter:
    def test_data_before_hello_refused(self):
        [(ack, out)] = drive(HandshakePrinter(), ["DATA hello"])
        assert ack == "ERR:locked" and out == ""

    def test_hello_then_data_prints(self):
        outputs = drive(HandshakePrinter(), ["HELLO", "DATA hello"])
        assert outputs[0][0] == "READY:"
        assert outputs[1] == ("DONE:", "OUT:hello")

    def test_stays_unlocked_between_jobs(self):
        outputs = drive(
            HandshakePrinter(), ["HELLO", "DATA a", "DATA b"]
        )
        assert outputs[2] == ("DONE:", "OUT:b")

    def test_hello_is_idempotent(self):
        outputs = drive(HandshakePrinter(), ["HELLO", "HELLO", "DATA x"])
        assert outputs[2][1] == "OUT:x"


class TestFactory:
    @pytest.mark.parametrize("dialect", DIALECTS)
    def test_known_dialects(self, dialect):
        assert make_printer(dialect).name == f"printer-{dialect}"

    def test_unknown_dialect_rejected(self):
        with pytest.raises(ValueError):
            make_printer("laser")

    def test_class_is_cross_product_in_order(self):
        codecs = codec_family(3)
        servers = printer_server_class(("space", "tagged"), codecs)
        assert len(servers) == 6
        assert servers[0].name == "printer-space@id"
        assert servers[4].name == "printer-tagged@reverse"
