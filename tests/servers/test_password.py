"""Tests for password-locked servers."""

from __future__ import annotations

import random

import pytest

from repro.comm.messages import ServerInbox
from repro.servers.advisors import AdvisorServer
from repro.servers.password import PasswordServer, all_passwords, password_server_class

LAW = {"red": "blue", "blue": "red"}


def drive(server, messages, seed=0, from_world=""):
    rng = random.Random(seed)
    state = server.initial_state(rng)
    replies = []
    for message in messages:
        state, out = server.step(
            state, ServerInbox(from_user=message, from_world=from_world), rng
        )
        replies.append(out.to_user)
    return replies


class TestAllPasswords:
    def test_count_and_order(self):
        pws = all_passwords(3)
        assert len(pws) == 8
        assert pws[0] == "000" and pws[-1] == "111"

    def test_bits_validated(self):
        with pytest.raises(ValueError):
            all_passwords(0)


class TestPasswordServer:
    def test_correct_password_grants(self):
        server = PasswordServer("101", AdvisorServer(LAW))
        assert drive(server, ["AUTH:101"]) == ["GRANTED:"]

    def test_wrong_password_denied_uniformly(self):
        server = PasswordServer("101", AdvisorServer(LAW))
        replies = drive(server, ["AUTH:100", "AUTH:111", "whatever"])
        assert replies == ["DENIED:", "DENIED:", "DENIED:"]

    def test_inner_frozen_while_locked(self):
        server = PasswordServer("101", AdvisorServer(LAW))
        # World announces an observation, but the locked advisor must not advise.
        replies = drive(server, [""], from_world="OBS:red")
        assert replies == [""]

    def test_inner_active_after_unlock(self):
        server = PasswordServer("101", AdvisorServer(LAW))
        rng = random.Random(0)
        state = server.initial_state(rng)
        state, _ = server.step(state, ServerInbox(from_user="AUTH:101"), rng)
        _, out = server.step(
            state, ServerInbox(from_world="OBS:red"), rng
        )
        assert out.to_user == "ADV:red=blue"

    def test_unlock_is_permanent(self):
        server = PasswordServer("101", AdvisorServer(LAW))
        rng = random.Random(0)
        state = server.initial_state(rng)
        state, _ = server.step(state, ServerInbox(from_user="AUTH:101"), rng)
        state, _ = server.step(state, ServerInbox(from_user="junk"), rng)
        _, out = server.step(state, ServerInbox(from_world="OBS:blue"), rng)
        assert out.to_user == "ADV:blue=red"

    def test_empty_password_rejected(self):
        with pytest.raises(ValueError):
            PasswordServer("", AdvisorServer(LAW))


class TestPasswordClass:
    def test_class_size(self):
        servers = password_server_class(3, LAW)
        assert len(servers) == 8

    def test_each_member_has_distinct_password(self):
        servers = password_server_class(2, LAW)
        names = {s.name for s in servers}
        assert len(names) == 4
