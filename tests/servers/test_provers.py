"""Tests for the prover servers' wire protocol."""

from __future__ import annotations

import random

import pytest

from repro.comm.messages import ServerInbox
from repro.ip.degree import operator_schedule
from repro.mathx.modular import Field
from repro.mathx.polynomials import Poly
from repro.qbf.generators import random_qbf
from repro.servers.provers import (
    CheatingProverServer,
    HonestProverServer,
    LazyProverServer,
)

F = Field()
QBF_INSTANCE = random_qbf(random.Random(3), 2)
WIRE = QBF_INSTANCE.serialize()


def drive(server, messages, seed=0):
    rng = random.Random(seed)
    state = server.initial_state(rng)
    replies = []
    for message in messages:
        state, out = server.step(state, ServerInbox(from_user=message), rng)
        replies.append(out.to_user)
    return replies


class TestHonestProverServer:
    def test_claims_truth(self):
        [claim] = drive(HonestProverServer(F), [f"PROVE:{WIRE}"])
        assert claim == f"CLAIM:{int(QBF_INSTANCE.evaluate())}"

    def test_serves_rounds_in_order(self):
        replies = drive(
            HonestProverServer(F), [f"PROVE:{WIRE}", "ROUND:0"]
        )
        assert replies[1].startswith("POLY:0:")
        poly = Poly.deserialize(F, replies[1].split(":", 2)[2])
        schedule = list(reversed(operator_schedule(QBF_INSTANCE)))
        assert poly.degree <= schedule[0].degree_bound

    def test_out_of_order_round_rejected(self):
        replies = drive(HonestProverServer(F), [f"PROVE:{WIRE}", "ROUND:5:1"])
        assert replies[1].startswith("ERR:expected-round")

    def test_negative_round_rejected(self):
        # A fresh session's re-serve window (next_round - 1) must not admit
        # ROUND:-1 — it used to index the operator schedule from the end
        # and crash (found by the garbage-stream fuzz test).
        replies = drive(HonestProverServer(F), [f"PROVE:{WIRE}", "ROUND:-1"])
        assert replies[1].startswith("ERR:expected-round")

    def test_reserves_previous_round_idempotently(self):
        replies = drive(
            HonestProverServer(F), [f"PROVE:{WIRE}", "ROUND:0", "ROUND:0"]
        )
        assert replies[1] == replies[2]

    def test_round_without_session_rejected(self):
        [reply] = drive(HonestProverServer(F), ["ROUND:0"])
        assert reply == "ERR:no-session"

    def test_bad_instance_rejected(self):
        [reply] = drive(HonestProverServer(F), ["PROVE:garbage"])
        assert reply == "ERR:bad-instance"

    def test_bad_round_payloads_rejected(self):
        replies = drive(
            HonestProverServer(F),
            [f"PROVE:{WIRE}", "ROUND:zero", "ROUND:0", "ROUND:1:notanumber"],
        )
        assert replies[1] == "ERR:bad-round"
        assert replies[3] == "ERR:bad-challenge"

    def test_unknown_request_rejected(self):
        [reply] = drive(HonestProverServer(F), ["HELLO?"])
        assert reply == "ERR:unknown-request"

    def test_silence_ignored(self):
        [reply] = drive(HonestProverServer(F), [""])
        assert reply == ""

    def test_new_prove_resets_session(self):
        replies = drive(
            HonestProverServer(F),
            [f"PROVE:{WIRE}", "ROUND:0", f"PROVE:{WIRE}", "ROUND:0"],
        )
        assert replies[3].startswith("POLY:0:")


class TestCheatingProverServer:
    @pytest.mark.parametrize("style", ["flip", "constant", "random"])
    def test_claims_wrong_value(self, style):
        server = CheatingProverServer(F, style)
        [claim] = drive(server, [f"PROVE:{WIRE}"])
        assert claim == f"CLAIM:{1 - int(QBF_INSTANCE.evaluate())}"

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            CheatingProverServer(F, "sneaky")


class TestRandomCheatingProverSeedPlumbing:
    """Regression for the RL001 finding in ``CheatingProverServer``.

    The random-style cheater used to build ``random.Random(self._seed)``
    inside ``_build_prover`` — ignoring the threaded ``rng`` — so every
    execution replayed one frozen stream of cheating polynomials and a
    verifier only ever faced a single adversarial transcript.  The stream
    must now derive from the execution's rng: different execution seeds
    give different cheating polynomials, equal seeds replay exactly.
    """

    MESSAGES = [f"PROVE:{WIRE}", "ROUND:0"]

    def test_streams_differ_across_execution_seeds(self):
        first = drive(CheatingProverServer(F, "random"), self.MESSAGES, seed=0)
        second = drive(CheatingProverServer(F, "random"), self.MESSAGES, seed=1)
        assert first[0] == second[0]  # the (wrong) claim stays deterministic
        assert first[1] != second[1]  # the polynomials must not be frozen

    def test_same_execution_seed_replays_identically(self):
        first = drive(CheatingProverServer(F, "random"), self.MESSAGES, seed=7)
        second = drive(CheatingProverServer(F, "random"), self.MESSAGES, seed=7)
        assert first == second

    def test_server_seed_still_differentiates_streams(self):
        first = drive(CheatingProverServer(F, "random", seed=0), self.MESSAGES)
        second = drive(CheatingProverServer(F, "random", seed=1), self.MESSAGES)
        assert first[1] != second[1]


class TestLazyProverServer:
    def test_claims_but_never_proves(self):
        replies = drive(LazyProverServer(1), [f"PROVE:{WIRE}", "ROUND:0"])
        assert replies[0] == "CLAIM:1"
        assert replies[1] == "ERR:wont-prove"

    def test_bit_validated(self):
        with pytest.raises(ValueError):
            LazyProverServer(2)
