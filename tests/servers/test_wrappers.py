"""Tests for codec wrapping and resettable servers."""

from __future__ import annotations

import random

import pytest

from repro.comm.codecs import CaesarCodec, PrefixCodec, ReverseCodec
from repro.comm.messages import ServerInbox, ServerOutbox
from repro.core.strategy import ServerStrategy
from repro.servers.printer_servers import SpacePrinter
from repro.servers.wrappers import EncodedServer, ResettableServer


class TestEncodedServer:
    def test_decodes_user_messages(self):
        server = EncodedServer(SpacePrinter(), ReverseCodec())
        rng = random.Random(0)
        state = server.initial_state(rng)
        wire = ReverseCodec().encode("PRINT doc")
        _, out = server.step(state, ServerInbox(from_user=wire), rng)
        assert out.to_world == "OUT:doc"

    def test_encodes_replies_to_user(self):
        server = EncodedServer(SpacePrinter(), CaesarCodec(shift=1))
        rng = random.Random(0)
        state = server.initial_state(rng)
        wire = CaesarCodec(shift=1).encode("PRINT doc")
        _, out = server.step(state, ServerInbox(from_user=wire), rng)
        assert CaesarCodec(shift=1).decode(out.to_user) == "ACK:"

    def test_world_channel_not_encoded(self):
        """The server's physical effect must not be scrambled."""
        server = EncodedServer(SpacePrinter(), ReverseCodec())
        rng = random.Random(0)
        state = server.initial_state(rng)
        wire = ReverseCodec().encode("PRINT doc")
        _, out = server.step(state, ServerInbox(from_user=wire), rng)
        assert out.to_world == "OUT:doc"  # Plaintext, not reversed.

    def test_undecodable_message_treated_as_silence(self):
        server = EncodedServer(SpacePrinter(), PrefixCodec(sigil="~"))
        rng = random.Random(0)
        state = server.initial_state(rng)
        _, out = server.step(state, ServerInbox(from_user="no sigil"), rng)
        assert out.to_user == "" and out.to_world == ""

    def test_silence_passes_through(self):
        server = EncodedServer(SpacePrinter(), ReverseCodec())
        rng = random.Random(0)
        state = server.initial_state(rng)
        _, out = server.step(state, ServerInbox(), rng)
        assert out.to_user == ""

    def test_name_combines_inner_and_codec(self):
        server = EncodedServer(SpacePrinter(), ReverseCodec())
        assert "printer-space" in server.name and "reverse" in server.name


class _SessionServer(ServerStrategy):
    """Counts messages since construction; replies with the count."""

    def initial_state(self, rng):
        return 0

    def step(self, state, inbox, rng):
        if inbox.from_user:
            state += 1
            return state, ServerOutbox(to_user=str(state))
        return state, ServerOutbox()


class TestResettableServer:
    def test_resets_after_idle_period(self):
        server = ResettableServer(_SessionServer(), idle_reset=3)
        rng = random.Random(0)
        state = server.initial_state(rng)
        state, out = server.step(state, ServerInbox(from_user="x"), rng)
        assert out.to_user == "1"
        for _ in range(3):  # Idle long enough to trigger the reset.
            state, _ = server.step(state, ServerInbox(), rng)
        state, out = server.step(state, ServerInbox(from_user="x"), rng)
        assert out.to_user == "1"  # Fresh session.

    def test_no_reset_while_active(self):
        server = ResettableServer(_SessionServer(), idle_reset=3)
        rng = random.Random(0)
        state = server.initial_state(rng)
        for expected in ("1", "2", "3", "4", "5"):
            state, out = server.step(state, ServerInbox(from_user="x"), rng)
            assert out.to_user == expected

    def test_idle_reset_validated(self):
        with pytest.raises(ValueError):
            ResettableServer(_SessionServer(), idle_reset=0)

    def test_survives_one_round_short_of_timeout(self):
        """Regression: the reset must not fire at idle_reset - 1 silences."""
        server = ResettableServer(_SessionServer(), idle_reset=3)
        rng = random.Random(0)
        state = server.initial_state(rng)
        state, out = server.step(state, ServerInbox(from_user="x"), rng)
        assert out.to_user == "1"
        for _ in range(2):  # Exactly idle_reset - 1 silent rounds.
            state, _ = server.step(state, ServerInbox(), rng)
        state, out = server.step(state, ServerInbox(from_user="x"), rng)
        assert out.to_user == "2"  # Session still alive.

    def test_resets_exactly_at_timeout_boundary(self):
        """The idle_reset-th consecutive silence is the one that resets."""
        server = ResettableServer(_SessionServer(), idle_reset=3)
        rng = random.Random(0)
        state = server.initial_state(rng)
        state, out = server.step(state, ServerInbox(from_user="x"), rng)
        assert out.to_user == "1"
        for _ in range(3):  # Exactly idle_reset silent rounds.
            state, _ = server.step(state, ServerInbox(), rng)
        state, out = server.step(state, ServerInbox(from_user="x"), rng)
        assert out.to_user == "1"  # Fresh session: the reset fired.

    def test_any_message_restarts_the_countdown(self):
        """A non-silent message mid-countdown zeroes the silence counter."""
        server = ResettableServer(_SessionServer(), idle_reset=3)
        rng = random.Random(0)
        state = server.initial_state(rng)
        state, _ = server.step(state, ServerInbox(from_user="x"), rng)
        for _ in range(2):  # Almost timed out...
            state, _ = server.step(state, ServerInbox(), rng)
        state, out = server.step(state, ServerInbox(from_user="x"), rng)
        assert out.to_user == "2"  # ...but the message kept the session.
        assert state.silent_rounds == 0
        for _ in range(2):  # idle_reset - 1 again: still no reset.
            state, _ = server.step(state, ServerInbox(), rng)
        state, out = server.step(state, ServerInbox(from_user="x"), rng)
        assert out.to_user == "3"

    def test_step_does_not_mutate_prior_state(self):
        """Recorded histories need distinct before/after state snapshots."""
        server = ResettableServer(_SessionServer(), idle_reset=3)
        rng = random.Random(0)
        before = server.initial_state(rng)
        after, _ = server.step(before, ServerInbox(), rng)
        assert after is not before
        assert before.silent_rounds == 0
        assert after.silent_rounds == 1
