"""Tests for advisor servers."""

from __future__ import annotations

import random

import pytest

from repro.comm.codecs import codec_family
from repro.comm.messages import ServerInbox
from repro.servers.advisors import (
    AdvisorServer,
    MisleadingAdvisorServer,
    advisor_server_class,
)

LAW = {"red": "blue", "blue": "green", "green": "red"}


def advise(server, from_world, seed=0):
    rng = random.Random(seed)
    state = server.initial_state(rng)
    _, out = server.step(state, ServerInbox(from_world=from_world), rng)
    return out.to_user


class TestAdvisorServer:
    def test_advises_law_action_with_attribution(self):
        assert advise(AdvisorServer(LAW), "OBS:red") == "ADV:red=blue"

    def test_silent_without_observation(self):
        assert advise(AdvisorServer(LAW), "") == ""
        assert advise(AdvisorServer(LAW), "OBS:-") == ""

    def test_silent_on_foreign_symbol(self):
        assert advise(AdvisorServer(LAW), "OBS:purple") == ""

    def test_ignores_non_obs_world_messages(self):
        assert advise(AdvisorServer(LAW), "WEATHER:rainy") == ""

    def test_empty_law_rejected(self):
        with pytest.raises(ValueError):
            AdvisorServer({})


class TestMisleadingAdvisor:
    def test_always_advises_wrong_action(self):
        for observation, correct in LAW.items():
            advice = advise(MisleadingAdvisorServer(LAW), f"OBS:{observation}")
            _, _, payload = advice.partition(":")
            obs, _, action = payload.partition("=")
            assert obs == observation
            assert action != correct

    def test_needs_multiple_actions(self):
        with pytest.raises(ValueError):
            MisleadingAdvisorServer({"a": "x", "b": "x"})


class TestAdvisorClass:
    def test_one_server_per_codec(self):
        codecs = codec_family(5)
        servers = advisor_server_class(LAW, codecs)
        assert len(servers) == 5
        assert [s.codec.name for s in servers] == [c.name for c in codecs]

    def test_members_speak_their_codec(self):
        codecs = codec_family(3)
        servers = advisor_server_class(LAW, codecs)
        for server, codec in zip(servers, codecs):
            wire = advise(server, "OBS:red")
            assert codec.decode(wire) == "ADV:red=blue"
