"""Tests for fault-injection wrappers."""

from __future__ import annotations

import random

import pytest

from repro.comm.messages import ServerInbox
from repro.servers.faulty import DroppingServer, GarblingServer, IntermittentServer
from repro.servers.printer_servers import SpacePrinter


def drive(server, messages, seed=0):
    rng = random.Random(seed)
    state = server.initial_state(rng)
    outs = []
    for message in messages:
        state, out = server.step(state, ServerInbox(from_user=message), rng)
        outs.append(out)
    return outs


class TestDroppingServer:
    def test_drops_roughly_at_rate(self):
        server = DroppingServer(SpacePrinter(), drop_probability=0.5)
        outs = drive(server, ["PRINT x"] * 400)
        acks = sum(1 for o in outs if o.to_user)
        assert 120 < acks < 280  # ~200 expected.

    def test_world_channel_never_dropped(self):
        server = DroppingServer(SpacePrinter(), drop_probability=0.9)
        outs = drive(server, ["PRINT x"] * 50)
        assert all(o.to_world == "OUT:x" for o in outs)

    def test_zero_probability_is_transparent(self):
        server = DroppingServer(SpacePrinter(), drop_probability=0.0)
        outs = drive(server, ["PRINT x"] * 10)
        assert all(o.to_user == "ACK:" for o in outs)

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            DroppingServer(SpacePrinter(), drop_probability=1.0)


class TestIntermittentServer:
    def test_dead_phase_is_silent(self):
        server = IntermittentServer(SpacePrinter(), on_rounds=2, off_rounds=2)
        outs = drive(server, ["PRINT x"] * 8)
        pattern = [bool(o.to_world) for o in outs]
        assert pattern == [True, True, False, False, True, True, False, False]

    def test_inner_state_preserved_across_dead_phase(self):
        from repro.servers.printer_servers import HandshakePrinter

        server = IntermittentServer(HandshakePrinter(), on_rounds=2, off_rounds=1)
        outs = drive(server, ["HELLO", "DATA x", "DATA y", "DATA z"])
        # Round 0: HELLO unlocks; round 1: prints; round 2: dead; round 3:
        # still unlocked from round 0.
        assert outs[1].to_world == "OUT:x"
        assert outs[2].to_world == ""
        assert outs[3].to_world == "OUT:z"

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            IntermittentServer(SpacePrinter(), on_rounds=0, off_rounds=1)


class TestGarblingServer:
    def test_garbles_at_rate_but_never_silences(self):
        server = GarblingServer(SpacePrinter(), garble_probability=0.5, noise="###")
        outs = drive(server, ["PRINT x"] * 400)
        garbled = sum(1 for o in outs if o.to_user == "###")
        clean = sum(1 for o in outs if o.to_user == "ACK:")
        assert garbled + clean == 400
        assert 120 < garbled < 280

    def test_world_channel_untouched(self):
        server = GarblingServer(SpacePrinter(), garble_probability=0.9)
        outs = drive(server, ["PRINT x"] * 50)
        assert all(o.to_world == "OUT:x" for o in outs)

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            GarblingServer(SpacePrinter(), garble_probability=-0.1)
