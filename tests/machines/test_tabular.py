"""Tabular strategy adapters, the relay cast builders, and machine bridges.

The adapters must behave identically on both execution tiers (scalar
engine and vectorized kernel — compile parity is pinned in
``tests/core/test_batch.py``); here we pin their scalar semantics, the
builders' validation, the relay goal's "one achieving cell per matching
codec" shape, and the :class:`TabularStrategy` bridges grown onto
:class:`TransducerUser` and :class:`VMUser`.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.comm.messages import SILENCE
from repro.core.batch import (
    HAVE_NUMPY,
    TabularParty,
    TabularStrategy,
    compile_tabular_cast,
)
from repro.core.execution import run_execution
from repro.machines.tabular import (
    RELAY_LATENCY,
    StateFlagPredicate,
    TabularUser,
    coded_server,
    coded_server_class,
    cycle_world,
    relay_decoder_class,
    relay_goal,
    relay_user,
)
from repro.machines.transducer import Transducer, TransducerUser
from repro.machines.vm import JMP, READ, WRITE, Program, VMUser

SYMBOLS = ("x", "y", "z")


def one_state_party(n_symbols):
    zero = tuple(
        tuple(tuple(0 for _ in range(n_symbols)) for _ in range(n_symbols))
        for _ in range(1)
    )
    return TabularParty(
        n_symbols=n_symbols, initial_state=0,
        next_state=zero, out_a=zero, out_b=zero,
    )


class TestAdapters:
    def test_alphabet_must_start_with_silence(self):
        with pytest.raises(ValueError, match="SILENCE"):
            TabularUser(one_state_party(3), ("x", "y", "z"), "bad")

    def test_alphabet_must_be_unique(self):
        with pytest.raises(ValueError, match="duplicate"):
            TabularUser(one_state_party(3), (SILENCE, "x", "x"), "bad")

    def test_table_width_must_match_alphabet(self):
        with pytest.raises(ValueError, match="width"):
            TabularUser(one_state_party(2), (SILENCE, "x", "y"), "bad")

    def test_adapters_satisfy_the_protocol(self):
        user = relay_user(SYMBOLS)
        assert isinstance(user, TabularStrategy)

    def test_foreign_symbols_read_as_silence(self):
        user = relay_user(SYMBOLS)
        rng = random.Random(0)
        state = user.initial_state(rng)
        from repro.comm.messages import UserInbox

        _, outbox = user.step(state, UserInbox(from_server="???",
                                               from_world="x"), rng)
        assert outbox.to_world == SILENCE  # "???" decoded as silence
        assert outbox.to_server == "x"

    def test_parties_are_rng_free(self):
        user = relay_user(SYMBOLS)
        assert user.initial_state(random.Random(0)) == user.initial_state(
            random.Random(99)
        )


class TestBuilders:
    def test_relay_user_rejects_unknown_decode_keys(self):
        with pytest.raises(ValueError, match="outside"):
            relay_user(SYMBOLS, {"nope": "x"})

    def test_coded_server_requires_bijection(self):
        with pytest.raises(ValueError, match="bijection"):
            coded_server(SYMBOLS, {"x": "x", "y": "x", "z": "z"})

    def test_coded_server_class_is_cyclic(self):
        servers = coded_server_class(SYMBOLS)
        assert [s.name for s in servers] == [
            "coded-shift0", "coded-shift1", "coded-shift2"
        ]

    def test_decoder_class_matches_server_class(self):
        assert [u.name for u in relay_decoder_class(SYMBOLS)] == [
            "relay-shift0", "relay-shift1", "relay-shift2"
        ]

    def test_cycle_world_validation(self):
        with pytest.raises(ValueError):
            cycle_world(())
        with pytest.raises(ValueError):
            cycle_world(SYMBOLS, latency=0)

    def test_state_flag_predicate_round_trips(self):
        predicate = StateFlagPredicate((True, False, True))
        assert predicate(0) and not predicate(1)
        clone = pickle.loads(pickle.dumps(predicate))
        assert clone == predicate
        assert hash(clone) == hash(predicate)


class TestRelayGoalSemantics:
    """The scalar reference for the cast the kernel vectorizes."""

    def run_point(self, user_shift, server_shift, max_rounds=60):
        goal = relay_goal(SYMBOLS)
        user = relay_decoder_class(SYMBOLS)[user_shift]
        server = coded_server_class(SYMBOLS)[server_shift]
        execution = run_execution(
            user, server, goal.world, max_rounds=max_rounds, seed=0
        )
        return goal.evaluate(execution)

    def test_matched_decoder_achieves(self):
        for k in range(len(SYMBOLS)):
            assert self.run_point(k, k).achieved

    def test_mismatched_decoder_fails(self):
        assert not self.run_point(0, 1).achieved
        assert not self.run_point(2, 0).achieved

    def test_goal_is_forgiving_within_latency(self):
        """Warmup rounds (< RELAY_LATENCY deep) never count as bad."""
        outcome = self.run_point(0, 0, max_rounds=RELAY_LATENCY)
        assert outcome.achieved

    def test_goal_name_carries_alphabet_size(self):
        assert relay_goal(SYMBOLS).name == "relay-echo[3]"


def echo_transducer():
    return Transducer(
        input_alphabet=("x", "y"),
        output_alphabet=("x", "y"),
        transitions=((0, 0),),
        outputs=((0, 1),),
    )


class TestMachineBridges:
    def test_transducer_tabular_symbols(self):
        user = TransducerUser(echo_transducer())
        assert user.tabular_symbols(frozenset()) == frozenset(("x", "y"))

    def test_transducer_custom_wiring_refuses(self):
        user = TransducerUser(
            echo_transducer(), observe=lambda inbox: inbox.from_world
        )
        with pytest.raises(ValueError, match="custom"):
            user.tabular_symbols(frozenset())

    def test_transducer_party_mirrors_step(self):
        user = TransducerUser(echo_transducer())
        alphabet = (SILENCE, "x", "y")
        party = user.tabular_party(alphabet)
        assert party.n_symbols == 3
        # Table(state 0, from_server="y") emits "y" to the server (out_a),
        # exactly like the scalar adapter's step.
        assert alphabet[party.out_a[0][2][0]] == "y"
        # Foreign/silence input reads as the machine's symbol index 0.
        assert alphabet[party.out_a[0][0][0]] == "x"
        # Transducers never talk to the world under default wiring.
        assert all(
            symbol == 0
            for plane in party.out_b for row in plane for symbol in row
        )

    def test_vm_user_tabular_replies(self):
        echo = Program(((READ, 0), (WRITE, 0), (JMP, 0)))
        user = VMUser(echo)
        symbols = user.tabular_symbols(frozenset(("x", "y")))
        assert symbols == frozenset(("x", "y"))
        party = user.tabular_party((SILENCE, "x", "y"))
        assert party.n_states == 1
        assert party.out_a[0][1][0] == 1  # echo "x" back

    @pytest.mark.skipif(not HAVE_NUMPY, reason="compile parity needs numpy")
    def test_machine_users_compile_into_relay_cast(self):
        """A transducer user that relays via identity decode compiles."""
        goal = relay_goal(("x", "y"))
        server = coded_server_class(("x", "y"))[0]
        user = relay_user(("x", "y"))
        cast = compile_tabular_cast(user, server, goal.world, goal)
        assert cast is not None
        assert SILENCE == cast.alphabet[0]
