"""Tests for transducer strategies and their enumeration."""

from __future__ import annotations

import random

import pytest

from repro.comm.messages import UserInbox
from repro.machines.transducer import (
    Transducer,
    TransducerUser,
    enumerate_all_transducers,
    enumerate_transducers,
)


def parrot():
    """One-state transducer echoing its input symbol."""
    return Transducer(
        input_alphabet=("a", "b"),
        output_alphabet=("a", "b"),
        transitions=((0, 0),),
        outputs=((0, 1),),
    )


class TestTransducer:
    def test_step_echo(self):
        t = parrot()
        assert t.step(0, "a") == (0, "a")
        assert t.step(0, "b") == (0, "b")

    def test_foreign_symbol_reads_as_index_zero(self):
        t = parrot()
        assert t.step(0, "zzz") == t.step(0, "a")

    def test_two_state_flip_flop(self):
        t = Transducer(
            input_alphabet=("tick",),
            output_alphabet=("on", "off"),
            transitions=((1,), (0,)),
            outputs=((0,), (1,)),
        )
        state, out1 = t.step(0, "tick")
        state, out2 = t.step(state, "tick")
        assert (out1, out2) == ("on", "off")

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(transitions=(), outputs=()),                     # No states.
            dict(transitions=((0,),), outputs=((0, 0),)),          # Width mismatch.
            dict(transitions=((5,),), outputs=((0,),)),            # Bad target.
            dict(transitions=((0,),), outputs=((7,),)),            # Bad output.
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            Transducer(
                input_alphabet=("a",), output_alphabet=("x",), **kwargs
            )


class TestEnumeration:
    def test_count_for_one_state(self):
        # (n_states * |out|)^(n_states * |in|) = (1*2)^(1*2) = 4.
        machines = list(enumerate_transducers(1, ("a", "b"), ("x", "y")))
        assert len(machines) == 4

    def test_count_for_two_states(self):
        # (2*1)^(2*1) = 4.
        machines = list(enumerate_transducers(2, ("a",), ("x",)))
        assert len(machines) == 4

    def test_all_distinct(self):
        machines = list(enumerate_transducers(1, ("a", "b"), ("x", "y")))
        assert len(set(machines)) == len(machines)

    def test_deterministic_order(self):
        a = list(enumerate_transducers(1, ("a",), ("x", "y")))
        b = list(enumerate_transducers(1, ("a",), ("x", "y")))
        assert a == b

    def test_dovetailed_sizes_ascend(self):
        gen = enumerate_all_transducers(("a",), ("x",), max_states=2)
        sizes = [t.n_states for t in gen]
        assert sizes == sorted(sizes)
        assert set(sizes) == {1, 2}

    def test_zero_states_rejected(self):
        with pytest.raises(ValueError):
            list(enumerate_transducers(0, ("a",), ("x",)))


class TestTransducerUser:
    def test_default_adapters_route_server_channel(self):
        user = TransducerUser(parrot())
        rng = random.Random(0)
        state = user.initial_state(rng)
        state, out = user.step(state, UserInbox(from_server="b"), rng)
        assert out.to_server == "b"

    def test_custom_adapters(self):
        user = TransducerUser(
            parrot(),
            observe=lambda inbox: inbox.from_world,
            emit=lambda s: __import__(
                "repro.comm.messages", fromlist=["UserOutbox"]
            ).UserOutbox(to_world=s),
        )
        rng = random.Random(0)
        state, out = user.step(user.initial_state(rng), UserInbox(from_world="a"), rng)
        assert out.to_world == "a"
