"""Tests for machine-based strategy enumerations."""

from __future__ import annotations

import itertools

from repro.machines.enumerators import (
    enumerate_programs,
    transducer_user_enumeration,
    vm_user_enumeration,
)
from repro.machines.transducer import TransducerUser
from repro.machines.vm import VMUser
from repro.universal.enumeration import EnumerationCursor


def take(iterable, n):
    return list(itertools.islice(iterable, n))


class TestProgramEnumeration:
    def test_shortest_first(self):
        programs = take(enumerate_programs(constants=(0,)), 50)
        lengths = [len(p) for p in programs]
        assert lengths == sorted(lengths)

    def test_all_distinct(self):
        programs = take(enumerate_programs(constants=(0, 1)), 200)
        assert len(set(programs)) == len(programs)

    def test_max_length_caps(self):
        programs = list(enumerate_programs(max_length=1, constants=(0,)))
        assert all(len(p) == 1 for p in programs)
        # 8 argless + 3 arg-taking * 1 constant = 11 single-instruction programs.
        assert len(programs) == 11

    def test_deterministic(self):
        a = take(enumerate_programs(constants=(0, 1)), 30)
        b = take(enumerate_programs(constants=(0, 1)), 30)
        assert a == b


class TestStrategyEnumerations:
    def test_vm_enumeration_yields_vm_users(self):
        cursor = EnumerationCursor(vm_user_enumeration(max_length=1))
        assert isinstance(cursor.get(0), VMUser)
        assert isinstance(cursor.get(10), VMUser)

    def test_transducer_enumeration_yields_users(self):
        enum = transducer_user_enumeration(("a",), ("x", "y"), max_states=1)
        cursor = EnumerationCursor(enum)
        assert isinstance(cursor.get(0), TransducerUser)

    def test_transducer_enumeration_size(self):
        enum = transducer_user_enumeration(("a",), ("x", "y"), max_states=1)
        assert len(list(enum)) == 2  # (1 state * 2 outputs)^(1 cell).

    def test_enumerations_restart_identically(self):
        enum = vm_user_enumeration(max_length=1)
        first = [u.name for u in take(enum, 5)]
        second = [u.name for u in take(enum, 5)]
        assert first == second
