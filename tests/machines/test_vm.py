"""Tests for the GVM bounded-step stack machine."""

from __future__ import annotations

import random

import pytest

from repro.comm.messages import UserInbox
from repro.machines.vm import (
    ADD,
    DROP,
    DUP,
    HALT,
    JMP,
    JNZ,
    PUSH,
    READ,
    SUB,
    SWAP,
    WRITE,
    Program,
    VMUser,
    run_program,
)


def prog(*instructions):
    return Program(tuple(instructions))


class TestBasics:
    def test_push_write(self):
        assert run_program(prog((PUSH, 65), (WRITE, 0)), "") == "A"

    def test_read_echo_loop(self):
        # while (c = read()) != -1: write(c) — realised with DUP/JNZ.
        echo = prog(
            (READ, 0),        # 0: push char or -1
            (DUP, 0),         # 1
            (PUSH, 1), (ADD, 0),  # 2,3: top = c+1 (0 iff c == -1)
            (JNZ, 6),         # 4: continue if not end
            (HALT, 0),        # 5
            (WRITE, 0),       # 6: write c
            (JMP, 0),         # 7
        )
        assert run_program(echo, "hello") == "hello"

    def test_arithmetic(self):
        assert run_program(
            prog((PUSH, 70), (PUSH, 5), (SUB, 0), (WRITE, 0)), ""
        ) == "A"

    def test_swap_and_drop(self):
        out = run_program(
            prog((PUSH, 65), (PUSH, 66), (SWAP, 0), (DROP, 0), (WRITE, 0)), ""
        )
        assert out == "B"


class TestTotality:
    def test_stack_underflow_reads_zero(self):
        # ADD on empty stack: 0 + 0 = 0, WRITE 0 emits NUL.
        assert run_program(prog((ADD, 0), (WRITE, 0)), "") == "\x00"

    def test_infinite_loop_cut_by_step_budget(self):
        looper = prog((JMP, 0))
        assert run_program(looper, "", max_steps=100) == ""

    def test_out_of_range_write_value_skipped(self):
        assert run_program(prog((PUSH, -5), (WRITE, 0)), "") == ""

    def test_jump_out_of_range_halts(self):
        assert run_program(prog((PUSH, 65), (JMP, 99), (WRITE, 0)), "") == ""

    def test_read_past_end_pushes_minus_one(self):
        # -1 then +1 = 0 -> NUL written; proves READ returned -1.
        p = prog((READ, 0), (PUSH, 1), (ADD, 0), (WRITE, 0))
        assert run_program(p, "") == "\x00"

    def test_max_steps_validated(self):
        with pytest.raises(ValueError):
            run_program(prog((HALT, 0)), "", max_steps=0)

    def test_unknown_opcode_rejected_at_construction(self):
        with pytest.raises(ValueError):
            Program((("NOPE", 0),))


class TestFormat:
    def test_format_shows_args_only_where_meaningful(self):
        p = prog((PUSH, 3), (ADD, 0), (JMP, 1))
        assert p.format() == "PUSH 3; ADD; JMP 1"

    def test_len(self):
        assert len(prog((HALT, 0))) == 1


class TestVMUser:
    def test_maps_server_message_through_program(self):
        shift_up = prog(
            (READ, 0), (DUP, 0), (PUSH, 1), (ADD, 0), (JNZ, 6), (HALT, 0),
            (PUSH, 1), (ADD, 0), (WRITE, 0), (JMP, 0),
        )
        user = VMUser(shift_up)
        rng = random.Random(0)
        state, out = user.step(user.initial_state(rng), UserInbox(from_server="abc"), rng)
        assert out.to_server == "bcd"

    def test_name_contains_program(self):
        assert "PUSH 1" in VMUser(prog((PUSH, 1))).name
