"""RL002: strategy step/initial_state purity — flagged, allowed, suppressed."""

from __future__ import annotations

from textwrap import dedent
from typing import List

from repro.lint import lint_source
from repro.lint.violations import Violation


def rl002(source: str, kind: str = "src") -> List[Violation]:
    return lint_source(dedent(source), select=["RL002"], kind=kind).violations


class TestFlagged:
    def test_step_writes_self(self):
        found = rl002(
            """
            class CountingUser(UserStrategy):
                def step(self, state, inbox, rng):
                    self.rounds += 1
                    return state, ""
            """
        )
        assert [v.code for v in found] == ["RL002"]
        assert "CountingUser.step" in found[0].message

    def test_initial_state_writes_self(self):
        assert [v.code for v in rl002(
            """
            class LazyServer(ServerStrategy):
                def initial_state(self):
                    self.cache = {}
                    return self.cache
            """
        )] == ["RL002"]

    def test_step_mutates_self_container(self):
        found = rl002(
            """
            class HistoryUser(UserStrategy):
                def step(self, state, inbox, rng):
                    self.history.append(inbox)
                    return state, ""
            """
        )
        assert [v.code for v in found] == ["RL002"]
        assert "mutating method" in found[0].message

    def test_step_writes_into_inbox(self):
        found = rl002(
            """
            class SpoofingUser(UserStrategy):
                def step(self, state, inbox, rng):
                    inbox[0] = "spoofed"
                    return state, ""
            """
        )
        assert [v.code for v in found] == ["RL002"]
        assert "inbox" in found[0].message

    def test_transitive_base_resolution(self):
        # Derived -> Base -> UserStrategy is resolved within the module.
        assert [v.code for v in rl002(
            """
            class Base(UserStrategy):
                pass

            class Derived(Base):
                def step(self, state, inbox, rng):
                    self.seen = True
                    return state, ""
            """
        )] == ["RL002"]

    def test_delete_of_self_attribute(self):
        assert [v.code for v in rl002(
            """
            class ForgetfulServer(ServerStrategy):
                def step(self, state, inbox, rng):
                    del self.memo
                    return state, ""
            """
        )] == ["RL002"]


class TestAllowed:
    def test_threaded_state_mutation_is_the_idiom(self):
        # Per-execution state objects are created by initial_state and
        # owned by the caller; mutating them is the documented pattern.
        assert rl002(
            """
            class GoodUser(UserStrategy):
                def step(self, state, inbox, rng):
                    state.rounds += 1
                    state.transcript.append(inbox)
                    return state, ""
            """
        ) == []

    def test_init_may_write_self(self):
        assert rl002(
            """
            class ConfiguredUser(UserStrategy):
                def __init__(self, depth):
                    self.depth = depth
            """
        ) == []

    def test_non_strategy_class_is_out_of_scope(self):
        assert rl002(
            """
            class Accumulator:
                def step(self, state, inbox, rng):
                    self.total += 1
                    return state, ""
            """
        ) == []

    def test_rebinding_a_local_is_fine(self):
        assert rl002(
            """
            class RebindingUser(UserStrategy):
                def step(self, state, inbox, rng):
                    state = advance(state)
                    return state, ""
            """
        ) == []


class TestPragmas:
    def test_same_line_disable(self):
        report = lint_source(
            dedent(
                """
                class AuditedUser(UserStrategy):
                    def step(self, state, inbox, rng):
                        self.rounds += 1  # reprolint: disable=RL002
                        return state, ""
                """
            ),
            select=["RL002"],
            kind="src",
        )
        assert report.violations == []
        assert report.suppressed == 1
