"""The wall checks itself: the shipped tree is reprolint-clean.

These tests run the real checker over the repository, exactly as the CI
job does — if a change introduces an ambient clock, a blocking call in an
async path, an unplumbed seed, or an event-contract drift anywhere in the
four scanned trees, the suite fails before the CI gate does.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint import lint_paths
from repro.lint.cli import main
from repro.lint.engine import classify_path

ROOT = Path(__file__).resolve().parents[2]
BASELINE = ROOT / "benchmarks" / "lint_baseline.json"
ALL_TREES = [
    str(ROOT / "src"),
    str(ROOT / "tests"),
    str(ROOT / "benchmarks"),
    str(ROOT / ".github"),
]


class TestSelfCheck:
    def test_src_and_tests_are_clean(self):
        report = lint_paths([str(ROOT / "src"), str(ROOT / "tests")])
        assert report.parse_errors == []
        assert report.violations == [], "\n".join(
            v.render() for v in report.violations
        )
        assert report.files_scanned > 100

    def test_all_four_trees_are_clean(self):
        # The full project-level run: module rules + call-graph/dataflow
        # rules (RL1xx/2xx/3xx) over src, tests, benchmarks and the CI
        # scripts — the same invocation the lint-graph CI job gates on.
        report = lint_paths(ALL_TREES)
        assert report.parse_errors == []
        assert report.violations == [], "\n".join(
            v.render() for v in report.violations
        )

    def test_full_scan_is_fast_enough_for_ci(self):
        # The CI job budgets 10 s of wall time for the whole-project
        # analysis; leave headroom so slow runners do not flake.
        report = lint_paths(ALL_TREES)
        assert report.elapsed_s < 10.0

    def test_cli_exits_zero_on_the_shipped_tree(self, capsys):
        assert main(ALL_TREES) == 0
        capsys.readouterr()

    def test_benchmarks_stay_at_or_below_the_recorded_baseline(self):
        # The benchmark tree is linted in report-only mode with a recorded
        # baseline (the ratchet): violations may be fixed, never added.
        recorded = json.loads(BASELINE.read_text(encoding="utf-8"))
        report = lint_paths([str(ROOT / "benchmarks")])
        assert report.parse_errors == []
        assert len(report.violations) <= recorded["violation_count"]

    def test_benchmarks_baseline_is_ratcheted_to_zero(self):
        recorded = json.loads(BASELINE.read_text(encoding="utf-8"))
        assert recorded["violation_count"] == 0


class TestClassifyPath:
    def test_tests_tree(self):
        assert classify_path("tests/lint/test_cli.py") == "tests"

    def test_benchmarks_tree(self):
        assert classify_path("benchmarks/bench_engine.py") == "benchmarks"

    def test_ci_scripts_tree(self):
        assert classify_path(".github/scripts/serve_smoke.py") == "scripts"
        assert classify_path("/root/repo/.github/scripts/x.py") == "scripts"

    def test_everything_else_is_src(self):
        assert classify_path("src/repro/core/execution.py") == "src"
        assert classify_path("examples/demo.py") == "src"
