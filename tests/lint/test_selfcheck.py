"""The wall checks itself: the shipped tree is reprolint-clean.

These tests run the real checker over the repository, exactly as the CI
job does — if a change introduces an ambient clock, a mutating ``step``,
or an unplumbed seed anywhere in ``src/`` or ``tests/``, the suite fails
before the CI gate does.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint import lint_paths
from repro.lint.cli import main
from repro.lint.engine import classify_path

ROOT = Path(__file__).resolve().parents[2]
BASELINE = ROOT / "benchmarks" / "lint_baseline.json"


class TestSelfCheck:
    def test_src_and_tests_are_clean(self):
        report = lint_paths([str(ROOT / "src"), str(ROOT / "tests")])
        assert report.parse_errors == []
        assert report.violations == [], "\n".join(
            v.render() for v in report.violations
        )
        assert report.files_scanned > 100

    def test_cli_exits_zero_on_the_shipped_tree(self, capsys):
        assert main([str(ROOT / "src"), str(ROOT / "tests")]) == 0
        capsys.readouterr()

    def test_benchmarks_stay_at_or_below_the_recorded_baseline(self):
        # The benchmark tree is linted in report-only mode with a recorded
        # baseline (the ratchet): violations may be fixed, never added.
        recorded = json.loads(BASELINE.read_text(encoding="utf-8"))
        report = lint_paths([str(ROOT / "benchmarks")])
        assert report.parse_errors == []
        assert len(report.violations) <= recorded["violation_count"]


class TestClassifyPath:
    def test_tests_tree(self):
        assert classify_path("tests/lint/test_cli.py") == "tests"

    def test_benchmarks_tree(self):
        assert classify_path("benchmarks/bench_engine.py") == "benchmarks"

    def test_everything_else_is_src(self):
        assert classify_path("src/repro/core/execution.py") == "src"
        assert classify_path("examples/demo.py") == "src"
