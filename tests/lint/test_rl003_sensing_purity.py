"""RL003: sensing purity — flagged, allowed, and suppressed shapes."""

from __future__ import annotations

from textwrap import dedent
from typing import List

from repro.lint import lint_source
from repro.lint.violations import Violation


def rl003(source: str, kind: str = "src") -> List[Violation]:
    return lint_source(dedent(source), select=["RL003"], kind=kind).violations


class TestFlagged:
    def test_indicate_writes_self(self):
        found = rl003(
            """
            class CountingSensing(Sensing):
                def indicate(self, view):
                    self.calls += 1
                    return True
            """
        )
        assert [v.code for v in found] == ["RL003"]
        assert "CountingSensing.indicate" in found[0].message

    def test_indicate_performs_io(self):
        found = rl003(
            """
            class ChattySensing(Sensing):
                def indicate(self, view):
                    print(view)
                    return True
            """
        )
        assert [v.code for v in found] == ["RL003"]
        assert "I/O" in found[0].message

    def test_indicate_mutates_the_view(self):
        assert [v.code for v in rl003(
            """
            class TamperingSensing(Sensing):
                def indicate(self, view):
                    view.records.append(None)
                    return True
            """
        )] == ["RL003"]

    def test_indicate_declares_global(self):
        assert [v.code for v in rl003(
            """
            class GlobalSensing(Sensing):
                def indicate(self, view):
                    global HITS
                    return True
            """
        )] == ["RL003"]

    def test_indicate_reads_ambient_clock(self):
        assert [v.code for v in rl003(
            """
            import time

            class TimedSensing(Sensing):
                def indicate(self, view):
                    return time.time() > 0
            """
        )] == ["RL003"]

    def test_function_sensing_lambda_with_io(self):
        found = rl003(
            """
            sensing = FunctionSensing(lambda view: bool(print(view)))
            """
        )
        assert [v.code for v in found] == ["RL003"]
        assert "sensing lambda" in found[0].message


class TestAllowed:
    def test_pure_predicate_of_the_view(self):
        assert rl003(
            """
            class ProgressSensing(Sensing):
                def indicate(self, view):
                    recent = view.records[-3:]
                    return any(r.world_message for r in recent)
            """
        ) == []

    def test_reading_self_configuration_is_fine(self):
        assert rl003(
            """
            class ThresholdSensing(Sensing):
                def indicate(self, view):
                    return len(view.records) >= self.threshold
            """
        ) == []

    def test_incremental_observe_is_exempt_by_design(self):
        # Monitors are single-trial and own their state; only `indicate`
        # carries the purity obligation.
        assert rl003(
            """
            class Monitor(IncrementalSensing):
                def observe(self, record):
                    self.seen += 1
            """
        ) == []

    def test_function_sensing_with_named_function(self):
        assert rl003(
            """
            sensing = FunctionSensing(has_recent_progress)
            """
        ) == []


class TestPragmas:
    def test_same_line_disable(self):
        report = lint_source(
            dedent(
                """
                class DebugSensing(Sensing):
                    def indicate(self, view):
                        print(view)  # reprolint: disable=RL003
                        return True
                """
            ),
            select=["RL003"],
            kind="src",
        )
        assert report.violations == []
        assert report.suppressed == 1
