"""Call-graph construction: naming, imports, dispatch, blocking closure.

These drive ``repro.lint.graph`` directly (the substrate the RL1xx/2xx/3xx
rules stand on) through miniature multi-module projects built in memory.
"""

from __future__ import annotations

import ast
from textwrap import dedent
from typing import Dict, List, Optional, Tuple

from repro.lint.context import ModuleContext
from repro.lint.engine import classify_path
from repro.lint.graph import (
    CallSite,
    FunctionInfo,
    Project,
    build_project,
    module_name_for_path,
)


def build(files: Dict[str, str]) -> Project:
    entries = [
        (path, classify_path(path), ModuleContext.parse(path, dedent(source)))
        for path, source in files.items()
    ]
    return build_project(entries)


def sites_of(project: Project, qual: str) -> List[CallSite]:
    info = project.functions[qual]
    return list(info.calls)


class TestModuleNaming:
    def test_src_tree_gets_package_relative_names(self):
        assert (
            module_name_for_path("src/repro/serve/engine.py")
            == "repro.serve.engine"
        )

    def test_non_src_trees_use_path_components(self):
        assert (
            module_name_for_path("tests/serve/test_engine.py")
            == "tests.serve.test_engine"
        )

    def test_package_init_names_the_package(self):
        assert module_name_for_path("src/repro/lint/__init__.py") == "repro.lint"

    def test_absolute_paths_resolve_from_src(self):
        assert (
            module_name_for_path("/root/repo/src/repro/core/goal.py")
            == "repro.core.goal"
        )


class TestImportResolution:
    def test_from_import_resolves_cross_module_call(self):
        project = build(
            {
                "src/repro/a.py": """
                    def helper():
                        return 1
                    """,
                "src/repro/b.py": """
                    from repro.a import helper

                    def run():
                        return helper()
                    """,
            }
        )
        (site,) = sites_of(project, "repro.b.run")
        assert site.targets == ("repro.a.helper",)

    def test_module_alias_resolves(self):
        project = build(
            {
                "src/repro/a.py": """
                    def helper():
                        return 1
                    """,
                "src/repro/b.py": """
                    import repro.a as ra

                    def run():
                        return ra.helper()
                    """,
            }
        )
        (site,) = sites_of(project, "repro.b.run")
        assert site.targets == ("repro.a.helper",)

    def test_symbol_alias_resolves(self):
        project = build(
            {
                "src/repro/a.py": """
                    def helper():
                        return 1
                    """,
                "src/repro/b.py": """
                    from repro.a import helper as h

                    def run():
                        return h()
                    """,
            }
        )
        (site,) = sites_of(project, "repro.b.run")
        assert site.targets == ("repro.a.helper",)

    def test_bare_name_resolves_to_same_module_def(self):
        project = build(
            {
                "src/repro/a.py": """
                    def helper():
                        return 1

                    def run():
                        return helper()
                    """,
            }
        )
        (site,) = sites_of(project, "repro.a.run")
        assert site.targets == ("repro.a.helper",)


class TestMethodDispatch:
    def test_annotated_receiver_dispatches_to_method(self):
        project = build(
            {
                "src/repro/a.py": """
                    class Engine:
                        def tick(self):
                            return 1

                    def run(engine: Engine):
                        return engine.tick()
                    """,
            }
        )
        (site,) = sites_of(project, "repro.a.run")
        assert site.targets == ("repro.a.Engine.tick",)

    def test_virtual_dispatch_fans_out_to_overrides(self):
        project = build(
            {
                "src/repro/a.py": """
                    class Base:
                        def react(self):
                            return 0

                    class Loud(Base):
                        def react(self):
                            return 1

                    def run(obj: Base):
                        return obj.react()
                    """,
            }
        )
        (site,) = sites_of(project, "repro.a.run")
        assert set(site.targets) == {
            "repro.a.Base.react",
            "repro.a.Loud.react",
        }

    def test_constructor_then_method_via_inferred_local(self):
        project = build(
            {
                "src/repro/a.py": """
                    class Engine:
                        def tick(self):
                            return 1

                    def run():
                        engine = Engine()
                        return engine.tick()
                    """,
            }
        )
        tick_sites = [
            site
            for site in sites_of(project, "repro.a.run")
            if "repro.a.Engine.tick" in site.targets
        ]
        assert len(tick_sites) == 1

    def test_untyped_receiver_contributes_no_edges(self):
        # Known unsoundness, asserted so it stays deliberate: without an
        # annotation or inferable construction the receiver is opaque.
        project = build(
            {
                "src/repro/a.py": """
                    class Engine:
                        def tick(self):
                            return 1

                    def run(engine):
                        return engine.tick()
                    """,
            }
        )
        assert all(
            "repro.a.Engine.tick" not in site.targets
            for site in sites_of(project, "repro.a.run")
        )


class TestBlockingClosure:
    def _reason(
        self, project: Project, qual: str
    ) -> Optional[Tuple[str, Tuple[str, ...]]]:
        for site in sites_of(project, qual):
            reason = project.blocking_reason_for_site(site)
            if reason is not None:
                return reason
        return None

    def test_direct_primitive_has_empty_chain(self):
        project = build(
            {
                "src/repro/a.py": """
                    import time

                    async def serve():
                        time.sleep(1)
                    """,
            }
        )
        reason = self._reason(project, "repro.a.serve")
        assert reason == ("time.sleep", ())

    def test_witness_chain_names_the_sync_path(self):
        project = build(
            {
                "src/repro/a.py": """
                    import subprocess

                    def shell():
                        return subprocess.run(["git"])

                    def helper():
                        return shell()

                    async def serve():
                        return helper()
                    """,
            }
        )
        reason = self._reason(project, "repro.a.serve")
        assert reason is not None
        desc, chain = reason
        assert desc == "subprocess.run"
        assert chain[0] == "repro.a.helper"
        assert "repro.a.shell" in chain

    def test_awaited_async_callee_is_not_propagated(self):
        # The hazard is reported once, inside the async callee itself —
        # the caller's `await` is the correct way to reach it.
        project = build(
            {
                "src/repro/a.py": """
                    import time

                    async def inner():
                        time.sleep(1)

                    async def outer():
                        await inner()
                    """,
            }
        )
        assert self._reason(project, "repro.a.outer") is None
        assert self._reason(project, "repro.a.inner") == ("time.sleep", ())

    def test_executor_hop_passes_function_as_data(self):
        project = build(
            {
                "src/repro/a.py": """
                    import time

                    def heavy():
                        time.sleep(1)

                    async def serve(loop):
                        await loop.run_in_executor(None, heavy)
                    """,
            }
        )
        assert self._reason(project, "repro.a.serve") is None


class TestCallIndex:
    def test_cross_module_constructions_are_indexed(self):
        project = build(
            {
                "src/repro/a.py": """
                    class Ping:
                        pass
                    """,
                "src/repro/b.py": """
                    from repro.a import Ping

                    def emit():
                        return Ping()
                    """,
            }
        )
        index = project.call_index()
        assert len(index["repro.a.Ping"]) == 1
        module, call = index["repro.a.Ping"][0]
        assert module.name == "repro.b"
        assert isinstance(call, ast.Call)

    def test_same_module_bare_name_keys_under_module(self):
        project = build(
            {
                "src/repro/a.py": """
                    class Ping:
                        pass

                    def emit():
                        return Ping()
                    """,
            }
        )
        assert len(project.call_index()["repro.a.Ping"]) == 1

    def test_name_references_cover_loads_and_attributes(self):
        project = build(
            {
                "src/repro/certify.py": """
                    import repro.a

                    def check(event):
                        return repro.a.Ping is type(event)
                    """,
            }
        )
        refs = project.name_references("repro.certify")
        assert "Ping" in refs
        assert "check" not in refs or True  # defs are not loads


class TestFunctionInfo:
    def test_nested_defs_register_under_locals(self):
        project = build(
            {
                "src/repro/a.py": """
                    def outer():
                        def inner():
                            return 1
                        return inner()
                    """,
            }
        )
        assert "repro.a.outer.<locals>.inner" in project.functions
        (site,) = sites_of(project, "repro.a.outer")
        assert site.targets == ("repro.a.outer.<locals>.inner",)

    def test_async_functions_iterates_only_async(self):
        project = build(
            {
                "src/repro/a.py": """
                    def sync_fn():
                        pass

                    async def async_fn():
                        pass
                    """,
            }
        )
        quals = {fn.qual for fn in project.async_functions()}
        assert quals == {"repro.a.async_fn"}
        info = project.functions["repro.a.async_fn"]
        assert isinstance(info, FunctionInfo) and info.is_async
