"""RL102: shared-state RMW split by await — flag/no-flag/pragma."""

from __future__ import annotations

from textwrap import dedent
from typing import List

from repro.lint import lint_source
from repro.lint.violations import Violation


def rl102(source: str, kind: str = "src") -> List[Violation]:
    return lint_source(dedent(source), select=["RL102"], kind=kind).violations


class TestSplitExpression:
    def test_augassign_across_await(self):
        found = rl102(
            """
            class Engine:
                async def settle(self):
                    self.count += await self.fetch()
            """
        )
        assert [v.code for v in found] == ["RL102"]
        assert "self.count" in found[0].message

    def test_assign_reading_its_own_target_across_await(self):
        found = rl102(
            """
            class Engine:
                async def settle(self):
                    self.total = self.total + await self.fetch()
            """
        )
        assert [v.code for v in found] == ["RL102"]
        assert "stale" in found[0].message

    def test_await_into_local_then_atomic_update_is_clean(self):
        assert rl102(
            """
            class Engine:
                async def settle(self):
                    delta = await self.fetch()
                    self.count += delta
            """
        ) == []


class TestStaleLocal:
    def test_copy_awaits_then_writes_back(self):
        found = rl102(
            """
            class Engine:
                async def settle(self, outcome):
                    open_now = self.open_count
                    await self.persist(outcome)
                    self.open_count = open_now - 1
            """
        )
        assert [v.code for v in found] == ["RL102"]
        assert "self.open_count" in found[0].message
        assert "stale" in found[0].message

    def test_reread_after_await_is_clean(self):
        assert rl102(
            """
            class Engine:
                async def settle(self, outcome):
                    await self.persist(outcome)
                    open_now = self.open_count
                    self.open_count = open_now - 1
            """
        ) == []

    def test_rebound_local_forgets_the_copy(self):
        assert rl102(
            """
            class Engine:
                async def settle(self):
                    n = self.open_count
                    await self.tick()
                    n = 0
                    self.open_count = n
            """
        ) == []


class TestStaleGuard:
    def test_if_guard_awaits_then_writes_guard_attr(self):
        found = rl102(
            """
            class Engine:
                async def maybe_close(self):
                    if self.running:
                        await self.drain()
                        self.running = False
            """
        )
        assert [v.code for v in found] == ["RL102"]
        assert "guard" in found[0].message

    def test_write_before_await_is_clean(self):
        assert rl102(
            """
            class Engine:
                async def maybe_close(self):
                    if self.running:
                        self.running = False
                        await self.drain()
            """
        ) == []

    def test_while_recheck_idiom_is_exempt(self):
        # The condition-variable idiom re-tests after every resumption:
        # that is the *fix* for staleness, not an instance of it.
        assert rl102(
            """
            class Engine:
                async def acquire(self):
                    while True:
                        if self.locked:
                            await self.cond.wait()
                            self.locked = True
                            return
            """
        ) == []


class TestScope:
    def test_tests_tree_is_out_of_scope(self):
        assert rl102(
            """
            class Engine:
                async def settle(self):
                    self.count += await self.fetch()
            """,
            kind="tests",
        ) == []

    def test_sync_methods_are_exempt(self):
        assert rl102(
            """
            class Engine:
                def settle(self):
                    self.count += 1
            """
        ) == []


class TestPragmas:
    def test_same_line_disable(self):
        report = lint_source(
            dedent(
                """
                class Engine:
                    async def settle(self):
                        self.count += await self.fetch()  # reprolint: disable=RL102
                """
            ),
            select=["RL102"],
            kind="src",
        )
        assert report.violations == []
        assert report.suppressed == 1
