"""reprolint: flag/no-flag/pragma coverage per rule, CLI, and self-check."""
