"""RL202/RL203: dropped derivations and aliased streams — flag/no-flag/pragma."""

from __future__ import annotations

from textwrap import dedent
from typing import List

from repro.lint import lint_source
from repro.lint.violations import Violation


def run(source: str, code: str, kind: str = "src") -> List[Violation]:
    return lint_source(dedent(source), select=[code], kind=kind).violations


class TestDroppedDerivation:
    def test_discarded_expression_statement(self):
        found = run(
            """
            def advance(rng):
                rng.getrandbits(64)
                return rng.random()
            """,
            "RL202",
        )
        assert [v.code for v in found] == ["RL202"]
        assert "discarded" in found[0].message

    def test_derive_call_bound_to_dead_local(self):
        found = run(
            """
            def setup(seed, derive_child):
                child = derive_child(seed)
                return seed
            """,
            "RL202",
        )
        assert [v.code for v in found] == ["RL202"]
        assert "`child`" in found[0].message

    def test_used_draw_is_clean(self):
        assert run(
            """
            import random

            def setup(rng):
                child = rng.getrandbits(64)
                return random.Random(child)
            """,
            "RL202",
        ) == []

    def test_underscore_binding_is_a_deliberate_burn(self):
        assert run(
            """
            def advance(rng):
                _ = rng.getrandbits(64)
                return rng.random()
            """,
            "RL202",
        ) == []

    def test_tests_tree_is_out_of_scope(self):
        assert run(
            """
            def advance(rng):
                rng.getrandbits(64)
            """,
            "RL202",
            kind="tests",
        ) == []

    def test_benchmarks_tree_is_in_scope(self):
        assert [v.code for v in run(
            """
            def advance(rng):
                rng.getrandbits(64)
            """,
            "RL202",
            kind="benchmarks",
        )] == ["RL202"]

    def test_same_line_pragma(self):
        report = lint_source(
            dedent(
                """
                def advance(rng):
                    rng.getrandbits(64)  # reprolint: disable=RL202
                    return rng.random()
                """
            ),
            select=["RL202"],
            kind="src",
        )
        assert report.violations == []
        assert report.suppressed == 1


class TestAliasedStreams:
    def test_same_seed_feeds_two_constructors(self):
        found = run(
            """
            import random

            def build(seed):
                law_rng = random.Random(seed)
                session_rng = random.Random(seed)
                return law_rng, session_rng
            """,
            "RL203",
        )
        assert [v.code for v in found] == ["RL203"]
        assert "identical" in found[0].message
        assert "line 5" in found[0].message

    def test_derive_helper_aliasing_random_random(self):
        found = run(
            """
            import random

            def build(seed, derive_seeds):
                law = random.Random(seed)
                seeds = derive_seeds(seed, 10)
                return law, seeds
            """,
            "RL203",
        )
        assert [v.code for v in found] == ["RL203"]

    def test_fanned_out_child_seeds_are_clean(self):
        # The fix shape: one root stream, per-purpose prefixes.
        assert run(
            """
            import random

            def build(seed):
                entropy = random.Random(seed)
                law_rng = random.Random(entropy.getrandbits(64))
                session_rng = random.Random(entropy.getrandbits(64))
                return law_rng, session_rng
            """,
            "RL203",
        ) == []

    def test_distinct_seeds_are_clean(self):
        assert run(
            """
            import random

            def build(law_seed, session_seed):
                return random.Random(law_seed), random.Random(session_seed)
            """,
            "RL203",
        ) == []

    def test_tests_tree_may_twin_streams(self):
        # Parity tests deliberately construct twin streams to compare
        # two engines bitwise; the rule must not fire there.
        assert run(
            """
            import random

            def parity(seed):
                return random.Random(seed), random.Random(seed)
            """,
            "RL203",
            kind="tests",
        ) == []

    def test_same_line_pragma(self):
        report = lint_source(
            dedent(
                """
                import random

                def build(seed):
                    a = random.Random(seed)
                    b = random.Random(seed)  # reprolint: disable=RL203
                    return a, b
                """
            ),
            select=["RL203"],
            kind="src",
        )
        assert report.violations == []
        assert report.suppressed == 1
