"""RL301/302/303: registry vs emit sites vs consumers — fixtures + self-check.

The fixtures build miniature event vocabularies with ``lint_sources`` (the
registry discovery is structural, so a three-module virtual tree is a
complete test bed).  The self-check at the bottom pins the *real* registry:
the static scan the rules use must see exactly the kinds the runtime
``event_kinds()`` registry holds — if they ever drift, the contract rules
are silently blind to the difference.
"""

from __future__ import annotations

import ast
from pathlib import Path
from textwrap import dedent
from typing import Dict, List

from repro.lint import lint_sources
from repro.lint.violations import Violation

ROOT = Path(__file__).resolve().parents[2]

#: A minimal registry module all fixtures share.
EVENTS = """
    from typing import ClassVar

    _REGISTRY = {}


    def register(cls):
        _REGISTRY[cls.kind] = cls
        return cls


    class Event:
        kind: ClassVar[str] = ""


    @register
    class PingEvent(Event):
        kind = "ping"
        session: str
        note: str = ""
"""


def lint(files: Dict[str, str], code: str) -> List[Violation]:
    sources = {path: dedent(text) for path, text in files.items()}
    return lint_sources(sources, select=[code]).violations


class TestRegisteredButNeverEmitted:
    def test_unemitted_kind_is_flagged(self):
        found = lint({"src/repro/obs/events.py": EVENTS}, "RL301")
        assert [v.code for v in found] == ["RL301"]
        assert "ping" in found[0].message
        assert "ever constructs" in found[0].message

    def test_src_construction_satisfies_the_rule(self):
        assert lint(
            {
                "src/repro/obs/events.py": EVENTS,
                "src/repro/serve/emit.py": """
                    from repro.obs.events import PingEvent

                    def emit():
                        return PingEvent(session="s")
                    """,
            },
            "RL301",
        ) == []

    def test_tests_only_construction_does_not_count(self):
        found = lint(
            {
                "src/repro/obs/events.py": EVENTS,
                "tests/test_emit.py": """
                    from repro.obs.events import PingEvent

                    def test_emit():
                        assert PingEvent(session="s").session == "s"
                    """,
            },
            "RL301",
        )
        assert [v.code for v in found] == ["RL301"]


class TestRegisteredButNeverConsumed:
    def test_unconsumed_kind_is_flagged(self):
        found = lint(
            {
                "src/repro/obs/events.py": EVENTS,
                "src/repro/obs/certify.py": """
                    def check(trace):
                        return True
                    """,
            },
            "RL302",
        )
        assert [v.code for v in found] == ["RL302"]
        assert "PingEvent" in found[0].message

    def test_consumer_reference_satisfies_the_rule(self):
        assert lint(
            {
                "src/repro/obs/events.py": EVENTS,
                "src/repro/obs/certify.py": """
                    from repro.obs.events import PingEvent

                    def check(event):
                        return isinstance(event, PingEvent)
                    """,
            },
            "RL302",
        ) == []

    def test_no_consumer_modules_means_no_opinion(self):
        # A fixture tree without certify/analyze/overhead cannot violate
        # the consumer contract (most single-module fixtures hit this).
        assert lint({"src/repro/obs/events.py": EVENTS}, "RL302") == []


class TestPayloadValidation:
    def test_unknown_keyword_is_flagged(self):
        found = lint(
            {
                "src/repro/obs/events.py": EVENTS,
                "src/repro/serve/emit.py": """
                    from repro.obs.events import PingEvent

                    def emit():
                        return PingEvent(sess="s")
                    """,
            },
            "RL303",
        )
        assert [v.code for v in found] == ["RL303"]
        assert "`sess` is not a field" in found[0].message
        assert "session" in found[0].message

    def test_missing_required_field_is_flagged(self):
        found = lint(
            {
                "src/repro/obs/events.py": EVENTS,
                "src/repro/serve/emit.py": """
                    from repro.obs.events import PingEvent

                    def emit():
                        return PingEvent(note="n")
                    """,
            },
            "RL303",
        )
        assert [v.code for v in found] == ["RL303"]
        assert "misses required field(s): session" in found[0].message

    def test_positional_overflow_is_flagged(self):
        found = lint(
            {
                "src/repro/obs/events.py": EVENTS,
                "src/repro/serve/emit.py": """
                    from repro.obs.events import PingEvent

                    def emit():
                        return PingEvent("s", "n", "extra")
                    """,
            },
            "RL303",
        )
        assert [v.code for v in found] == ["RL303"]
        assert "positional" in found[0].message

    def test_optional_field_may_be_omitted(self):
        assert lint(
            {
                "src/repro/obs/events.py": EVENTS,
                "src/repro/serve/emit.py": """
                    from repro.obs.events import PingEvent

                    def emit():
                        return PingEvent(session="s")
                    """,
            },
            "RL303",
        ) == []

    def test_double_star_sites_are_runtime_territory(self):
        assert lint(
            {
                "src/repro/obs/events.py": EVENTS,
                "src/repro/serve/emit.py": """
                    from repro.obs.events import PingEvent

                    def emit(payload):
                        return PingEvent(**payload)
                    """,
            },
            "RL303",
        ) == []

    def test_tests_tree_sites_are_checked_too(self):
        # RL303 covers every tree: a fixture constructing an event with a
        # stale field name is exactly the drift the rule exists to catch.
        found = lint(
            {
                "src/repro/obs/events.py": EVENTS,
                "tests/test_emit.py": """
                    from repro.obs.events import PingEvent

                    def test_emit():
                        return PingEvent(sess="s")
                    """,
            },
            "RL303",
        )
        assert [v.code for v in found] == ["RL303"]


class TestRegistryExhaustiveness:
    def test_static_scan_matches_runtime_registry(self):
        """The lint rules' structural view of events == the real registry.

        Scans ``src/repro/obs/events.py`` exactly as the RL3xx collection
        phase does (``@register`` decorator + ``kind`` literal) and compares
        against the imported module's ``event_kinds()``.
        """
        from repro.obs.events import event_kinds

        source = (ROOT / "src" / "repro" / "obs" / "events.py").read_text(
            encoding="utf-8"
        )
        static_kinds = set()
        for node in ast.walk(ast.parse(source)):
            if not isinstance(node, ast.ClassDef):
                continue
            decorated = any(
                (isinstance(d, ast.Name) and d.id == "register")
                or (isinstance(d, ast.Attribute) and d.attr == "register")
                for d in node.decorator_list
            )
            if not decorated:
                continue
            for item in node.body:
                target = None
                value = None
                if isinstance(item, ast.AnnAssign):
                    target, value = item.target, item.value
                elif isinstance(item, ast.Assign) and len(item.targets) == 1:
                    target, value = item.targets[0], item.value
                if (
                    isinstance(target, ast.Name)
                    and target.id == "kind"
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    static_kinds.add(value.value)
        runtime_kinds = set(event_kinds())
        assert static_kinds == runtime_kinds
        assert len(runtime_kinds) >= 16
        # The serve plane's terminating event is part of the contract:
        # emitted by Session.abandon, consumed by certify + analyze.
        assert "session-abandoned" in static_kinds
