"""RL103: unawaited coroutines and dropped task handles — flag/no-flag/pragma."""

from __future__ import annotations

from textwrap import dedent
from typing import List

from repro.lint import lint_source
from repro.lint.violations import Violation


def rl103(source: str, kind: str = "src") -> List[Violation]:
    return lint_source(dedent(source), select=["RL103"], kind=kind).violations


class TestFlagged:
    def test_fire_and_forget_create_task(self):
        found = rl103(
            """
            import asyncio

            async def worker():
                pass

            async def serve():
                asyncio.create_task(worker())
            """
        )
        assert [v.code for v in found] == ["RL103"]
        assert "fire-and-forget" in found[0].message

    def test_discarded_handle_binding(self):
        found = rl103(
            """
            import asyncio

            async def worker():
                pass

            async def serve():
                task = asyncio.create_task(worker())
                return None
            """
        )
        assert [v.code for v in found] == ["RL103"]
        assert "`task`" in found[0].message

    def test_unawaited_project_coroutine(self):
        found = rl103(
            """
            async def worker():
                pass

            async def serve():
                worker()
            """
        )
        assert [v.code for v in found] == ["RL103"]
        assert "never awaited" in found[0].message

    def test_loop_method_spawner_form(self):
        found = rl103(
            """
            async def serve(loop, worker):
                loop.create_task(worker())
            """
        )
        assert [v.code for v in found] == ["RL103"]


class TestAllowed:
    def test_awaited_handle(self):
        assert rl103(
            """
            import asyncio

            async def worker():
                pass

            async def serve():
                task = asyncio.create_task(worker())
                await task
            """
        ) == []

    def test_handle_parked_for_drain(self):
        assert rl103(
            """
            import asyncio

            async def worker():
                pass

            class Engine:
                async def start(self):
                    task = asyncio.create_task(worker())
                    self._tasks.append(task)
            """
        ) == []

    def test_awaited_coroutine(self):
        assert rl103(
            """
            async def worker():
                pass

            async def serve():
                await worker()
            """
        ) == []

    def test_underscore_binding_is_a_deliberate_drop(self):
        assert rl103(
            """
            import asyncio

            async def worker():
                pass

            async def serve():
                _ = asyncio.create_task(worker())
            """
        ) == []

    def test_tests_tree_is_out_of_scope(self):
        assert rl103(
            """
            import asyncio

            async def worker():
                pass

            async def serve():
                asyncio.create_task(worker())
            """,
            kind="tests",
        ) == []


class TestPragmas:
    def test_same_line_disable(self):
        report = lint_source(
            dedent(
                """
                import asyncio

                async def worker():
                    pass

                async def serve():
                    asyncio.create_task(worker())  # reprolint: disable=RL103
                """
            ),
            select=["RL103"],
            kind="src",
        )
        assert report.violations == []
        assert report.suppressed == 1
