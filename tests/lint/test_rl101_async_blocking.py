"""RL101: blocking-op reachability from async def — flag/no-flag/pragma."""

from __future__ import annotations

from textwrap import dedent
from typing import List

from repro.lint import lint_source
from repro.lint.violations import Violation


def rl101(source: str, kind: str = "src") -> List[Violation]:
    return lint_source(dedent(source), select=["RL101"], kind=kind).violations


class TestFlagged:
    def test_direct_blocking_call(self):
        found = rl101(
            """
            import time

            async def serve():
                time.sleep(1)
            """
        )
        assert [v.code for v in found] == ["RL101"]
        assert "time.sleep" in found[0].message
        assert "directly" in found[0].message

    def test_indirect_via_sync_helper_names_the_chain(self):
        found = rl101(
            """
            import subprocess

            def git_sha():
                return subprocess.run(["git", "rev-parse", "HEAD"])

            async def settle():
                return git_sha()
            """
        )
        assert [v.code for v in found] == ["RL101"]
        assert "subprocess.run" in found[0].message
        assert "via git_sha()" in found[0].message

    def test_two_hop_chain(self):
        found = rl101(
            """
            import time

            def inner():
                time.sleep(0.1)

            def outer():
                inner()

            async def serve():
                outer()
            """
        )
        assert [v.code for v in found] == ["RL101"]
        assert "outer() -> inner()" in found[0].message

    def test_open_and_handle_write_are_blocking(self):
        found = rl101(
            """
            async def write_summary(path):
                with open(path, "w") as handle:
                    handle.write("{}")
            """
        )
        # Both the open() and the handle.write() hit the loop.
        assert [v.code for v in found] == ["RL101", "RL101"]

    def test_scripts_tree_is_in_scope(self):
        assert [v.code for v in rl101(
            """
            import time

            async def smoke():
                time.sleep(5)
            """,
            kind="scripts",
        )] == ["RL101"]


class TestAllowed:
    def test_awaited_async_callee_reports_only_at_the_source(self):
        found = rl101(
            """
            import time

            async def inner():
                time.sleep(1)

            async def outer():
                await inner()
            """
        )
        # One finding, inside `inner` — the caller's await is fine.
        assert len(found) == 1
        assert "inner" in found[0].message

    def test_executor_hop_is_clean(self):
        assert rl101(
            """
            import time

            def heavy():
                time.sleep(1)

            async def serve(loop):
                await loop.run_in_executor(None, heavy)
            """
        ) == []

    def test_pure_async_plumbing_is_clean(self):
        assert rl101(
            """
            import asyncio

            async def serve(queue):
                item = await queue.get()
                await asyncio.sleep(0)
                return item
            """
        ) == []

    def test_sync_functions_may_block(self):
        assert rl101(
            """
            import time

            def batch():
                time.sleep(1)
            """
        ) == []

    def test_tests_tree_is_out_of_scope(self):
        assert rl101(
            """
            import time

            async def serve():
                time.sleep(1)
            """,
            kind="tests",
        ) == []


class TestPragmas:
    def test_same_line_disable(self):
        report = lint_source(
            dedent(
                """
                import time

                async def serve():
                    time.sleep(1)  # reprolint: disable=RL101
                """
            ),
            select=["RL101"],
            kind="src",
        )
        assert report.violations == []
        assert report.suppressed == 1
