"""RL001: ambient nondeterminism — flagged, allowed, and suppressed shapes."""

from __future__ import annotations

from textwrap import dedent
from typing import List

from repro.lint import lint_source
from repro.lint.violations import Violation


def rl001(source: str, kind: str = "src") -> List[Violation]:
    return lint_source(dedent(source), select=["RL001"], kind=kind).violations


class TestFlagged:
    def test_wall_clock(self):
        found = rl001(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert [v.code for v in found] == ["RL001"]
        assert "time.time" in found[0].message

    def test_module_level_random(self):
        assert [v.code for v in rl001(
            """
            import random

            def draw():
                return random.random()
            """
        )] == ["RL001"]

    def test_unseeded_random_random(self):
        found = rl001(
            """
            import random

            def fresh():
                return random.Random()
            """
        )
        assert [v.code for v in found] == ["RL001"]
        assert "no seed" in found[0].message

    def test_fixed_seed_ignoring_threaded_rng(self):
        found = rl001(
            """
            import random

            def resample(rng):
                return random.Random(7).random()
            """
        )
        assert [v.code for v in found] == ["RL001"]
        assert "fixed-seed" in found[0].message

    def test_seed_read_off_self_is_still_fixed(self):
        # The shape of the CheatingProverServer bug this rule caught:
        # `self._seed` is constant across trials, so the stream repeats.
        found = rl001(
            """
            import random

            class Factory:
                def build(self, rng):
                    return random.Random(self._seed)
            """
        )
        assert [v.code for v in found] == ["RL001"]

    def test_uuid4_and_urandom(self):
        found = rl001(
            """
            import os
            import uuid

            def token():
                return uuid.uuid4(), os.urandom(8)
            """
        )
        assert [v.code for v in found] == ["RL001", "RL001"]

    def test_set_literal_iteration(self):
        found = rl001(
            """
            def first():
                for item in {"a", "b"}:
                    return item
            """
        )
        assert [v.code for v in found] == ["RL001"]
        assert "PYTHONHASHSEED" in found[0].message

    def test_set_call_in_comprehension(self):
        assert [v.code for v in rl001(
            """
            def uniques(values):
                return [v for v in set(values)]
            """
        )] == ["RL001"]


class TestAllowed:
    def test_seed_parameter_plumbed_through(self):
        assert rl001(
            """
            import random

            def make(seed):
                return random.Random(seed)
            """
        ) == []

    def test_seed_derived_from_threaded_rng(self):
        assert rl001(
            """
            import random

            def resample(rng):
                return random.Random(rng.getrandbits(64))
            """
        ) == []

    def test_measurement_clocks_are_fine(self):
        assert rl001(
            """
            import time

            def measure():
                return time.perf_counter(), time.monotonic()
            """
        ) == []

    def test_sorted_set_iteration_is_fine(self):
        assert rl001(
            """
            def ordered():
                return [item for item in sorted({"a", "b"})]
            """
        ) == []


class TestPragmas:
    def test_same_line_disable(self):
        report = lint_source(
            dedent(
                """
                import time

                def stamp():
                    return time.time()  # reprolint: disable=RL001
                """
            ),
            select=["RL001"],
            kind="src",
        )
        assert report.violations == []
        assert report.suppressed == 1

    def test_disable_next_line(self):
        report = lint_source(
            dedent(
                """
                import time

                def stamp():
                    # reprolint: disable-next=RL001
                    return time.time()
                """
            ),
            select=["RL001"],
            kind="src",
        )
        assert report.violations == []
        assert report.suppressed == 1

    def test_disable_file(self):
        report = lint_source(
            dedent(
                """
                # reprolint: disable-file=RL001
                import time

                def stamp():
                    return time.time()

                def stamp_again():
                    return time.time()
                """
            ),
            select=["RL001"],
            kind="src",
        )
        assert report.violations == []
        assert report.suppressed == 2

    def test_disable_all_wildcard(self):
        report = lint_source(
            dedent(
                """
                import time

                def stamp():
                    return time.time()  # reprolint: disable=all
                """
            ),
            kind="src",
        )
        assert report.violations == []

    def test_pragma_for_other_rule_does_not_suppress(self):
        report = lint_source(
            dedent(
                """
                import time

                def stamp():
                    return time.time()  # reprolint: disable=RL004
                """
            ),
            select=["RL001"],
            kind="src",
        )
        assert [v.code for v in report.violations] == ["RL001"]
