"""RL005: seed plumbing through public signatures — flag/no-flag/pragma."""

from __future__ import annotations

from textwrap import dedent
from typing import List

from repro.lint import lint_source
from repro.lint.violations import Violation


def rl005(source: str, kind: str = "src") -> List[Violation]:
    return lint_source(dedent(source), select=["RL005"], kind=kind).violations


class TestFlagged:
    def test_public_function_with_hidden_rng(self):
        found = rl005(
            """
            import random

            def make_world():
                return random.Random(3)
            """
        )
        assert [v.code for v in found] == ["RL005"]
        assert "plumb the seed" in found[0].message

    def test_public_init_with_hidden_rng(self):
        assert [v.code for v in rl005(
            """
            import random

            class NoisyServer:
                def __init__(self):
                    self._rng = random.Random(11)
            """
        )] == ["RL005"]

    def test_public_function_drawing_ambient_randomness(self):
        found = rl005(
            """
            import random

            def sample():
                return random.random()
            """
        )
        assert [v.code for v in found] == ["RL005"]
        assert "rng" in found[0].message


class TestAllowed:
    def test_seed_parameter_satisfies_the_rule(self):
        assert rl005(
            """
            import random

            def make_world(seed=0):
                return random.Random(seed)
            """
        ) == []

    def test_rng_parameter_satisfies_the_rule(self):
        assert rl005(
            """
            import random

            class SeededServer:
                def __init__(self, rng):
                    self._rng = random.Random(rng.getrandbits(64))
            """
        ) == []

    def test_private_helpers_are_exempt(self):
        assert rl005(
            """
            import random

            def _internal():
                return random.Random(3)

            class _Hidden:
                def __init__(self):
                    self._rng = random.Random(3)
            """
        ) == []

    def test_rng_built_in_nested_def_belongs_to_the_closure(self):
        assert rl005(
            """
            import random

            def build():
                def fresh(rng):
                    return random.Random(rng.getrandbits(64))
                return fresh
            """
        ) == []

    def test_rule_is_scoped_to_the_library_tree(self):
        # A test helper pinning `random.Random(0)` is the *caller*
        # choosing a seed — exactly the plumbed-through case.
        assert rl005(
            """
            import random

            def make_world():
                return random.Random(3)
            """,
            kind="tests",
        ) == []


class TestPragmas:
    def test_same_line_disable(self):
        report = lint_source(
            dedent(
                """
                import random

                def legacy_world():
                    return random.Random(3)  # reprolint: disable=RL005
                """
            ),
            select=["RL005"],
            kind="src",
        )
        assert report.violations == []
        assert report.suppressed == 1
