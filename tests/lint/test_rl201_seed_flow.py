"""RL201: accepted seed/rng params must reach a sink — flag/no-flag/pragma."""

from __future__ import annotations

from textwrap import dedent
from typing import List

from repro.lint import lint_source, lint_sources
from repro.lint.violations import Violation


def rl201(source: str, kind: str = "src") -> List[Violation]:
    return lint_source(dedent(source), select=["RL201"], kind=kind).violations


class TestFlagged:
    def test_dropped_seed_parameter(self):
        found = rl201(
            """
            def run(seed):
                return 42
            """
        )
        assert [v.code for v in found] == ["RL201"]
        assert "silently dropped" in found[0].message

    def test_dropped_rng_parameter(self):
        found = rl201(
            """
            def sample(rng, count):
                return [0.0] * count
            """
        )
        assert [v.code for v in found] == ["RL201"]
        assert "`rng`" in found[0].message

    def test_transfer_into_a_dead_param_is_still_dead(self):
        # Interprocedural: run -> _dispatch threads the seed, but the
        # callee drops it, so neither parameter ever reaches a sink.
        found = rl201(
            """
            def _dispatch(seed):
                return 1

            def run(seed):
                return _dispatch(seed)
            """
        )
        assert [v.code for v in found] == ["RL201", "RL201"]

    def test_cross_module_dead_chain(self):
        report = lint_sources(
            {
                "src/repro/inner.py": dedent(
                    """
                    def consume(seed):
                        return 0
                    """
                ),
                "src/repro/outer.py": dedent(
                    """
                    from repro.inner import consume

                    def run(seed):
                        return consume(seed)
                    """
                ),
            },
            select=["RL201"],
        )
        assert len(report.violations) == 2


class TestAllowed:
    def test_seed_feeding_a_stream_constructor(self):
        assert rl201(
            """
            import random

            def run(seed):
                return random.Random(seed).random()
            """
        ) == []

    def test_transfer_into_a_live_param_is_live(self):
        assert rl201(
            """
            import random

            def _dispatch(seed):
                return random.Random(seed)

            def run(seed):
                return _dispatch(seed)
            """
        ) == []

    def test_keyword_transfer_resolves(self):
        assert rl201(
            """
            import random

            def _dispatch(seed):
                return random.Random(seed)

            def run(seed):
                return _dispatch(seed=seed)
            """
        ) == []

    def test_underscore_prefix_declares_the_drop(self):
        assert rl201(
            """
            def run(_seed):
                return 42
            """
        ) == []

    def test_protocol_method_implementations_are_exempt(self):
        assert rl201(
            """
            from typing import Protocol

            class UserStrategy(Protocol):
                def react(self, rng):
                    ...

            class Silent:
                def react(self, rng):
                    return 0
            """
        ) == []

    def test_overrides_inherit_the_base_contract(self):
        assert rl201(
            """
            class Base:
                def react(self, rng):
                    return rng.random()

            class Deterministic(Base):
                def react(self, rng):
                    return 0.5
            """
        ) == []

    def test_trivial_bodies_are_declarations(self):
        assert rl201(
            """
            def react(rng):
                ...
            """
        ) == []

    def test_tests_tree_is_out_of_scope(self):
        assert rl201(
            """
            def run(seed):
                return 42
            """,
            kind="tests",
        ) == []


class TestPragmas:
    def test_same_line_disable(self):
        report = lint_source(
            dedent(
                """
                def run(seed):
                    return 42
                """
            ),
            select=["RL201"],
            kind="src",
        )
        assert len(report.violations) == 1
        suppressed = lint_source(
            dedent(
                """
                def run(seed):  # reprolint: disable=RL201
                    return 42
                """
            ),
            select=["RL201"],
            kind="src",
        )
        assert suppressed.violations == []
        assert suppressed.suppressed == 1
