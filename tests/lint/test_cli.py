"""The ``python -m repro.lint`` CLI: formats, exit codes, baseline ratchet."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint.cli import main
from repro.lint.rules import rule_codes

DIRTY = """\
import time


def stamp():
    return time.time()
"""

CLEAN = """\
def double(value):
    return 2 * value
"""


def write(tmp_path: Path, name: str, source: str) -> str:
    target = tmp_path / name
    target.write_text(source, encoding="utf-8")
    return str(target)


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        path = write(tmp_path, "clean.py", CLEAN)
        assert main([path]) == 0
        assert "0 violation(s) in 1 file(s)" in capsys.readouterr().out

    def test_violations_exit_one(self, tmp_path, capsys):
        path = write(tmp_path, "dirty.py", DIRTY)
        assert main([path]) == 1
        out = capsys.readouterr().out
        assert "RL001" in out
        assert f"{path}:5:" in out

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        path = write(tmp_path, "broken.py", "def broken(:\n")
        assert main([path]) == 2
        assert "syntax error" in capsys.readouterr().out

    def test_report_only_always_exits_zero(self, tmp_path, capsys):
        path = write(tmp_path, "dirty.py", DIRTY)
        assert main([path, "--report-only"]) == 0
        assert "RL001" in capsys.readouterr().out


class TestFormats:
    def test_json_document_shape(self, tmp_path, capsys):
        path = write(tmp_path, "dirty.py", DIRTY)
        assert main([path, "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["files_scanned"] == 1
        assert document["violation_count"] == len(document["violations"])
        assert set(document["counts_by_rule"]) <= set(rule_codes())
        first = document["violations"][0]
        assert {"path", "line", "col", "code", "message"} <= set(first)

    def test_github_annotations(self, tmp_path, capsys):
        path = write(tmp_path, "dirty.py", DIRTY)
        assert main([path, "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert f"::error file={path},line=5," in out
        assert "title=RL001" in out

    def test_statistics_appends_per_rule_counts(self, tmp_path, capsys):
        path = write(tmp_path, "dirty.py", DIRTY)
        main([path, "--statistics"])
        assert "RL001: 1" in capsys.readouterr().out


class TestSelection:
    def test_select_restricts_rules(self, tmp_path, capsys):
        path = write(tmp_path, "dirty.py", DIRTY)
        assert main([path, "--select", "RL004"]) == 0
        assert main([path, "--select", "RL001"]) == 1
        capsys.readouterr()

    def test_ignore_drops_rules(self, tmp_path, capsys):
        path = write(tmp_path, "dirty.py", DIRTY)
        # DIRTY trips RL001 (ambient clock) and RL005 (no seed param).
        assert main([path, "--ignore", "RL001,RL005"]) == 0
        capsys.readouterr()

    def test_comma_separated_and_lowercase_codes(self, tmp_path, capsys):
        path = write(tmp_path, "dirty.py", DIRTY)
        assert main([path, "--select", "rl001,rl005"]) == 1
        capsys.readouterr()

    def test_unknown_rule_code_is_a_usage_error(self, tmp_path, capsys):
        path = write(tmp_path, "dirty.py", DIRTY)
        with pytest.raises(SystemExit) as excinfo:
            main([path, "--select", "RL999"])
        assert excinfo.value.code == 2
        capsys.readouterr()


class TestBaselineRatchet:
    def record(self, tmp_path, capsys, *paths: str) -> str:
        main([*paths, "--format", "json", "--report-only"])
        baseline = tmp_path / "baseline.json"
        baseline.write_text(capsys.readouterr().out, encoding="utf-8")
        return str(baseline)

    def test_unchanged_count_passes(self, tmp_path, capsys):
        path = write(tmp_path, "dirty.py", DIRTY)
        baseline = self.record(tmp_path, capsys, path)
        assert main([path, "--baseline", baseline]) == 0
        capsys.readouterr()

    def test_new_violation_breaks_the_ratchet(self, tmp_path, capsys):
        path = write(tmp_path, "dirty.py", DIRTY)
        baseline = self.record(tmp_path, capsys, path)
        worse = write(tmp_path, "worse.py", DIRTY + DIRTY.replace("stamp", "again"))
        assert main([path, worse, "--baseline", baseline]) == 1
        assert "ratchet broken" in capsys.readouterr().err

    def test_fixing_violations_still_passes(self, tmp_path, capsys):
        dirty = write(tmp_path, "dirty.py", DIRTY)
        baseline = self.record(tmp_path, capsys, dirty)
        clean = write(tmp_path, "fixed.py", CLEAN)
        assert main([clean, "--baseline", baseline]) == 0
        capsys.readouterr()

    def test_unreadable_baseline_exits_two(self, tmp_path, capsys):
        path = write(tmp_path, "dirty.py", DIRTY)
        assert main([path, "--baseline", str(tmp_path / "missing.json")]) == 2
        capsys.readouterr()


class TestExplain:
    def test_catalogue_lists_every_rule(self, capsys):
        assert main(["--explain"]) == 0
        out = capsys.readouterr().out
        for code in rule_codes():
            assert code in out
