"""RL004: static picklability — flagged, allowed, and suppressed shapes."""

from __future__ import annotations

from textwrap import dedent
from typing import List

from repro.lint import lint_source
from repro.lint.violations import Violation


def rl004(source: str, kind: str = "src") -> List[Violation]:
    return lint_source(dedent(source), select=["RL004"], kind=kind).violations


class TestFlagged:
    def test_lambda_stored_on_instance(self):
        found = rl004(
            """
            class Picker:
                def __init__(self):
                    self.fn = lambda x: x
            """
        )
        assert [v.code for v in found] == ["RL004"]
        assert "lambda" in found[0].message

    def test_local_function_stored_on_instance(self):
        found = rl004(
            """
            class Picker:
                def __init__(self):
                    def helper(x):
                        return x
                    self.helper = helper
            """
        )
        assert [v.code for v in found] == ["RL004"]
        assert "closures do not pickle" in found[0].message

    def test_class_attribute_lambda(self):
        assert [v.code for v in rl004(
            """
            class Picker:
                key = lambda self, x: x
            """
        )] == ["RL004"]

    def test_dataclass_field_default_lambda(self):
        assert [v.code for v in rl004(
            """
            @dataclass
            class Config:
                scorer: object = field(default=lambda run: run.rounds)
            """
        )] == ["RL004"]

    def test_open_handle_stored_on_instance(self):
        found = rl004(
            """
            class Logger:
                def __init__(self, path):
                    self.handle = open(path)
            """
        )
        assert [v.code for v in found] == ["RL004"]
        assert "handle" in found[0].message


class TestAllowed:
    def test_module_level_function_reference(self):
        assert rl004(
            """
            class Picker:
                def __init__(self):
                    self.fn = module_level_scorer
            """
        ) == []

    def test_default_factory_lambda_is_fine(self):
        # The factory runs per instance; the *result* is what pickles.
        assert rl004(
            """
            @dataclass
            class Config:
                items: list = field(default_factory=lambda: [])
            """
        ) == []

    def test_plain_attribute_assignment(self):
        assert rl004(
            """
            class Logger:
                def __init__(self, path):
                    self.path = path
            """
        ) == []

    def test_local_lambda_not_stored_is_fine(self):
        assert rl004(
            """
            class Picker:
                def ranked(self, runs):
                    return sorted(runs, key=lambda r: r.rounds)
            """
        ) == []


class TestPragmas:
    def test_same_line_disable(self):
        report = lint_source(
            dedent(
                """
                class SerialOnly:
                    def __init__(self):
                        self.fn = lambda x: x  # reprolint: disable=RL004
                """
            ),
            select=["RL004"],
            kind="src",
        )
        assert report.violations == []
        assert report.suppressed == 1
