"""Fuzz: no shipped strategy ever raises on peer input.

PROTOCOLS.md's contract: strategies facing untrusted peers must treat
malformed, adversarial, or binary-garbage messages as noise — rejecting or
ignoring, never crashing.  These tests drive every shipped server and user
strategy with hypothesis-generated message streams and assert the contract
holds (the engine would surface any exception).

This is the safety net under the whole adversarial story: a strategy that
crashes on garbage is a strategy a malicious peer can kill.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.codecs import IdentityCodec, PrefixCodec, codec_family
from repro.comm.messages import ServerInbox, UserInbox
from repro.mathx.modular import Field
from repro.qbf.generators import random_cnf, random_qbf

F = Field()

# Messages that look *almost* right are the best crashers: mix structured
# near-misses with raw unicode junk.
_near_misses = st.sampled_from(
    [
        "PROVE:", "PROVE:Ax1:x1", "ROUND:", "ROUND:-1", "ROUND:0:",
        "ROUND:0:1e9", "POLY:0:", "POLY:0:1,,2", "CLAIM:2", "CLAIMSUM:-",
        "COUNT:", "SROUND:99:xx", "JOB:", "PRINT", "PRINT ", "DATA",
        "HELLO ", "AUTH:", "ACT:=", "ACT:red=", "ADV:red", "PRED:=1",
        "MOVE:", "MOVE:up", "GO:1,1=", "POS:,", "INSTANCE::;FB:",
        "ANSWER:=1", "OBS:;FB:", "Q:zzz;FB:ok@", ":", ";", "=", "@",
    ]
)
_junk = st.text(max_size=40)
messages = st.lists(st.one_of(_near_misses, _junk), min_size=1, max_size=12)


def all_server_strategies():
    """One instance of every shipped server species."""
    from repro.multiparty.babel import babel_server, community_names
    from repro.servers.advisors import AdvisorServer, MisleadingAdvisorServer
    from repro.servers.counting_provers import (
        CheatingCountingServer,
        HonestCountingServer,
        OverflowCountingServer,
    )
    from repro.servers.faulty import DroppingServer, GarblingServer, IntermittentServer
    from repro.servers.guides import GuideServer, MisleadingGuideServer
    from repro.servers.password import PasswordServer
    from repro.servers.printer_servers import (
        HandshakePrinter,
        LyingPrinter,
        SpacePrinter,
        TaggedPrinter,
    )
    from repro.servers.provers import (
        CheatingProverServer,
        HonestProverServer,
        LazyProverServer,
    )
    from repro.servers.wrappers import EncodedServer, ResettableServer
    from repro.worlds.navigation import Grid

    law = {"red": "blue", "blue": "red"}
    grid = Grid(4, 4, frozenset(), (0, 0), (3, 3))
    return [
        SpacePrinter(),
        TaggedPrinter(),
        HandshakePrinter(),
        LyingPrinter("tagged"),
        HonestProverServer(F),
        CheatingProverServer(F, "flip"),
        CheatingProverServer(F, "constant"),
        CheatingProverServer(F, "random"),
        LazyProverServer(1),
        HonestCountingServer(F),
        CheatingCountingServer(F, "inflate"),
        CheatingCountingServer(F, "adaptive"),
        OverflowCountingServer(F),
        AdvisorServer(law),
        MisleadingAdvisorServer(law),
        GuideServer(grid),
        MisleadingGuideServer(grid),
        PasswordServer("101", AdvisorServer(law)),
        EncodedServer(SpacePrinter(), PrefixCodec("~")),
        ResettableServer(TaggedPrinter(), idle_reset=2),
        DroppingServer(AdvisorServer(law), 0.5),
        GarblingServer(SpacePrinter(), 0.5),
        IntermittentServer(AdvisorServer(law), 2, 2),
        babel_server(IdentityCodec(), community_names(3), ["red", "green"]),
    ]


def all_user_strategies():
    """One instance of every shipped user species."""
    from repro.multiparty.babel import babel_user_class, community_names
    from repro.online.adapter import ThresholdUser
    from repro.online.equivalence import halving_user
    from repro.universal.compact import CompactUniversalUser
    from repro.universal.enumeration import ListEnumeration
    from repro.universal.finite import FiniteUniversalUser
    from repro.users.control_users import AdvisorFollowingUser, AuthenticatingUser
    from repro.users.counting_users import CountingUser
    from repro.users.delegation_users import DelegationUser, RepeatedDelegationUser
    from repro.users.navigation_users import GuidedNavigator
    from repro.users.printer_users import PrinterProtocolUser
    from repro.worlds.control import control_sensing
    from repro.worlds.printer import printing_sensing

    codecs = codec_family(2)
    followers = [AdvisorFollowingUser(c) for c in codecs]
    return [
        PrinterProtocolUser("space", codecs[0]),
        PrinterProtocolUser("handshake", codecs[1], blind_halt_after=4),
        DelegationUser(codecs[0], F),
        RepeatedDelegationUser(codecs[1], F),
        CountingUser(codecs[0], F),
        AdvisorFollowingUser(codecs[1]),
        AuthenticatingUser("01", AdvisorFollowingUser(codecs[0])),
        GuidedNavigator(codecs[0]),
        ThresholdUser(3),
        halving_user(8),
        CompactUniversalUser(ListEnumeration(followers), control_sensing()),
        FiniteUniversalUser(ListEnumeration(followers), printing_sensing()),
        babel_user_class(codecs, community_names(3))[0],
    ]


@given(stream=messages, seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=30, deadline=None)
def test_servers_never_crash_on_garbage(stream, seed):
    for server in all_server_strategies():
        rng = random.Random(seed)
        state = server.initial_state(rng)
        for message in stream:
            state, out = server.step(
                state, ServerInbox(from_user=message, from_world=message), rng
            )
        assert out is not None


@given(stream=messages, seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=30, deadline=None)
def test_users_never_crash_on_garbage(stream, seed):
    for user in all_user_strategies():
        rng = random.Random(seed)
        state = user.initial_state(rng)
        for message in stream:
            state, out = user.step(
                state, UserInbox(from_server=message, from_world=message), rng
            )
        assert out is not None


@given(seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=15, deadline=None)
def test_provers_survive_protocol_confusion(seed):
    """Valid openings followed by garbage rounds, replays, and re-opens."""
    from repro.servers.counting_provers import HonestCountingServer
    from repro.servers.provers import HonestProverServer

    rng = random.Random(seed)
    qbf_wire = random_qbf(random.Random(seed % 7), 2).serialize()
    from repro.qbf.formulas import serialize

    cnf_wire = serialize(random_cnf(random.Random(seed % 5), 3, 3))
    confusion = [
        f"PROVE:{qbf_wire}", "ROUND:0", "ROUND:0", "ROUND:5:1", "ROUND:1:x",
        f"PROVE:{qbf_wire}", "ROUND:1:3", f"COUNT:{cnf_wire}", "SROUND:0",
    ]
    for server in (HonestProverServer(F), HonestCountingServer(F)):
        state = server.initial_state(rng)
        for message in confusion:
            state, out = server.step(state, ServerInbox(from_user=message), rng)
            assert out is not None
