"""Tests for message profiles and the TAG:payload convention."""

from __future__ import annotations

import pytest

from repro.comm.messages import (
    SILENCE,
    ServerInbox,
    UserInbox,
    UserOutbox,
    WorldInbox,
    parse_tagged,
    tagged,
)


class TestSilence:
    def test_silence_is_empty_string(self):
        assert SILENCE == ""

    def test_user_inbox_silent_by_default(self):
        assert UserInbox().is_silent()

    def test_user_inbox_not_silent_with_server_message(self):
        assert not UserInbox(from_server="hi").is_silent()

    def test_user_inbox_not_silent_with_world_message(self):
        assert not UserInbox(from_world="hi").is_silent()

    def test_server_inbox_silent_flags(self):
        assert ServerInbox().is_silent()
        assert not ServerInbox(from_user="x").is_silent()

    def test_world_inbox_silent_flags(self):
        assert WorldInbox().is_silent()
        assert not WorldInbox(from_server="x").is_silent()


class TestUserOutbox:
    def test_defaults(self):
        out = UserOutbox()
        assert out.to_server == SILENCE
        assert out.to_world == SILENCE
        assert not out.halt
        assert out.output is None

    def test_halt_with_output(self):
        out = UserOutbox(halt=True, output="done")
        assert out.halt
        assert out.output == "done"

    def test_outbox_is_immutable(self):
        out = UserOutbox()
        with pytest.raises(AttributeError):
            out.halt = True  # type: ignore[misc]


class TestTagged:
    def test_round_trip(self):
        assert parse_tagged(tagged("PRINT", "hello")) == ("PRINT", "hello")

    def test_empty_payload(self):
        assert tagged("ACK") == "ACK:"
        assert parse_tagged("ACK:") == ("ACK", "")

    def test_payload_may_contain_colons(self):
        tag, payload = parse_tagged("POLY:0:1,2,3")
        assert tag == "POLY"
        assert payload == "0:1,2,3"

    def test_tag_with_colon_rejected(self):
        with pytest.raises(ValueError):
            tagged("A:B", "x")

    def test_parse_untagged_returns_none(self):
        assert parse_tagged("no colon here") is None

    def test_parse_empty_returns_none(self):
        assert parse_tagged("") is None
