"""Tests for channel delivery semantics."""

from __future__ import annotations

from repro.comm.channels import ChannelState, Roles
from repro.comm.messages import ServerOutbox, UserOutbox, WorldOutbox, SILENCE


class TestChannelState:
    def test_starts_silent(self):
        channels = ChannelState()
        assert channels.user_inbox().is_silent()
        assert channels.server_inbox().is_silent()
        assert channels.world_inbox().is_silent()

    def test_deliver_routes_all_six_channels(self):
        channels = ChannelState()
        channels.deliver(
            UserOutbox(to_server="u2s", to_world="u2w"),
            ServerOutbox(to_user="s2u", to_world="s2w"),
            WorldOutbox(to_user="w2u", to_server="w2s"),
        )
        assert channels.server_inbox().from_user == "u2s"
        assert channels.world_inbox().from_user == "u2w"
        assert channels.user_inbox().from_server == "s2u"
        assert channels.world_inbox().from_server == "s2w"
        assert channels.user_inbox().from_world == "w2u"
        assert channels.server_inbox().from_world == "w2s"

    def test_deliver_overwrites_not_buffers(self):
        channels = ChannelState()
        channels.deliver(
            UserOutbox(to_server="first"), ServerOutbox(), WorldOutbox()
        )
        channels.deliver(UserOutbox(), ServerOutbox(), WorldOutbox())
        assert channels.server_inbox().from_user == SILENCE

    def test_roles_constants(self):
        assert set(Roles.ALL) == {Roles.USER, Roles.SERVER, Roles.WORLD}
