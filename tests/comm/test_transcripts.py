"""Tests for transcript recording."""

from __future__ import annotations

from repro.comm.transcripts import Transcript, TranscriptEntry


class TestTranscript:
    def test_records_in_order(self):
        t = Transcript()
        t.record(0, "user", "server", "hello")
        t.record(1, "server", "user", "hi")
        assert [e.message for e in t] == ["hello", "hi"]

    def test_skips_silence(self):
        t = Transcript()
        t.record(0, "user", "server", "")
        assert len(t) == 0

    def test_between_filters_directed_channel(self):
        t = Transcript()
        t.record(0, "user", "server", "a")
        t.record(0, "server", "user", "b")
        t.record(1, "user", "server", "c")
        assert t.messages("user", "server") == ["a", "c"]
        assert t.messages("server", "user") == ["b"]

    def test_format_contains_round_and_parties(self):
        t = Transcript()
        t.record(12, "user", "server", "PRINT:x")
        line = t.format()
        assert "12" in line and "user" in line and "server" in line and "PRINT:x" in line

    def test_format_limit_keeps_tail(self):
        t = Transcript()
        for i in range(10):
            t.record(i, "user", "server", f"m{i}")
        assert t.format(limit=2).splitlines()[0].endswith("m8")

    def test_tail(self):
        t = Transcript()
        for i in range(5):
            t.record(i, "user", "server", f"m{i}")
        assert [e.message for e in t.tail(2)] == ["m3", "m4"]

    def test_entry_format(self):
        entry = TranscriptEntry(3, "world", "user", "OBS:red")
        assert "world" in entry.format() and "OBS:red" in entry.format()
