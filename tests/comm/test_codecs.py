"""Tests for the codec substrate — mostly the bijection laws, via hypothesis."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.codecs import (
    AlphabetPermutationCodec,
    CaesarCodec,
    Codec,
    ComposedCodec,
    IdentityCodec,
    PrefixCodec,
    ReverseCodec,
    TokenMapCodec,
    XorMaskCodec,
    codec_family,
)
from repro.errors import CodecError

# Strings over the printable-ASCII range, the domain all protocols use.
printable_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=60
)

ALL_CODECS = [
    IdentityCodec(),
    ReverseCodec(),
    CaesarCodec(shift=5),
    CaesarCodec(shift=94),
    XorMaskCodec(mask=0x2A),
    AlphabetPermutationCodec(mapping=(("a", "b"), ("b", "c"), ("c", "a"))),
    TokenMapCodec(mapping=(("north", "sud"), ("sud", "north"))),
    PrefixCodec(sigil="~~"),
    ComposedCodec((ReverseCodec(), CaesarCodec(shift=3))),
]


@pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
@given(message=printable_text)
@settings(max_examples=40, deadline=None)
def test_decode_inverts_encode(codec: Codec, message: str):
    assert codec.decode(codec.encode(message)) == message


@pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
@given(a=printable_text, b=printable_text)
@settings(max_examples=25, deadline=None)
def test_encode_is_injective(codec: Codec, a: str, b: str):
    if a != b:
        assert codec.encode(a) != codec.encode(b)


class TestIdentity:
    def test_identity_is_noop(self):
        assert IdentityCodec().encode("abc") == "abc"


class TestCaesar:
    def test_known_shift(self):
        assert CaesarCodec(shift=1).encode("ABC") == "BCD"

    def test_wraps_printable_range(self):
        # '~' (126) shifted by 1 wraps to ' ' (32).
        assert CaesarCodec(shift=1).encode("~") == " "

    def test_nonprintable_passes_through(self):
        assert CaesarCodec(shift=7).encode("\n") == "\n"


class TestXorMask:
    def test_self_inverse(self):
        codec = XorMaskCodec(mask=0x13)
        assert codec.encode(codec.encode("hello")) == "hello"

    def test_rejects_out_of_range_mask(self):
        with pytest.raises(ValueError):
            XorMaskCodec(mask=256)

    def test_rejects_non_latin1_input(self):
        with pytest.raises(CodecError):
            XorMaskCodec(mask=1).encode("☃")  # snowman


class TestAlphabetPermutation:
    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            AlphabetPermutationCodec(mapping=(("a", "b"), ("b", "b")))

    def test_rejects_duplicate_sources(self):
        with pytest.raises(ValueError):
            AlphabetPermutationCodec(mapping=(("a", "b"), ("a", "c"), ("b", "a"), ("c", "a")))

    def test_characters_outside_alphabet_pass_through(self):
        codec = AlphabetPermutationCodec(mapping=(("a", "b"), ("b", "a")))
        assert codec.encode("abz") == "baz"


class TestTokenMap:
    def test_whole_tokens_only(self):
        codec = TokenMapCodec(mapping=(("north", "sud"), ("sud", "north")))
        assert codec.encode("go north now") == "go sud now"
        assert codec.encode("northern") == "northern"

    def test_rejects_non_injective(self):
        with pytest.raises(ValueError):
            TokenMapCodec(mapping=(("a", "x"), ("b", "x")))


class TestPrefix:
    def test_decode_rejects_missing_sigil(self):
        with pytest.raises(CodecError):
            PrefixCodec(sigil="~").decode("no sigil")


class TestComposition:
    def test_then_builds_composition(self):
        codec = ReverseCodec().then(CaesarCodec(shift=2))
        assert codec.decode(codec.encode("xyz")) == "xyz"

    def test_empty_composition_rejected(self):
        with pytest.raises(ValueError):
            ComposedCodec(())

    def test_composition_order_matters(self):
        a = ComposedCodec((ReverseCodec(), PrefixCodec("~")))
        b = ComposedCodec((PrefixCodec("~"), ReverseCodec()))
        assert a.encode("ab") == "~ba"
        assert b.encode("ab") == "ba~"


class TestFamily:
    def test_family_members_distinct_behaviour(self):
        family = codec_family(16)
        probe = "The Quick Brown Fox ~ 123!"
        encodings = [codec.encode(probe) for codec in family]
        assert len(set(encodings)) == len(family)

    def test_family_starts_with_identity(self):
        assert isinstance(codec_family(1)[0], IdentityCodec)

    def test_family_deterministic(self):
        names_a = [c.name for c in codec_family(12)]
        names_b = [c.name for c in codec_family(12)]
        assert names_a == names_b

    def test_family_size_validated(self):
        with pytest.raises(ValueError):
            codec_family(0)

    @pytest.mark.parametrize("size", [1, 2, 5, 30, 80])
    def test_family_has_requested_size(self, size: int):
        assert len(codec_family(size)) == size

    @given(message=printable_text)
    @settings(max_examples=20, deadline=None)
    def test_large_family_all_bijective(self, message: str):
        for codec in codec_family(40):
            assert codec.decode(codec.encode(message)) == message
