"""Tests for the learning ↔ communication adapters."""

from __future__ import annotations

import random

from repro.comm.messages import UserInbox
from repro.core.execution import run_execution
from repro.core.strategy import SilentServer
from repro.online.adapter import (
    LearnerUser,
    ThresholdUser,
    UserAsLearner,
    threshold_user_class,
)
from repro.online.learners import (
    HalvingLearner,
    simulate_mistakes,
    threshold_class,
)
from repro.worlds.lookup import lookup_goal, threshold_label


class TestLearnerUser:
    def test_achieves_lookup_goal(self):
        goal = lookup_goal(threshold=5, domain=16)
        user = LearnerUser(lambda: HalvingLearner(threshold_class(16)))
        result = run_execution(user, SilentServer(), goal.world, max_rounds=700, seed=1)
        assert goal.evaluate(result).achieved

    def test_mistakes_bounded_by_halving(self):
        import math

        goal = lookup_goal(threshold=11, domain=16)
        user = LearnerUser(lambda: HalvingLearner(threshold_class(16)))
        result = run_execution(user, SilentServer(), goal.world, max_rounds=700, seed=2)
        assert result.final_world_state().mistakes <= math.log2(17) + 1

    def test_fresh_learner_per_execution(self):
        built = []

        def factory():
            built.append(1)
            return HalvingLearner(threshold_class(4))

        goal = lookup_goal(threshold=1, domain=4)
        user = LearnerUser(factory)
        run_execution(user, SilentServer(), goal.world, max_rounds=20, seed=0)
        run_execution(user, SilentServer(), goal.world, max_rounds=20, seed=1)
        assert len(built) == 2

    def test_answers_every_query(self):
        goal = lookup_goal(threshold=3, domain=8, query_period=3)
        user = LearnerUser(lambda: HalvingLearner(threshold_class(8)))
        result = run_execution(user, SilentServer(), goal.world, max_rounds=120, seed=3)
        state = result.final_world_state()
        assert state.scored >= 30  # ~40 queries issued, latency leaves a few pending.


class TestThresholdUser:
    def test_predicts_fixed_threshold(self):
        user = ThresholdUser(4)
        rng = random.Random(0)
        state = user.initial_state(rng)
        _, out = user.step(state, UserInbox(from_world="Q:7;FB:none"), rng)
        assert out.to_world == "PRED:7=1"
        _, out = user.step(state, UserInbox(from_world="Q:2;FB:none"), rng)
        assert out.to_world == "PRED:2=0"

    def test_silent_between_queries(self):
        user = ThresholdUser(4)
        rng = random.Random(0)
        state = user.initial_state(rng)
        _, out = user.step(state, UserInbox(from_world="Q:-;FB:ok@3"), rng)
        assert out.to_world == ""

    def test_class_order(self):
        users = threshold_user_class(5)
        assert [u.threshold for u in users] == list(range(6))


class TestUserAsLearner:
    def test_threshold_user_behaves_as_its_hypothesis(self):
        learner = UserAsLearner(ThresholdUser(5))
        rng = random.Random(0)
        qs = [rng.randrange(12) for _ in range(60)]
        mistakes = simulate_mistakes(
            learner, lambda x: threshold_label(5, x), qs
        )
        assert mistakes == 0

    def test_mismatched_user_makes_mistakes(self):
        learner = UserAsLearner(ThresholdUser(0))
        qs = [1, 2, 3, 4, 5]
        mistakes = simulate_mistakes(
            learner, lambda x: threshold_label(6, x), qs
        )
        assert mistakes == 5

    def test_silent_strategy_defaults_to_false(self):
        from repro.core.strategy import SilentUser

        learner = UserAsLearner(SilentUser(), patience=3)
        assert learner.predict(5) is False
