"""Tests for the pure online learners and their mistake bounds."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.online.learners import (
    HalvingLearner,
    SingleHypothesisLearner,
    WeightedMajorityLearner,
    simulate_mistakes,
    threshold_class,
)
from repro.worlds.lookup import threshold_label


def queries(seed, domain, count=300):
    rng = random.Random(seed)
    return [rng.randrange(domain) for _ in range(count)]


class TestThresholdClass:
    def test_size(self):
        assert len(threshold_class(10)) == 11

    def test_hypotheses_are_distinct(self):
        hyps = threshold_class(5)
        signatures = [tuple(h(x) for x in range(5)) for h in hyps]
        assert len(set(signatures)) == len(hyps)

    def test_domain_validated(self):
        with pytest.raises(ValueError):
            threshold_class(0)


class TestHalving:
    @given(theta=st.integers(min_value=0, max_value=32),
           seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_mistake_bound_log_class_size(self, theta, seed):
        domain = 32
        learner = HalvingLearner(threshold_class(domain))
        mistakes = simulate_mistakes(
            learner, lambda x: threshold_label(theta, x), queries(seed, domain)
        )
        assert mistakes <= math.log2(domain + 1) + 1

    def test_version_space_shrinks_on_mistakes(self):
        learner = HalvingLearner(threshold_class(16))
        before = learner.version_space_size
        # Feed a surprising truth for a mid-domain query.
        prediction = learner.predict(8)
        learner.update(8, not prediction)
        assert learner.version_space_size < before

    def test_resets_when_emptied(self):
        learner = HalvingLearner(threshold_class(4))
        # Adversarial truths: contradictory labels for the same query.
        learner.update(2, True)
        learner.update(2, False)
        assert learner.version_space_size >= 1

    def test_empty_class_rejected(self):
        with pytest.raises(ValueError):
            HalvingLearner([])


class TestWeightedMajority:
    @given(theta=st.integers(min_value=0, max_value=16),
           seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_few_mistakes_on_realizable_data(self, theta, seed):
        domain = 16
        learner = WeightedMajorityLearner(threshold_class(domain))
        mistakes = simulate_mistakes(
            learner, lambda x: threshold_label(theta, x), queries(seed, domain)
        )
        # Classic bound: 2.41 (M* + lg |C|) with M* = 0 here; generous slack.
        assert mistakes <= 2.41 * math.log2(domain + 1) + 2

    def test_beta_validated(self):
        with pytest.raises(ValueError):
            WeightedMajorityLearner(threshold_class(4), beta=1.0)

    def test_weights_survive_long_adversarial_runs(self):
        learner = WeightedMajorityLearner(threshold_class(4), beta=0.5)
        for i in range(2000):
            learner.update(i % 4, bool(i % 2))
        # No underflow crash, and prediction still well-defined.
        assert learner.predict(2) in (True, False)


class TestSingleHypothesis:
    def test_never_updates(self):
        learner = SingleHypothesisLearner(lambda x: x >= 3)
        learner.update(0, True)
        assert learner.predict(2) is False
        assert learner.predict(3) is True

    def test_mistakes_proportional_to_disagreement(self):
        def target(x):
            return x >= 0  # Everything positive.

        learner = SingleHypothesisLearner(lambda x: False)
        qs = queries(1, 8, count=100)
        assert simulate_mistakes(learner, target, qs) == 100


class TestSimulate:
    def test_zero_mistakes_for_true_hypothesis(self):
        learner = SingleHypothesisLearner(lambda x: threshold_label(5, x))
        mistakes = simulate_mistakes(
            learner, lambda x: threshold_label(5, x), queries(2, 10)
        )
        assert mistakes == 0
