"""Tests for the equivalence measurement harness (the E8 claim, scaled down)."""

from __future__ import annotations

import math

import pytest

from repro.online.equivalence import (
    enumeration_user,
    halving_user,
    mistakes_in_game,
    mistakes_in_world,
    weighted_majority_user,
)
from repro.online.learners import HalvingLearner, threshold_class


class TestEnumerationUser:
    def test_achieves_goal(self):
        from repro.core.execution import run_execution
        from repro.core.strategy import SilentServer
        from repro.worlds.lookup import lookup_goal

        goal = lookup_goal(threshold=4, domain=8)
        result = run_execution(
            enumeration_user(8), SilentServer(), goal.world, max_rounds=1500, seed=0
        )
        assert goal.evaluate(result).achieved

    def test_mistakes_grow_with_target_index(self):
        low = mistakes_in_world(enumeration_user(16), 1, 16, horizon=2500, seed=1)
        high = mistakes_in_world(enumeration_user(16), 15, 16, horizon=2500, seed=1)
        assert high > low


class TestHalvingUser:
    @pytest.mark.parametrize("theta", [0, 7, 15])
    def test_mistakes_logarithmic(self, theta):
        mistakes = mistakes_in_world(halving_user(16), theta, 16, horizon=2000, seed=1)
        assert mistakes <= math.log2(17) + 2

    def test_beats_enumeration_on_late_targets(self):
        domain, theta = 16, 14
        enum = mistakes_in_world(
            enumeration_user(domain), theta, domain, horizon=2500, seed=2
        )
        halv = mistakes_in_world(
            halving_user(domain), theta, domain, horizon=2500, seed=2
        )
        assert halv < enum


class TestWeightedMajorityUser:
    def test_few_mistakes(self):
        mistakes = mistakes_in_world(
            weighted_majority_user(16), 9, 16, horizon=2000, seed=3
        )
        assert mistakes <= 2.41 * math.log2(17) + 3


class TestGameHarness:
    def test_pure_game_matches_bound(self):
        learner = HalvingLearner(threshold_class(32))
        mistakes = mistakes_in_game(learner, 20, 32, n_queries=400, seed=4)
        assert mistakes <= math.log2(33) + 1
