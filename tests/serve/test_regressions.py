"""Regression tests for the two serve-path bugs reprolint v2 surfaced.

RL101 found the first-call ``git_sha`` subprocess hiding inside session
settle (async context → ``Session.close`` → manifest → ``git rev-parse``);
the fix warms the process-wide cache in ``ServeEngine.start`` so the one
subprocess runs at startup, never mid-serve.  RL203 found ``demo_specs``
seeding the control law and the session seeds from the *same*
``random.Random(seed)`` stream — correlated draws; the fix fans both out
of one root stream via distinct ``getrandbits(64)`` prefixes.
"""

from __future__ import annotations

import asyncio
import random
from typing import List

import repro.obs.ledger as ledger
from repro.serve.engine import ServeEngine
from repro.serve.loadgen import demo_specs
from repro.serve.session import _cached_git_sha, derive_session_seeds


def run(coroutine):
    return asyncio.run(coroutine)


class TestGitShaWarmedAtStart:
    """One ``git rev-parse`` at engine start; zero during serving."""

    def test_cache_is_warmed_before_any_session(self, tmp_path, monkeypatch):
        calls: List[int] = []

        def counting_git_sha():
            calls.append(1)
            return "deadbeef"

        # _cached_git_sha imports git_sha at call time (late binding),
        # so patching the ledger module is enough.
        monkeypatch.setattr(ledger, "git_sha", counting_git_sha)
        _cached_git_sha.cache_clear()
        try:
            specs = demo_specs("relay", 3, seed=1, max_rounds=30)

            async def serve():
                engine = ServeEngine(
                    max_open=4, workers=1, ledger_dir=tmp_path
                )
                async with engine:
                    calls_at_start = len(calls)
                    handles = [await engine.submit(spec) for spec in specs]
                    await asyncio.gather(*(h.future for h in handles))
                return calls_at_start

            calls_at_start = run(serve())
            assert calls_at_start == 1, "start() must warm the cache"
            assert len(calls) == 1, (
                "session settles must reuse the warmed cache, not shell "
                "out on the event loop"
            )
        finally:
            _cached_git_sha.cache_clear()

    def test_no_subprocess_without_a_ledger(self, monkeypatch):
        calls: List[int] = []

        def counting_git_sha():
            calls.append(1)
            return "deadbeef"

        monkeypatch.setattr(ledger, "git_sha", counting_git_sha)
        _cached_git_sha.cache_clear()
        try:
            specs = demo_specs("relay", 2, seed=1, max_rounds=30)

            async def serve():
                async with ServeEngine(max_open=4, workers=1) as engine:
                    handles = [await engine.submit(spec) for spec in specs]
                    await asyncio.gather(*(h.future for h in handles))

            run(serve())
            assert calls == [], "no ledger → no manifest → no git lookup"
        finally:
            _cached_git_sha.cache_clear()


class TestDemoSpecsSeedIndependence:
    """Session seeds and the control law no longer share one stream."""

    def test_session_seeds_are_not_the_raw_master_prefix(self):
        # The old bug: seeds == derive_session_seeds(seed, n) while the
        # control law consumed random.Random(seed) — the identical stream.
        seed, sessions = 123, 4
        specs = demo_specs("control", sessions, seed=seed)
        assert [s.seed for s in specs] != derive_session_seeds(seed, sessions)

    def test_session_seeds_fan_out_from_a_derived_root(self):
        seed, sessions = 123, 4
        entropy = random.Random(seed)
        entropy.getrandbits(64)  # law_seed draw
        session_root = entropy.getrandbits(64)
        specs = demo_specs("relay", sessions, seed=seed)
        assert [s.seed for s in specs] == derive_session_seeds(
            session_root, sessions
        )

    def test_session_seeds_are_distinct(self):
        specs = demo_specs("mixed", 12, seed=7)
        seeds = [s.seed for s in specs]
        assert len(set(seeds)) == len(seeds)

    def test_specs_stay_deterministic_in_the_new_scheme(self):
        first = demo_specs("control", 6, seed=9, max_rounds=20)
        again = demo_specs("control", 6, seed=9, max_rounds=20)
        assert [s.seed for s in first] == [s.seed for s in again]
        assert [s.label for s in first] == [s.label for s in again]
