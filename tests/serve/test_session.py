"""Session semantics: parity with the batch engine, provenance, lifecycle.

The load-bearing contract is bitwise parity — a :class:`Session` stepped
to completion in slices of any size produces an
:class:`~repro.core.execution.ExecutionResult` *equal* to
``run_execution`` on the same cast/seed, and a traced session's JSONL
trace is byte-identical to :func:`repro.obs.ledger.record_run`'s.  The
rest pins the service surface: create/step/close lifecycle, idempotent
close, early close, abandon, and the per-session seed fan-out.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.execution import FULL_RECORDING, METRICS_RECORDING, run_execution
from repro.errors import ServeError
from repro.obs.certify import certify_run
from repro.obs.ledger import read_manifest, record_run
from repro.serve.loadgen import demo_specs
from repro.serve.session import Session, SessionSpec, derive_session_seeds


def batch_reference(spec):
    """The serial engine's result + verdict for ``spec``."""
    execution = run_execution(
        spec.user, spec.server, spec.goal.world,
        max_rounds=spec.max_rounds, seed=spec.seed,
        recording=spec.recording, channel=spec.channel,
    )
    return execution, spec.goal.evaluate(execution)


class TestStepParity:
    @pytest.mark.parametrize("family", ["relay", "control", "universal"])
    @pytest.mark.parametrize("drop", [0.0, 0.1])
    def test_bitwise_equality_per_family(self, family, drop):
        specs = demo_specs(
            family, 4, seed=11, max_rounds=90, drop=drop,
            recording=FULL_RECORDING,
        )
        for spec in specs:
            session = Session(spec)
            while session.live:
                session.step(7)
            outcome = session.close()
            execution, verdict = batch_reference(spec)
            assert outcome.execution == execution, spec.label
            assert outcome.outcome == verdict, spec.label

    @pytest.mark.parametrize("slice_rounds", [1, 3, 64, 10_000])
    def test_slice_size_never_matters(self, slice_rounds):
        spec = demo_specs("universal", 1, seed=2, max_rounds=120, drop=0.1)[0]
        session = Session(spec)
        while session.live:
            session.step(slice_rounds)
        execution, _ = batch_reference(spec)
        assert session.close().execution == execution

    def test_metrics_recording_parity(self):
        spec = demo_specs(
            "control", 1, seed=7, max_rounds=80, recording=METRICS_RECORDING
        )[0]
        session = Session(spec)
        while session.live:
            session.step(5)
        execution, _ = batch_reference(spec)
        assert session.close().execution == execution

    def test_interleaved_sessions_are_isolated(self):
        """Scrambled interleaving of sessions sharing one universal user
        changes nothing: per-session seeds, per-session results."""
        specs = demo_specs("universal", 6, seed=9, max_rounds=90, drop=0.1)
        assert len({spec.seed for spec in specs}) == len(specs)
        assert len({id(spec.user) for spec in specs}) == 1
        sessions = [Session(s, session_id=f"i{n}") for n, s in enumerate(specs)]
        order = random.Random(4)
        live = list(sessions)
        while live:
            session = order.choice(live)
            session.step(order.randrange(1, 9))
            live = [s for s in sessions if s.live]
        for spec, session in zip(specs, sessions):
            execution, verdict = batch_reference(spec)
            assert session.close().execution == execution
            assert session.close().outcome == verdict


class TestLifecycle:
    def test_close_is_idempotent(self):
        spec = demo_specs("relay", 1, seed=1, max_rounds=30)[0]
        session = Session(spec)
        while session.live:
            session.step(50)
        first = session.close()
        assert session.close() is first
        assert session.closed

    def test_step_after_close_raises(self):
        spec = demo_specs("relay", 1, seed=1, max_rounds=30)[0]
        session = Session(spec)
        session.close()
        with pytest.raises(ServeError, match="closed"):
            session.step()

    def test_early_close_keeps_partial_state(self):
        spec = demo_specs("control", 1, seed=1, max_rounds=500)[0]
        session = Session(spec)
        session.step(10)
        outcome = session.close()
        assert outcome.execution.rounds_completed == 10
        assert not outcome.execution.halted

    def test_step_returns_rounds_executed(self):
        spec = demo_specs("relay", 1, seed=1, max_rounds=25)[0]
        session = Session(spec)
        assert session.step(10) == 10
        assert session.step(1000) == 15  # stops at the horizon
        assert not session.live
        assert session.step(5) == 0  # settled: a no-op, not an error

    def test_times_accumulate(self):
        spec = demo_specs("relay", 1, seed=1, max_rounds=40)[0]
        session = Session(spec)
        while session.live:
            session.step(4)
        outcome = session.close()
        assert outcome.wall_time_s > 0.0
        assert outcome.cpu_time_s >= 0.0

    def test_trace_requires_ledger_dir(self):
        spec = demo_specs("relay", 1, seed=1, max_rounds=10)[0]
        with pytest.raises(ServeError, match="ledger_dir"):
            Session(spec, trace=True)
        with pytest.raises(ServeError, match="trace"):
            Session(spec, ledger_dir="x", certify=True)


class TestLedgerIntegration:
    def test_trace_matches_record_run_byte_for_byte(self, tmp_path):
        """A served session and record_run write the *same* trace."""
        spec = demo_specs(
            "universal", 1, seed=13, max_rounds=90, drop=0.1,
            recording=FULL_RECORDING,
        )[0]
        session = Session(
            spec, session_id="served", ledger_dir=tmp_path / "serve", trace=True
        )
        while session.live:
            session.step(9)
        outcome = session.close()
        recorded = record_run(
            spec.user, spec.server, spec.goal,
            max_rounds=spec.max_rounds, seed=spec.seed,
            out_dir=tmp_path / "batch", name="batch",
            recording=spec.recording, channel=spec.channel,
        )
        assert outcome.trace_path.read_bytes() == recorded.trace_path.read_bytes()
        assert outcome.manifest.trace_sha256 == recorded.manifest.trace_sha256
        assert outcome.execution == recorded.execution

    def test_certifiable_and_manifest_round_trips(self, tmp_path):
        spec = demo_specs("control", 1, seed=3, max_rounds=60, drop=0.1)[0]
        session = Session(
            spec, session_id="c0", ledger_dir=tmp_path, trace=True, certify=True
        )
        while session.live:
            session.step(8)
        outcome = session.close()
        # certify=True already re-checked; check the engine-free path too.
        certify_run(outcome.trace_path, outcome.manifest_path)
        manifest = read_manifest(outcome.manifest_path)
        assert manifest == outcome.manifest
        assert manifest.kind == "run"
        assert manifest.seeds == (spec.seed,)
        assert manifest.user == spec.user.name
        assert manifest.server == spec.server.name
        assert manifest.channel == spec.channel.name
        assert manifest.rounds == outcome.execution.rounds_executed

    def test_manifest_without_trace(self, tmp_path):
        spec = demo_specs("relay", 1, seed=3, max_rounds=30)[0]
        session = Session(spec, session_id="m0", ledger_dir=tmp_path)
        session.step(1000)
        outcome = session.close()
        assert outcome.trace_path is None
        assert outcome.manifest.trace_sha256 is None
        assert outcome.manifest_path.exists()

    def test_abandon_flushes_without_verdict(self, tmp_path):
        spec = demo_specs("relay", 1, seed=3, max_rounds=60)[0]
        session = Session(spec, session_id="a0", ledger_dir=tmp_path, trace=True)
        session.step(5)
        session.abandon()
        lines = (tmp_path / "a0.jsonl").read_text().splitlines()
        kinds = [json.loads(line).get("kind") for line in lines[1:]]
        assert "execution-started" in kinds
        assert "goal-verdict" not in kinds
        assert not (tmp_path / "a0.json").exists()


class TestSeedDerivation:
    def test_deterministic_and_prefix_stable(self):
        assert derive_session_seeds(5, 4) == derive_session_seeds(5, 4)
        assert derive_session_seeds(5, 4) == derive_session_seeds(5, 10)[:4]
        assert derive_session_seeds(5, 4) != derive_session_seeds(6, 4)

    def test_no_collisions_at_fleet_scale(self):
        seeds = derive_session_seeds(0, 10_000)
        assert len(set(seeds)) == len(seeds)

    def test_negative_count_rejected(self):
        with pytest.raises(ServeError, match="non-negative"):
            derive_session_seeds(0, -1)


def test_spec_defaults_are_service_shaped():
    """Metrics-only recording by default: thousands of open sessions must
    not each hold a full round history."""
    spec = SessionSpec(
        user=demo_specs("relay", 1, seed=0, max_rounds=10)[0].user,
        server=demo_specs("relay", 1, seed=0, max_rounds=10)[0].server,
        goal=demo_specs("relay", 1, seed=0, max_rounds=10)[0].goal,
    )
    assert spec.recording is METRICS_RECORDING
    assert spec.channel is None
