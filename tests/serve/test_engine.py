"""ServeEngine semantics: scheduling, backpressure, drain, telemetry.

All tests drive the engine through ``asyncio.run`` (stdlib only — no
pytest-asyncio in the image).  The headline assertions: multiplexed
sessions settle with results bitwise-equal to the batch engine's, a full
engine rejects or parks exactly as configured, drain is graceful
mid-enumeration, one broken session cannot take its neighbours down, and
the counters add up.
"""

from __future__ import annotations

import asyncio
import json
import random

import pytest

from repro.core.execution import FULL_RECORDING, run_execution
from repro.core.strategy import UserStrategy
from repro.errors import ServeError
from repro.obs.certify import certify_run
from repro.serve.engine import (
    EngineClosed,
    ServeEngine,
    SessionRejected,
)
from repro.serve.loadgen import demo_specs
from repro.serve.session import SessionOutcome


def run(coroutine):
    return asyncio.run(coroutine)


def batch_reference(spec):
    execution = run_execution(
        spec.user, spec.server, spec.goal.world,
        max_rounds=spec.max_rounds, seed=spec.seed,
        recording=spec.recording, channel=spec.channel,
    )
    return execution, spec.goal.evaluate(execution)


class ExplodingUser(UserStrategy):
    """Steps fine for a while, then raises — a broken tenant."""

    def __init__(self, after: int) -> None:
        self._after = after

    def initial_state(self, rng):
        return 0

    def step(self, state, inbox, rng):
        if state >= self._after:
            raise RuntimeError("tenant bug")
        from repro.comm.messages import UserOutbox

        return state + 1, UserOutbox()


class TestEndToEndParity:
    def test_multiplexed_equals_batch_bitwise(self):
        specs = demo_specs(
            "mixed", 18, seed=21, max_rounds=90, drop=0.1,
            recording=FULL_RECORDING,
        )

        async def serve():
            async with ServeEngine(max_open=6, workers=2, slice_rounds=5) as eng:
                handles = [await eng.submit(spec) for spec in specs]
                return await asyncio.gather(*(h.future for h in handles))

        outcomes = run(serve())
        for spec, outcome in zip(specs, outcomes):
            execution, verdict = batch_reference(spec)
            assert outcome.execution == execution, spec.label
            assert outcome.outcome == verdict, spec.label

    def test_served_traces_certify(self, tmp_path):
        specs = demo_specs("mixed", 6, seed=2, max_rounds=60, drop=0.1)

        async def serve():
            engine = ServeEngine(
                max_open=4, workers=2, slice_rounds=8,
                ledger_dir=tmp_path, trace=True,
            )
            async with engine:
                handles = [await engine.submit(spec) for spec in specs]
                return await asyncio.gather(*(h.future for h in handles))

        outcomes = run(serve())
        for outcome in outcomes:
            certify_run(outcome.trace_path, outcome.manifest_path)

    def test_session_ids_unique_and_handles_awaitable(self):
        specs = demo_specs("relay", 5, seed=1, max_rounds=30)

        async def serve():
            async with ServeEngine(max_open=8, workers=1) as engine:
                handles = [await engine.submit(spec) for spec in specs]
                ids = [h.session_id for h in handles]
                assert len(set(ids)) == len(ids)
                return [await h for h in handles]  # __await__ delegation

        outcomes = run(serve())
        assert all(isinstance(o, SessionOutcome) for o in outcomes)


class TestBackpressure:
    def test_try_submit_rejects_when_full(self):
        specs = demo_specs("relay", 3, seed=1, max_rounds=200)

        async def serve():
            async with ServeEngine(max_open=2, workers=1) as engine:
                engine.try_submit(specs[0])
                engine.try_submit(specs[1])
                with pytest.raises(SessionRejected, match="max_open"):
                    engine.try_submit(specs[2])
                assert engine.counters.get("serve.sessions_rejected") == 1
                assert engine.open_sessions == 2

        run(serve())

    def test_submit_parks_until_a_slot_frees(self):
        specs = demo_specs("relay", 3, seed=1, max_rounds=40)

        async def serve():
            async with ServeEngine(max_open=2, workers=1, slice_rounds=8) as eng:
                first = await eng.submit(specs[0])
                second = await eng.submit(specs[1])
                parked = asyncio.ensure_future(eng.submit(specs[2]))
                await asyncio.sleep(0)
                assert not parked.done()  # engine full: the submitter waits
                await asyncio.gather(first.future, second.future)
                third = await parked  # a settle freed a slot
                await third.future
                assert eng.counters.get("serve.sessions_parked") == 1
                assert eng.counters.get("serve.sessions_settled") == 3

        run(serve())

    def test_open_high_water_respects_bound(self):
        specs = demo_specs("relay", 12, seed=1, max_rounds=40)

        async def serve():
            async with ServeEngine(max_open=3, workers=2, slice_rounds=8) as eng:
                handles = [await eng.submit(spec) for spec in specs]
                await asyncio.gather(*(h.future for h in handles))
                return eng.counters.histogram("serve.open_sessions").maximum

        assert run(serve()) <= 3


class TestDrainAndShutdown:
    def test_drain_is_graceful_mid_enumeration(self):
        """Sessions admitted before the drain keep their enumeration
        state and settle with the exact batch verdicts."""
        specs = demo_specs("universal", 5, seed=8, max_rounds=120, drop=0.1)

        async def serve():
            engine = ServeEngine(max_open=8, workers=2, slice_rounds=4)
            engine.start()
            handles = [await engine.submit(spec) for spec in specs]
            # Let every session get partway through its enumeration.
            for _ in range(10):
                await asyncio.sleep(0)
            assert engine.open_sessions > 0  # genuinely mid-flight
            await engine.drain()
            assert engine.open_sessions == 0
            with pytest.raises(EngineClosed):
                engine.try_submit(specs[0])
            outcomes = [handle.future.result() for handle in handles]
            await engine.close()
            return outcomes

        outcomes = run(serve())
        for spec, outcome in zip(specs, outcomes):
            _, verdict = batch_reference(spec)
            assert outcome.outcome == verdict

    def test_drain_wakes_parked_submitters(self):
        specs = demo_specs("relay", 3, seed=1, max_rounds=5000)

        async def serve():
            engine = ServeEngine(max_open=2, workers=1, slice_rounds=2)
            engine.start()
            await engine.submit(specs[0])
            await engine.submit(specs[1])
            parked = asyncio.ensure_future(engine.submit(specs[2]))
            await asyncio.sleep(0)
            drain = asyncio.ensure_future(engine.drain())
            with pytest.raises(EngineClosed):
                await parked
            await drain
            await engine.close()

        run(serve())

    def test_abort_fails_open_sessions(self):
        specs = demo_specs("relay", 3, seed=1, max_rounds=100_000)

        async def serve():
            engine = ServeEngine(max_open=4, workers=1, slice_rounds=2)
            engine.start()
            handles = [await engine.submit(spec) for spec in specs]
            await asyncio.sleep(0)
            await engine.abort()
            for handle in handles:
                with pytest.raises(ServeError, match="aborted"):
                    await handle.future

        run(serve())

    def test_aexit_on_exception_aborts(self):
        spec = demo_specs("relay", 1, seed=1, max_rounds=100_000)[0]

        async def serve():
            handle = None
            with pytest.raises(RuntimeError, match="boom"):
                async with ServeEngine(max_open=2, workers=1) as engine:
                    handle = await engine.submit(spec)
                    raise RuntimeError("boom")
            with pytest.raises(ServeError):
                await handle.future

        run(serve())


class TestFailureIsolation:
    def test_one_broken_session_cannot_sink_the_rest(self):
        good = demo_specs("control", 4, seed=3, max_rounds=60)
        bad = good[0].__class__(
            user=ExplodingUser(after=10),
            server=good[0].server,
            goal=good[0].goal,
            seed=1,
            max_rounds=60,
        )

        async def serve():
            async with ServeEngine(max_open=8, workers=2, slice_rounds=4) as eng:
                bad_handle = eng.try_submit(bad)
                handles = [await eng.submit(spec) for spec in good]
                with pytest.raises(RuntimeError, match="tenant bug"):
                    await bad_handle.future
                outcomes = await asyncio.gather(*(h.future for h in handles))
                assert eng.counters.get("serve.sessions_failed") == 1
                assert eng.counters.get("serve.sessions_settled") == len(good)
                return outcomes

        outcomes = run(serve())
        for spec, outcome in zip(good, outcomes):
            execution, _ = batch_reference(spec)
            assert outcome.execution == execution


class TestTelemetry:
    def test_counters_add_up(self):
        specs = demo_specs("mixed", 9, seed=4, max_rounds=60, drop=0.1)

        async def serve():
            async with ServeEngine(max_open=4, workers=2, slice_rounds=8) as eng:
                handles = [await eng.submit(spec) for spec in specs]
                outcomes = await asyncio.gather(*(h.future for h in handles))
                return eng, outcomes

        engine, outcomes = run(serve())
        counters = engine.counters
        assert counters.get("serve.sessions_submitted") == len(specs)
        assert counters.get("serve.sessions_settled") == len(specs)
        assert counters.get("serve.sessions_achieved") == sum(
            1 for o in outcomes if o.outcome.achieved
        )
        assert counters.get("serve.rounds") == sum(
            o.execution.rounds_executed for o in outcomes
        )
        stats = engine.stats()
        assert stats["open_sessions_now"] == 0
        assert stats["serve.session_rounds"]["count"] == len(specs)

    def test_engine_summary_written_beside_ledger(self, tmp_path):
        specs = demo_specs("relay", 3, seed=1, max_rounds=30)

        async def serve():
            async with ServeEngine(
                max_open=4, workers=1, ledger_dir=tmp_path
            ) as engine:
                handles = [await engine.submit(spec) for spec in specs]
                await asyncio.gather(*(h.future for h in handles))

        run(serve())
        summary = json.loads((tmp_path / "engine.json").read_text())
        assert summary["serve.sessions_settled"] == 3
        manifests = [p for p in tmp_path.glob("s*.json")]
        assert len(manifests) == 3


class TestValidation:
    def test_constructor_rejects_nonsense(self):
        with pytest.raises(ServeError):
            ServeEngine(max_open=0)
        with pytest.raises(ServeError):
            ServeEngine(workers=0)
        with pytest.raises(ServeError):
            ServeEngine(slice_rounds=0)

    def test_double_start_rejected(self):
        async def serve():
            async with ServeEngine() as engine:
                with pytest.raises(ServeError, match="started"):
                    engine.start()

        run(serve())

    def test_scheduling_order_never_changes_results(self):
        """Two engines with different worker/slice shapes, shuffled
        submission orders — identical per-spec results."""
        specs = demo_specs("mixed", 9, seed=6, max_rounds=60, drop=0.1)
        shuffled = list(specs)
        random.Random(0).shuffle(shuffled)

        async def serve(ordering, workers, slice_rounds):
            async with ServeEngine(
                max_open=5, workers=workers, slice_rounds=slice_rounds
            ) as engine:
                handles = {
                    spec.label: await engine.submit(spec) for spec in ordering
                }
                return {
                    label: await handle.future
                    for label, handle in handles.items()
                }

        first = run(serve(specs, workers=1, slice_rounds=64))
        second = run(serve(shuffled, workers=3, slice_rounds=3))
        assert first.keys() == second.keys()
        for label, outcome in first.items():
            assert outcome.execution == second[label].execution, label
