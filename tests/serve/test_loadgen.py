"""Load generator: grid conversion, pacing, admission policy, the CLI.

The generator is measurement plumbing, so the tests pin its arithmetic
(percentiles, report totals), its determinism (grid order matches the
sweep's crossing; demo fleets are seed-stable), and both admission modes
against a deliberately tiny engine.  The CLI tests drive ``main()``
in-process and check the ``BENCH_serve.json`` contract the bench gate
consumes.
"""

from __future__ import annotations

import asyncio
import json
import math

import pytest

from repro.analysis.runner import sweep
from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.errors import ServeError
from repro.faults.channel import drop_channel
from repro.serve.engine import ServeEngine
from repro.serve.loadgen import (
    LoadReport,
    demo_specs,
    generate_load,
    grid_specs,
    percentile,
    run_load,
)
from repro.serve.__main__ import main as serve_main
from repro.servers.advisors import advisor_server_class
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import follower_user_class
from repro.worlds.control import control_goal, control_sensing, random_law

import random


def control_cast():
    codecs = codec_family(3)
    law = random_law(random.Random(5))
    user = CompactUniversalUser(
        ListEnumeration(follower_user_class(codecs), label="followers"),
        control_sensing(),
    )
    return user, advisor_server_class(law, codecs), control_goal(law)


class TestGridSpecs:
    def test_crossing_matches_sweep_cell_order(self):
        user, servers, goal = control_cast()
        channels = (None, drop_channel(0.1))
        specs = grid_specs(
            user, servers, goal, seeds=(0, 1), max_rounds=120,
            channels=channels,
        )
        assert len(specs) == len(servers) * len(channels) * 2
        result = sweep(
            user, servers, goal, seeds=(0, 1), max_rounds=120,
            faults=channels,
        )
        # server-major, then channel: spec block i belongs to cell i.
        for cell_index, cell in enumerate(result.cells):
            block = specs[cell_index * 2 : cell_index * 2 + 2]
            assert all(s.server.name == cell.server_name for s in block)
            for spec, run_metrics in zip(block, cell.runs):
                execution = run_execution(
                    spec.user, spec.server, spec.goal.world,
                    max_rounds=spec.max_rounds, seed=spec.seed,
                    channel=spec.channel,
                )
                outcome = spec.goal.evaluate(execution)
                assert outcome.achieved == run_metrics.achieved, spec.label

    def test_labels_identify_the_cell(self):
        user, servers, goal = control_cast()
        specs = grid_specs(user, servers, goal, seeds=(7,), max_rounds=10)
        assert specs[0].label == f"{servers[0].name}|-|7"


class TestPercentile:
    def test_nearest_rank(self):
        sample = [10.0, 20.0, 30.0, 40.0]
        assert percentile(sample, 50.0) == 20.0
        assert percentile(sample, 75.0) == 30.0
        assert percentile(sample, 100.0) == 40.0
        assert percentile(sample, 0.0) == 10.0

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50.0))

    def test_range_checked(self):
        with pytest.raises(ServeError):
            percentile([1.0], 101.0)


class TestGenerateLoad:
    def test_burst_park_settles_everything(self):
        specs = demo_specs("mixed", 12, seed=3, max_rounds=60, drop=0.1)

        async def go():
            async with ServeEngine(max_open=5, workers=2, slice_rounds=8) as eng:
                return await generate_load(eng, specs)

        report = go_result = asyncio.run(go())
        assert report.sessions == report.settled == 12
        assert report.failed == report.rejected == 0
        assert report.open_high_water <= 5
        assert report.rounds > 0
        assert report.sessions_per_s > 0
        assert go_result.latency_p99_ms >= go_result.latency_p50_ms

    def test_burst_reject_sheds_the_overflow(self):
        """Burst arrivals with reject admission never yield to the
        workers, so exactly max_open sessions get in."""
        specs = demo_specs("relay", 10, seed=1, max_rounds=30)

        async def go():
            async with ServeEngine(max_open=4, workers=1) as engine:
                return await generate_load(engine, specs, admission="reject")

        report = asyncio.run(go())
        assert report.rejected == 6
        assert report.settled == 4
        assert report.sessions == 10

    def test_rate_paces_arrivals(self):
        specs = demo_specs("relay", 5, seed=1, max_rounds=10)

        async def go():
            async with ServeEngine(max_open=8, workers=1) as engine:
                return await generate_load(engine, specs, rate=100.0)

        report = asyncio.run(go())
        # 5 arrivals at 100/s: the last is due at t=40ms.
        assert report.wall_s >= 0.04

    def test_unknown_admission_mode(self):
        async def go():
            async with ServeEngine() as engine:
                await generate_load(engine, [], admission="drop-table")

        with pytest.raises(ServeError, match="admission"):
            asyncio.run(go())


class TestRunLoadAndReport:
    def test_run_load_round_trip(self, tmp_path):
        report = run_load(
            demo_specs("control", 8, seed=2, max_rounds=60),
            workers=2, max_open=6, slice_rounds=8,
            ledger_dir=str(tmp_path), trace=True, certify=True,
        )
        assert isinstance(report, LoadReport)
        assert report.settled == 8
        assert len(list(tmp_path.glob("*.jsonl"))) == 8
        payload = report.to_payload()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["sessions_per_s"] == round(report.sessions_per_s, 3)

    def test_payload_handles_empty_latencies(self):
        report = LoadReport(
            sessions=0, settled=0, achieved=0, failed=0, rejected=0,
            rounds=0, wall_s=0.0, sessions_per_s=0.0, rounds_per_s=0.0,
            open_high_water=0, latency_p50_ms=math.nan,
            latency_p95_ms=math.nan, latency_p99_ms=math.nan,
        )
        payload = report.to_payload()
        assert payload["latency_p50_ms"] is None


class TestDemoSpecs:
    def test_families_and_determinism(self):
        for family in ("relay", "control", "universal", "mixed"):
            first = demo_specs(family, 6, seed=9, max_rounds=20)
            again = demo_specs(family, 6, seed=9, max_rounds=20)
            assert [s.label for s in first] == [s.label for s in again]
            assert [s.seed for s in first] == [s.seed for s in again]
            assert len(first) == 6

    def test_mixed_interleaves_families(self):
        labels = [s.label.split("|")[0] for s in demo_specs("mixed", 6, seed=0)]
        assert labels == ["relay", "control", "universal"] * 2

    def test_drop_attaches_a_channel(self):
        specs = demo_specs("relay", 2, seed=0, drop=0.25)
        assert all(s.channel is not None for s in specs)
        assert all(s.channel.name.startswith("drop") for s in specs)
        clean = demo_specs("relay", 2, seed=0)
        assert all(s.channel is None for s in clean)

    def test_unknown_family_rejected(self):
        with pytest.raises(ServeError, match="family"):
            demo_specs("quantum", 1)
        with pytest.raises(ServeError, match="non-negative"):
            demo_specs("relay", -1)


class TestCli:
    def test_writes_bench_baseline(self, tmp_path, capsys):
        out = tmp_path / "BENCH_serve.json"
        code = serve_main(
            [
                "--sessions", "30", "--family", "mixed", "--horizon", "40",
                "--drop", "0.1", "--max-open", "50", "--out", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["sessions"] == 30
        assert payload["settled"] == 30
        assert payload["sessions_per_s"] > 0
        assert "sessions/s" in capsys.readouterr().out

    def test_json_format_and_merge(self, tmp_path, capsys):
        out = tmp_path / "BENCH_serve.json"
        out.write_text(json.dumps({"custom_note": "kept"}))
        code = serve_main(
            [
                "--sessions", "6", "--family", "relay", "--horizon", "20",
                "--out", str(out), "--format", "json",
            ]
        )
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["sessions"] == 6
        merged = json.loads(out.read_text())
        assert merged["custom_note"] == "kept"  # baselines compose

    def test_ledger_flags_validated(self, tmp_path):
        with pytest.raises(SystemExit):
            serve_main(["--sessions", "1", "--trace"])

    def test_cli_ledger_certifies(self, tmp_path):
        ledger = tmp_path / "runs"
        code = serve_main(
            [
                "--sessions", "4", "--family", "control", "--horizon", "30",
                "--ledger", str(ledger), "--trace", "--certify",
            ]
        )
        assert code == 0
        assert len(list(ledger.glob("*.jsonl"))) == 4
        assert (ledger / "engine.json").exists()
