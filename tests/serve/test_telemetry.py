"""The live telemetry plane, end to end through a real ServeEngine.

Integration-level companions to the unit tests in
``tests/obs/test_live.py`` and ``tests/obs/test_flight.py``: here every
assertion goes through an engine actually serving sessions.  The
headline contracts — the metrics stream's cumulative counters equal the
final ``engine.json`` exactly, a mid-run admin scrape sees live gauges
and Prometheus text that agrees with the engine's counters, a session
that dies leaves a fragment-certifiable flight dump, and the engine's
runtime metric names never drift from the static ``SERVE_*`` registry.

All tests drive the engine through ``asyncio.run`` (stdlib only — no
pytest-asyncio in the image).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import ServeError
from repro.obs.certify import certify_trace
from repro.obs.live import (
    METRICS_SCHEMA,
    SERVE_COUNTERS,
    SERVE_GAUGES,
    SERVE_HISTOGRAMS,
    cumulative_counters,
    fetch_admin,
    final_histograms,
    parse_prometheus,
    read_metrics,
)
from repro.serve.engine import ServeEngine, SessionRejected
from repro.serve.loadgen import demo_specs

from tests.serve.test_engine import ExplodingUser


def run(coroutine):
    return asyncio.run(coroutine)


def exploding_spec(template, *, after: int = 10, seed: int = 1):
    """A spec whose user strategy raises mid-serve — a broken tenant."""
    return template.__class__(
        user=ExplodingUser(after=after),
        server=template.server,
        goal=template.goal,
        seed=seed,
        max_rounds=template.max_rounds,
        label="exploding",
    )


class TestMetricsStreamAgainstEngineJson:
    def test_stream_totals_exactly_equal_final_summary(self, tmp_path):
        specs = demo_specs("mixed", 14, seed=7, max_rounds=80, drop=0.1)
        metrics = tmp_path / "metrics.jsonl"

        async def serve():
            async with ServeEngine(
                max_open=8,
                workers=2,
                slice_rounds=5,
                ledger_dir=tmp_path,
                metrics_path=metrics,
                metrics_interval_s=0.02,
            ) as eng:
                handles = [await eng.submit(spec) for spec in specs]
                await asyncio.gather(*(h.future for h in handles))

        run(serve())

        header, samples = read_metrics(metrics)
        assert header["metrics_schema"] == METRICS_SCHEMA
        summary = json.loads((tmp_path / "engine.json").read_text())

        totals = cumulative_counters(samples)
        # Names are created on first touch, so untouched counters are
        # absent from both sides — absence and zero must agree too.
        for name in SERVE_COUNTERS:
            assert totals.get(name, 0) == summary.get(name, 0), name

        # The stream's final cumulative histograms match the summary's.
        streamed = final_histograms(samples)
        for name in SERVE_HISTOGRAMS:
            assert streamed[name]["count"] == summary[name]["count"], name
            assert streamed[name]["total"] == pytest.approx(
                summary[name]["total"]
            ), name

        # write_metrics stamped provenance onto the summary.
        assert summary["metrics_schema"] == METRICS_SCHEMA
        assert "git_sha" in summary

    def test_summary_composes_instead_of_clobbering(self, tmp_path):
        (tmp_path / "engine.json").write_text(
            json.dumps({"parked_by": "ci", "serve.rounds": -1}) + "\n"
        )
        specs = demo_specs("control", 3, seed=2, max_rounds=40)

        async def serve():
            async with ServeEngine(
                max_open=4, workers=1, slice_rounds=8, ledger_dir=tmp_path
            ) as eng:
                handles = [await eng.submit(spec) for spec in specs]
                await asyncio.gather(*(h.future for h in handles))

        run(serve())
        summary = json.loads((tmp_path / "engine.json").read_text())
        assert summary["parked_by"] == "ci"  # foreign key survives
        assert summary["serve.rounds"] > 0  # our key is refreshed


class TestAdminPlaneMidRun:
    def test_status_sessions_and_prometheus_while_serving(self, tmp_path):
        specs = demo_specs("mixed", 10, seed=5, max_rounds=120, drop=0.1)

        async def serve():
            async with ServeEngine(
                max_open=16,
                workers=1,
                slice_rounds=2,
                admin="127.0.0.1:0",
            ) as eng:
                address = await eng.admin_address()
                handles = [await eng.submit(spec) for spec in specs]

                status = json.loads(await fetch_admin(address, "/status"))
                sessions = json.loads(await fetch_admin(address, "/sessions"))
                prometheus = await fetch_admin(address, "/metrics")
                snapshot = eng.counters.snapshot()

                await asyncio.gather(*(h.future for h in handles))
                return status, sessions, prometheus, snapshot

        status, sessions, prometheus, snapshot = run(serve())

        # /status: live gauges mid-run — everything submitted, none settled.
        assert set(status["gauges"]) == set(SERVE_GAUGES)
        assert status["gauges"]["open_sessions"] == len(sessions)
        assert status["gauges"]["draining"] == 0.0
        assert status["uptime_s"] >= 0.0
        assert status["counters"]["serve.sessions_submitted"] == 10

        # /sessions: one entry per open session, with live progress fields.
        assert {s["label"] for s in sessions} == {s.label for s in demo_specs(
            "mixed", 10, seed=5, max_rounds=120, drop=0.1
        )}
        for entry in sessions:
            assert entry["live"] is True
            assert entry["rounds_completed"] >= 0

        # /metrics: Prometheus text that agrees with the engine's counters.
        parsed = parse_prometheus(prometheus)
        assert parsed["repro_serve_sessions_submitted_total"] == float(
            snapshot["serve.sessions_submitted"]
        )
        # Rounds advance between the scrape and the snapshot (workers run
        # during every await), so the scraped figure is a monotone lower
        # bound on the later snapshot rather than an exact match.
        assert 0.0 < parsed["repro_serve_rounds_total"] <= float(
            snapshot["serve.rounds"]
        )
        assert parsed["repro_open_sessions"] == 10.0  # live gauge, mid-run
        assert parsed["repro_serve_open_sessions_count"] >= 10.0

    def test_midrun_gauge_in_scraped_text_is_live(self, tmp_path):
        specs = demo_specs("control", 6, seed=9, max_rounds=120)

        async def serve():
            async with ServeEngine(
                max_open=8, workers=1, slice_rounds=2, admin="127.0.0.1:0"
            ) as eng:
                address = await eng.admin_address()
                handles = [await eng.submit(spec) for spec in specs]
                parsed = parse_prometheus(await fetch_admin(address, "/metrics"))
                await asyncio.gather(*(h.future for h in handles))
                return parsed

        parsed = run(serve())
        assert parsed["repro_open_sessions"] == 6.0
        assert parsed["repro_draining"] == 0.0

    def test_admin_address_without_admin_raises(self):
        async def serve():
            async with ServeEngine(max_open=2, workers=1) as eng:
                with pytest.raises(ServeError, match="no admin endpoint"):
                    await eng.admin_address()

        run(serve())


class TestFlightDumps:
    def test_failed_session_leaves_certifiable_fragment(self, tmp_path):
        good = demo_specs("control", 3, seed=3, max_rounds=60)
        bad = exploding_spec(good[0], after=10)

        async def serve():
            async with ServeEngine(
                max_open=8,
                workers=2,
                slice_rounds=4,
                ledger_dir=tmp_path,
                flight=32,
            ) as eng:
                bad_handle = eng.try_submit(bad)
                handles = [await eng.submit(spec) for spec in good]
                with pytest.raises(RuntimeError, match="tenant bug"):
                    await bad_handle.future
                await asyncio.gather(*(h.future for h in handles))
                return bad_handle.session_id

        session_id = run(serve())

        dump = tmp_path / "flight" / f"{session_id}.jsonl"
        assert dump.exists()
        header = json.loads(dump.read_text().splitlines()[0])
        assert header["flight"] is True
        assert header["reason"] == "failure"
        assert header["session_id"] == session_id

        report = certify_trace(dump, fragment=True)
        assert report.certifiable, report.issues

        # Healthy sessions dump nothing: the flight ring is failure-only.
        dumped = {p.stem for p in (tmp_path / "flight").glob("*.jsonl")}
        assert dumped == {session_id}

    def test_abort_dumps_every_open_session_with_reason_abort(self, tmp_path):
        specs = demo_specs("control", 3, seed=4, max_rounds=400)

        async def serve():
            eng = ServeEngine(
                max_open=8,
                workers=1,
                slice_rounds=1,
                ledger_dir=tmp_path,
                flight=16,
            )
            eng.start()
            handles = [await eng.submit(spec) for spec in specs]
            await asyncio.sleep(0)  # let a slice or two run
            await eng.abort()
            return [h.session_id for h in handles]

        session_ids = run(serve())

        dumped = {p.stem for p in (tmp_path / "flight").glob("*.jsonl")}
        assert dumped == set(session_ids)
        for dump in (tmp_path / "flight").glob("*.jsonl"):
            header = json.loads(dump.read_text().splitlines()[0])
            assert header["reason"] == "abort"
            report = certify_trace(dump, fragment=True)
            assert report.certifiable, (dump.name, report.issues)


class TestRegistrySelfCheck:
    def test_runtime_metric_names_match_static_registry(self, tmp_path):
        """The engine's runtime names and SERVE_* never drift apart.

        One run exercises every admission flow — submit, park, reject,
        settle, achieve, fail — then both inclusions are asserted: every
        runtime name is registered, every registered name was touched.
        """
        specs = demo_specs("mixed", 6, seed=6, max_rounds=60, drop=0.1)
        bad = exploding_spec(specs[0], after=5, seed=11)

        async def serve():
            async with ServeEngine(max_open=2, workers=1, slice_rounds=4) as eng:
                overflow = demo_specs("control", 3, seed=8, max_rounds=40)
                first = [eng.try_submit(spec) for spec in overflow[:2]]
                with pytest.raises(SessionRejected):  # full -> rejected
                    eng.try_submit(overflow[2])
                parked = asyncio.ensure_future(eng.submit(bad))  # full -> parked
                await asyncio.gather(*(h.future for h in first))
                bad_handle = await parked
                with pytest.raises(RuntimeError, match="tenant bug"):
                    await bad_handle.future
                handles = [await eng.submit(spec) for spec in specs]
                await asyncio.gather(
                    *(h.future for h in handles), return_exceptions=True
                )
                return eng.counters.snapshot()

        snapshot = run(serve())

        registered = set(SERVE_COUNTERS) | set(SERVE_HISTOGRAMS)
        assert set(snapshot) <= registered, set(snapshot) - registered
        assert set(snapshot) == registered, registered - set(snapshot)
        for name in SERVE_COUNTERS:
            assert isinstance(snapshot[name], int), name
            assert snapshot[name] > 0, name
        for name in SERVE_HISTOGRAMS:
            assert snapshot[name]["count"] > 0, name
