"""The repaired process backend and the batched backends, contract-tested.

Complements ``tests/analysis/test_parallel.py`` (which pins backend parity
for the legacy API): here we pin the *mechanisms* the perf work added —
the persistent worker pool, one-time cast pickling with worker-side
caching, adaptive chunk sizing — plus the :class:`BatchExecutor` /
:class:`BatchProcessExecutor` backends, the ``batch=`` sweep argument,
ledger backend stamping, and ``verify_robustness(batch=N)`` parity.
"""

from __future__ import annotations

import pickle

import pytest

import repro.analysis.parallel as parallel_module
from repro.analysis.batch import BatchExecutor
from repro.analysis.parallel import (
    BatchProcessExecutor,
    ProcessExecutor,
    SerialExecutor,
    build_sweep_cast,
    run_cast_chunk,
)
from repro.analysis.runner import CellTask, sweep
from repro.core.batch import HAVE_NUMPY
from repro.faults.channel import drop_channel
from repro.faults.verify import verify_robustness
from repro.machines.tabular import (
    coded_server_class,
    relay_decoder_class,
    relay_goal,
)
from repro.obs.ledger import read_manifest
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import follower_user_class
from repro.comm.codecs import codec_family
from repro.worlds.control import control_goal, control_sensing

SYMBOLS = ("a", "b", "c", "d")
RELAY_GOAL = relay_goal(SYMBOLS)
RELAY_SERVERS = coded_server_class(SYMBOLS)
LAW = {"red": "blue", "blue": "red"}
CONTROL_GOAL = control_goal(LAW)


def relay_sweep(**kwargs):
    return sweep(
        relay_decoder_class(SYMBOLS)[0], RELAY_SERVERS, RELAY_GOAL,
        seeds=(0, 1), max_rounds=80, **kwargs,
    )


def make_universal():
    return CompactUniversalUser(
        ListEnumeration(follower_user_class(codec_family(2))),
        control_sensing(),
    )


def universal_sweep(**kwargs):
    from repro.servers.advisors import advisor_server_class

    return sweep(
        make_universal(), advisor_server_class(LAW, codec_family(2)),
        CONTROL_GOAL, seeds=(0, 1), max_rounds=200, **kwargs,
    )


class TestBatchExecutorParity:
    def test_relay_sweep_matches_serial(self):
        serial = relay_sweep(telemetry=True)
        for width in (1, 3, 64):
            batched = relay_sweep(
                telemetry=True, executor=BatchExecutor(width=width)
            )
            assert batched == serial

    def test_scalar_lockstep_tier_with_universal_user(self):
        """Non-compilable casts fall to scalar lockstep, telemetry intact."""
        serial = universal_sweep(telemetry=True)
        batched = universal_sweep(
            telemetry=True, executor=BatchExecutor(width=4)
        )
        assert batched == serial

    def test_batch_kwarg_is_executor_shorthand(self):
        assert relay_sweep(batch=8) == relay_sweep(
            executor=BatchExecutor(width=8)
        )

    def test_batch_with_executor_conflicts(self):
        with pytest.raises(ValueError):
            relay_sweep(batch=8, executor=SerialExecutor())

    def test_width_validation(self):
        with pytest.raises(ValueError):
            BatchExecutor(width=0)
        with pytest.raises(ValueError):
            BatchProcessExecutor(width=0)

    def test_fault_cells_stay_scalar_but_equal(self):
        """A faults axis de-vectorizes those cells, never their results."""
        grid = [None, drop_channel(0.1)]
        serial = relay_sweep(faults=grid)
        batched = relay_sweep(faults=grid, batch=16)
        assert batched == serial


class TestLedgerStamping:
    def test_serial_backend_stamp(self, tmp_path):
        relay_sweep(ledger_dir=tmp_path)
        manifest = read_manifest(tmp_path / "sweep.json")
        assert manifest.backend == "serial"
        assert manifest.batch_width is None

    def test_batch_backend_stamp(self, tmp_path):
        relay_sweep(ledger_dir=tmp_path, batch=8, certify=True)
        manifest = read_manifest(tmp_path / "sweep.json")
        assert manifest.backend == "batch"
        assert manifest.batch_width == 8


class TestPersistentPool:
    def test_pool_reused_across_sweeps(self):
        executor = ProcessExecutor(max_workers=2)
        try:
            first = relay_sweep(executor=executor)
            pool = executor._pool
            assert pool is not None
            second = relay_sweep(executor=executor)
            assert executor._pool is pool
            assert first == second == relay_sweep()
        finally:
            executor.close()
        assert executor._pool is None

    def test_close_is_idempotent(self):
        executor = ProcessExecutor(max_workers=1)
        executor.close()
        executor.close()

    def test_batch_process_matches_serial(self):
        executor = BatchProcessExecutor(max_workers=2, width=8)
        try:
            assert relay_sweep(executor=executor) == relay_sweep()
        finally:
            executor.close()


class TestPoolShutdown:
    """The persistent pool must die cleanly: context manager, atexit
    hygiene, and coexistence with the asyncio session service."""

    def test_context_manager_closes_pool(self):
        with ProcessExecutor(max_workers=1) as executor:
            first = relay_sweep(executor=executor)
            assert executor._pool is not None
        assert executor._pool is None
        # Closed is not dead: the next use recreates the pool.
        with executor:
            assert relay_sweep(executor=executor) == first
        assert executor._pool is None

    def test_atexit_hook_tracks_the_live_pool(self, monkeypatch):
        """One registration per open pool, removed on close — repeated
        close/recreate cycles never stack hooks in the exit table."""
        registered, unregistered = [], []
        monkeypatch.setattr(
            parallel_module.atexit, "register", lambda fn: registered.append(fn)
        )
        monkeypatch.setattr(
            parallel_module.atexit,
            "unregister",
            lambda fn: unregistered.append(fn),
        )
        executor = ProcessExecutor(max_workers=1)
        try:
            executor._ensure_pool()
            executor._ensure_pool()  # reuse: no second registration
            assert len(registered) == 1
            executor.close()
            assert unregistered == registered
            executor.close()  # idempotent: nothing new to unregister
            assert len(unregistered) == 1
            executor._ensure_pool()  # recreation re-registers exactly once
            assert len(registered) == 2
        finally:
            executor.close()
        assert len(unregistered) == 2

    def test_serve_and_pool_coexist_without_leaked_workers(self):
        """A ServeEngine load and a process sweep in one interpreter:
        closing the executor reaps its workers (and their semaphores) even
        while the asyncio service keeps running in the same process."""
        import multiprocessing

        from repro.serve.loadgen import demo_specs, run_load

        # Other tests' pools may still be open (they rely on the atexit
        # hook); only *this* executor's workers must be gone afterwards.
        before = {child.pid for child in multiprocessing.active_children()}
        with ProcessExecutor(max_workers=2) as executor:
            swept = relay_sweep(executor=executor)
            report = run_load(
                demo_specs("relay", 4, seed=1, max_rounds=30), workers=1
            )
            assert report.settled == 4
            assert relay_sweep(executor=executor) == swept
        assert executor._pool is None
        lingering = {
            child.pid for child in multiprocessing.active_children()
        } - before
        assert lingering == set()
        # The service still works after the pool is gone.
        report = run_load(
            demo_specs("relay", 2, seed=2, max_rounds=30), workers=1
        )
        assert report.settled == 2


class TestAdaptiveChunking:
    def test_explicit_chunk_size_passes_through(self):
        executor = ProcessExecutor(max_workers=2, chunk_size=5)
        assert executor._plan_chunk_size(0.001, 100) == 5

    def test_auto_targets_chunk_seconds(self):
        executor = ProcessExecutor(max_workers=2)
        # 10ms cells → ~TARGET_CHUNK_SECONDS/0.01 cells per chunk.
        expected = round(parallel_module.TARGET_CHUNK_SECONDS / 0.01)
        assert executor._plan_chunk_size(0.01, 1000) == expected

    def test_auto_caps_for_load_balance(self):
        executor = ProcessExecutor(max_workers=4)
        # Slow cells on a small grid: never starve workers.
        assert executor._plan_chunk_size(10.0, 8) == 1
        # Fast cells: cap at ceil(n / workers) so every worker gets work.
        assert executor._plan_chunk_size(1e-6, 8) == 2

    def test_auto_without_probe_falls_back_to_even_split(self):
        executor = ProcessExecutor(max_workers=4)
        assert executor._plan_chunk_size(None, 10) == 3

    def test_batch_process_uses_even_subgrids(self):
        executor = BatchProcessExecutor(max_workers=4, width=128)
        assert executor._plan_chunk_size(None, 10) == 3
        assert executor._plan_chunk_size(0.0001, 10) == 3


class TestSweepCastSharing:
    def tasks(self):
        return [
            CellTask(
                index=i,
                user=relay_decoder_class(SYMBOLS)[0],
                server=server,
                goal=RELAY_GOAL,
                seeds=(0,),
                max_rounds=20,
                telemetry=False,
            )
            for i, server in enumerate(RELAY_SERVERS)
        ]

    def test_cast_interns_shared_objects(self):
        tasks = self.tasks()
        shared_user = tasks[0].user
        for task in tasks:
            object.__setattr__(task, "user", shared_user)
        cast, refs = build_sweep_cast(tasks)
        assert len(cast.users) == 1
        assert len(cast.goals) == 1
        assert len(cast.servers) == len(tasks)
        assert [ref.index for ref in refs] == [t.index for t in tasks]

    def test_worker_unpickles_cast_once_per_digest(self):
        tasks = self.tasks()
        cast, refs = build_sweep_cast(tasks)
        blob = pickle.dumps(cast)
        digest = "test-digest-1"
        parallel_module._WORKER_CASTS.clear()
        first = run_cast_chunk((digest, blob, tuple(refs[:2]), None))
        assert digest in parallel_module._WORKER_CASTS
        cached = parallel_module._WORKER_CASTS[digest]
        second = run_cast_chunk((digest, blob, tuple(refs[:2]), None))
        assert parallel_module._WORKER_CASTS[digest] is cached
        assert [cell for _, cell in first] == [cell for _, cell in second]
        parallel_module._WORKER_CASTS.clear()

    def test_worker_cache_bounded(self):
        parallel_module._WORKER_CASTS.clear()
        tasks = self.tasks()
        cast, refs = build_sweep_cast(tasks)
        blob = pickle.dumps(cast)
        for i in range(parallel_module._WORKER_CAST_LIMIT):
            parallel_module._WORKER_CASTS[f"filler-{i}"] = cast
        run_cast_chunk(("fresh", blob, tuple(refs[:1]), None))
        assert len(parallel_module._WORKER_CASTS) == 1
        assert "fresh" in parallel_module._WORKER_CASTS
        parallel_module._WORKER_CASTS.clear()

    @pytest.mark.skipif(not HAVE_NUMPY, reason="batched chunk needs numpy")
    def test_cast_chunk_batched_equals_plain(self):
        tasks = self.tasks()
        cast, refs = build_sweep_cast(tasks)
        blob = pickle.dumps(cast)
        parallel_module._WORKER_CASTS.clear()
        plain = run_cast_chunk(("d", blob, tuple(refs), None))
        batched = run_cast_chunk(("d", blob, tuple(refs), 8))
        assert batched == plain
        parallel_module._WORKER_CASTS.clear()


class TestVerifyRobustnessBatch:
    GRID = (None, drop_channel(0.05))

    def advisors(self):
        from repro.servers.advisors import advisor_server_class

        return advisor_server_class(LAW, codec_family(2))

    def test_batched_report_equals_serial(self):
        serial = verify_robustness(
            make_universal(), self.advisors(), CONTROL_GOAL, control_sensing(),
            grid=self.GRID, seeds=(0, 1), max_rounds=150,
        )
        batched = verify_robustness(
            make_universal(), self.advisors(), CONTROL_GOAL, control_sensing(),
            grid=self.GRID, seeds=(0, 1), max_rounds=150, batch=3,
        )
        assert batched == serial

    def test_batched_certify_still_works(self):
        report = verify_robustness(
            make_universal(), self.advisors(), CONTROL_GOAL, control_sensing(),
            grid=(None,), seeds=(0,), max_rounds=150, batch=2, certify=True,
        )
        assert report.safe

    def test_batch_validation(self):
        with pytest.raises(ValueError):
            verify_robustness(
                make_universal(), [], CONTROL_GOAL, control_sensing(),
                grid=(None,), batch=0,
            )
