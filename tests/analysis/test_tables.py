"""Tests for ASCII table/series rendering."""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_series, format_sparkline, format_table


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-+-" in lines[1]
        assert lines[2].startswith("a")

    def test_cell_rendering(self):
        text = format_table(["x"], [[None], [True], [False], [1.234]])
        assert "-" in text and "yes" in text and "no" in text and "1.23" in text

    def test_title(self):
        assert format_table(["a"], [], title="T").startswith("== T ==")

    def test_row_width_validated(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestFormatSeries:
    def test_series_is_two_column_table(self):
        text = format_series("curve", [(1, 2), (3, 4)], x_label="k", y_label="rounds")
        assert "k" in text and "rounds" in text and "curve" in text


class TestSparkline:
    def test_empty(self):
        assert format_sparkline([]) == ""

    def test_flat_series(self):
        assert format_sparkline([5, 5, 5]) == "▁▁▁"

    def test_peak_maps_to_top_block(self):
        line = format_sparkline([0, 10])
        assert line[-1] == "█"

    def test_downsamples_long_series(self):
        line = format_sparkline(list(range(1000)), width=50)
        assert len(line) == 50
