"""Tests for the fast reproduction report."""

from __future__ import annotations

from repro.analysis import report


class TestChecks:
    def test_every_check_passes(self):
        for check in report.ALL_CHECKS:
            claim, ok, detail = check()
            assert ok, (claim, detail)

    def test_check_shapes(self):
        claim, ok, detail = report.check_learning_gap()
        assert isinstance(claim, str) and claim
        assert isinstance(ok, bool)
        assert isinstance(detail, str)


class TestMain:
    def test_main_exit_code_and_output(self, capsys):
        code = report.main([])
        captured = capsys.readouterr()
        assert code == 0
        assert "all claims reproduced" in captured.out
        assert captured.out.count("[ok ]") == len(report.ALL_CHECKS)

    def test_main_reports_failures(self, monkeypatch, capsys):
        monkeypatch.setattr(
            report, "ALL_CHECKS", [lambda: ("doomed claim", False, "by design")]
        )
        code = report.main([])
        captured = capsys.readouterr()
        assert code == 1
        assert "FAIL" in captured.out
