"""Tests for the experiment sweep runner."""

from __future__ import annotations

from repro.analysis.runner import sweep, sweep_goals
from repro.comm.codecs import IdentityCodec, codec_family
from repro.servers.advisors import AdvisorServer, advisor_server_class
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import AdvisorFollowingUser, follower_user_class
from repro.worlds.control import control_goal, control_sensing

LAW = {"red": "blue", "blue": "red"}
GOAL = control_goal(LAW)
CODECS = codec_family(2)


def universal():
    return CompactUniversalUser(
        ListEnumeration(follower_user_class(CODECS)), control_sensing()
    )


class TestSweep:
    def test_universal_success_over_class(self):
        servers = advisor_server_class(LAW, CODECS)
        result = sweep(universal(), servers, GOAL, seeds=(0, 1), max_rounds=600)
        assert result.universal_success
        assert len(result.cells) == 2
        assert not result.failures()

    def test_rigid_user_fails_somewhere(self):
        servers = advisor_server_class(LAW, CODECS)
        result = sweep(
            AdvisorFollowingUser(IdentityCodec()), servers, GOAL,
            seeds=(0,), max_rounds=400,
        )
        assert not result.universal_success
        assert len(result.failures()) == 1  # Fails only the mismatched codec.

    def test_cell_statistics(self):
        result = sweep(
            AdvisorFollowingUser(IdentityCodec()), [AdvisorServer(LAW)], GOAL,
            seeds=(0, 1, 2), max_rounds=300,
        )
        cell = result.cells[0]
        assert cell.success_rate == 1.0
        assert cell.mean_rounds() == 300.0

    def test_mean_rounds_nan_when_never_achieved(self):
        import math

        from repro.core.strategy import SilentServer

        result = sweep(
            AdvisorFollowingUser(IdentityCodec()), [SilentServer()], GOAL,
            seeds=(0,), max_rounds=100,
        )
        assert math.isnan(result.cells[0].mean_rounds())


class TestSweepGoals:
    def test_quantifies_over_worlds(self):
        laws = [{"red": "blue", "blue": "red"}, {"red": "red", "blue": "blue"}]
        pairs = [(control_goal(law), AdvisorServer(law)) for law in laws]
        cells = sweep_goals(universal, pairs, seeds=(0,), max_rounds=600)
        assert len(cells) == 2
        assert all(cell.all_achieved for cell in cells)
