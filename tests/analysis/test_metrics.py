"""Tests for run metrics and summaries."""

from __future__ import annotations

import math

from repro.analysis.metrics import (
    RunMetrics,
    Summary,
    collect_metrics,
    rounds_summary,
    success_rate,
)
from repro.comm.codecs import IdentityCodec
from repro.core.execution import run_execution
from repro.servers.advisors import AdvisorServer
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import AdvisorFollowingUser, follower_user_class
from repro.worlds.control import control_goal, control_sensing

LAW = {"red": "blue", "blue": "red"}
GOAL = control_goal(LAW)


class TestCollectMetrics:
    def test_plain_user_has_no_universal_stats(self):
        result = run_execution(
            AdvisorFollowingUser(IdentityCodec()), AdvisorServer(LAW),
            GOAL.world, max_rounds=200, seed=0,
        )
        metrics = collect_metrics(result, GOAL)
        assert metrics.achieved
        assert metrics.switches is None and metrics.trials is None
        assert metrics.bad_prefixes is not None

    def test_compact_universal_stats_extracted(self):
        from repro.comm.codecs import codec_family

        user = CompactUniversalUser(
            ListEnumeration(follower_user_class(codec_family(2))),
            control_sensing(),
        )
        result = run_execution(
            user, AdvisorServer(LAW), GOAL.world, max_rounds=300, seed=0
        )
        metrics = collect_metrics(result, GOAL)
        assert metrics.switches is not None
        assert metrics.final_index == 0  # Identity codec is index 0.


class TestSummary:
    def test_order_statistics(self):
        s = Summary.of([4.0, 1.0, 3.0, 2.0])
        assert s.count == 4 and s.mean == 2.5 and s.median == 2.5
        assert s.minimum == 1.0 and s.maximum == 4.0

    def test_odd_median(self):
        assert Summary.of([3, 1, 2]).median == 2.0

    def test_empty_is_nan(self):
        s = Summary.of([])
        assert s.count == 0 and math.isnan(s.mean)

    def test_format(self):
        text = Summary.of([1.0, 2.0]).format()
        assert "n=2" in text and "mean=1.5" in text


class TestEmptyBatchContract:
    """The documented asymmetry: rate → 0.0, statistics → NaN.

    ``success_rate([])`` answers a yes/no-per-run question, so zero runs
    means zero demonstrated successes; ``Summary.of([])`` answers "what
    were the values?", which has no answer — NaN propagates instead of
    silently reading as a real observation.
    """

    def test_success_rate_of_empty_batch_is_zero(self):
        assert success_rate([]) == 0.0

    def test_empty_summary_is_all_nan_with_zero_count(self):
        s = Summary.of([])
        assert s.count == 0
        assert s.is_empty
        for stat in (s.mean, s.median, s.minimum, s.maximum):
            assert math.isnan(stat)

    def test_nonempty_summary_is_not_empty(self):
        assert not Summary.of([1.0]).is_empty

    def test_empty_rounds_summary_inherits_the_nan_contract(self):
        """An all-failure batch summarised over successes only is empty."""
        batch = [RunMetrics(achieved=False, halted=True, rounds=7)]
        s = rounds_summary(batch)
        assert s.is_empty and math.isnan(s.mean)
        # ...while the same batch's success rate reads a definite 0.0.
        assert success_rate(batch) == 0.0

    def test_nan_poisons_downstream_arithmetic(self):
        """The point of NaN over 0: forgetting to check count is loud."""
        assert math.isnan(Summary.of([]).mean + 1.0)


class TestBatchHelpers:
    def _metrics(self, achieved, rounds):
        return RunMetrics(achieved=achieved, halted=True, rounds=rounds)

    def test_success_rate(self):
        batch = [self._metrics(True, 1), self._metrics(False, 2)]
        assert success_rate(batch) == 0.5
        assert success_rate([]) == 0.0

    def test_rounds_summary_filters_failures(self):
        batch = [self._metrics(True, 10), self._metrics(False, 999)]
        assert rounds_summary(batch).maximum == 10.0
        assert rounds_summary(batch, achieved_only=False).maximum == 999.0
