"""Executor backends may move cells between processes, never change them.

The determinism contract of :mod:`repro.analysis.parallel`: same seeds in,
equal :class:`SweepResult` out — cell names, run metrics, and telemetry
totals — regardless of backend, worker count, or chunking.
"""

from __future__ import annotations

import pytest

from repro.analysis.parallel import ProcessExecutor, SerialExecutor, ensure_picklable
from repro.analysis.runner import CellTask, CellTelemetry, merge_telemetry, sweep, sweep_goals
from repro.comm.codecs import IdentityCodec, codec_family
from repro.core.execution import METRICS_RECORDING
from repro.core.goals import CompactGoal
from repro.core.referees import LastStateCompactReferee
from repro.errors import ExecutionError
from repro.servers.advisors import AdvisorServer, advisor_server_class
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import AdvisorFollowingUser, follower_user_class
from repro.worlds.control import ControlWorld, control_goal, control_sensing

LAW = {"red": "blue", "blue": "red"}
GOAL = control_goal(LAW)
CODECS = codec_family(4)
SERVERS = advisor_server_class(LAW, CODECS)


def make_universal():
    """Module-level factory: sweep_goals pickles the instances it returns."""
    return CompactUniversalUser(
        ListEnumeration(follower_user_class(codec_family(2))), control_sensing()
    )


def serial_reference(**kwargs):
    return sweep(
        AdvisorFollowingUser(IdentityCodec()), SERVERS, GOAL,
        seeds=(0, 1, 2), max_rounds=300, **kwargs,
    )


class TestBackendParity:
    def test_serial_executor_matches_default(self):
        assert serial_reference(executor=SerialExecutor()) == serial_reference()

    def test_process_pool_matches_serial(self):
        serial = serial_reference(telemetry=True)
        parallel = serial_reference(
            telemetry=True, executor=ProcessExecutor(max_workers=2)
        )
        assert parallel == serial

    def test_chunked_dispatch_matches_serial(self):
        serial = serial_reference()
        for chunk_size in (2, 3, 16):
            parallel = serial_reference(
                executor=ProcessExecutor(max_workers=2, chunk_size=chunk_size)
            )
            assert parallel == serial, f"chunk_size={chunk_size}"

    def test_metrics_recording_parity_across_backends(self):
        serial = serial_reference(recording=METRICS_RECORDING)
        parallel = serial_reference(
            recording=METRICS_RECORDING, executor=ProcessExecutor(max_workers=2)
        )
        assert parallel == serial
        # And the lean runs report the same metrics as full-recording runs.
        assert serial == serial_reference()

    def test_universal_user_parity_with_telemetry(self):
        """User-level tracer counters survive the process boundary."""
        def run(executor=None):
            return sweep(
                make_universal(), advisor_server_class(LAW, codec_family(2)),
                GOAL, seeds=(0,), max_rounds=600,
                telemetry=True, executor=executor,
            )

        serial = run()
        parallel = run(executor=ProcessExecutor(max_workers=2))
        assert parallel == serial
        assert serial.universal_success
        cell = serial.cells[1]  # the mismatched codec forces switching
        assert cell.telemetry.get("switches") >= 1

    def test_sweep_goals_parity(self):
        laws = [LAW, {"red": "red", "blue": "blue"}]
        pairs = [(control_goal(law), AdvisorServer(law)) for law in laws]
        serial = sweep_goals(make_universal, pairs, seeds=(0,), max_rounds=400)
        parallel = sweep_goals(
            make_universal, pairs, seeds=(0,), max_rounds=400,
            executor=ProcessExecutor(max_workers=2),
        )
        assert parallel == serial

    def test_telemetry_totals_merge_identically(self):
        serial = serial_reference(telemetry=True)
        parallel = serial_reference(
            telemetry=True, executor=ProcessExecutor(max_workers=2, chunk_size=2)
        )
        serial_totals = merge_telemetry([c.telemetry for c in serial.cells])
        parallel_totals = merge_telemetry([c.telemetry for c in parallel.cells])
        assert parallel_totals == serial_totals
        assert serial_totals.get("rounds") == sum(
            c.telemetry.get("rounds") for c in serial.cells
        )


class TestPicklability:
    def unpicklable_task(self):
        goal = CompactGoal(
            name="lambda-trap",
            world=ControlWorld(LAW),
            referee=LastStateCompactReferee(
                state_acceptable=lambda state: True, label="lambda"
            ),
        )
        return CellTask(
            index=0, user=AdvisorFollowingUser(IdentityCodec()),
            server=AdvisorServer(LAW), goal=goal,
            seeds=(0,), max_rounds=10, telemetry=False,
        )

    def test_ensure_picklable_accepts_library_goals(self):
        ensure_picklable(
            CellTask(
                index=0, user=make_universal(), server=AdvisorServer(LAW),
                goal=GOAL, seeds=(0, 1), max_rounds=10, telemetry=True,
            )
        )

    def test_ensure_picklable_names_the_cell(self):
        with pytest.raises(ExecutionError, match="cell 0.*not picklable"):
            ensure_picklable(self.unpicklable_task())

    def test_process_executor_rejects_before_spawning(self):
        with pytest.raises(ExecutionError, match="module-level"):
            ProcessExecutor(max_workers=2).map_cells([self.unpicklable_task()])


class TestExecutorEdgeCases:
    def test_empty_task_list(self):
        assert ProcessExecutor(max_workers=2).map_cells([]) == []
        assert SerialExecutor().map_cells([]) == []

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ProcessExecutor(max_workers=0)
        with pytest.raises(ValueError):
            ProcessExecutor(chunk_size=0)


class TestCellTelemetryCache:
    def test_as_dict_built_once(self):
        telemetry = CellTelemetry(counters=(("rounds", 10), ("messages", 4)))
        first = telemetry.as_dict()
        assert first == {"rounds": 10, "messages": 4}
        assert telemetry.as_dict() is first  # cached, not rebuilt

    def test_get_reads_through_cache(self):
        telemetry = CellTelemetry(counters=(("rounds", 10),))
        assert telemetry.get("rounds") == 10
        assert telemetry.get("missing", 7) == 7

    def test_cache_is_invisible_to_equality(self):
        left = CellTelemetry(counters=(("rounds", 10),))
        right = CellTelemetry(counters=(("rounds", 10),))
        left.as_dict()  # populate one side's cache only
        assert left == right
