"""Package-surface tests: version, errors, public exports, README snippet."""

from __future__ import annotations

import pytest

import repro
from repro import errors


class TestVersion:
    def test_version_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_pyproject_matches(self):
        import pathlib

        pyproject = pathlib.Path(__file__).resolve().parents[1] / "pyproject.toml"
        assert f'version = "{repro.__version__}"' in pyproject.read_text()


class TestErrors:
    def test_hierarchy(self):
        for exc in (
            errors.ProtocolError,
            errors.ExecutionError,
            errors.EnumerationExhaustedError,
            errors.AlgebraError,
            errors.FormulaError,
            errors.VerificationError,
            errors.CodecError,
        ):
            assert issubclass(exc, errors.ReproError)
            assert issubclass(exc, Exception)

    def test_catchable_as_family(self):
        with pytest.raises(errors.ReproError):
            raise errors.CodecError("nope")


class TestPublicSurface:
    def test_all_subpackages_import(self):
        import repro.analysis
        import repro.comm
        import repro.core
        import repro.ip
        import repro.machines
        import repro.mathx
        import repro.multiparty
        import repro.online
        import repro.qbf
        import repro.servers
        import repro.universal
        import repro.users
        import repro.worlds

    def test_declared_exports_exist(self):
        import repro.comm
        import repro.core
        import repro.servers
        import repro.universal
        import repro.users
        import repro.worlds

        for module in (
            repro.core, repro.comm, repro.universal,
            repro.worlds, repro.servers, repro.users,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_readme_quickstart_snippet_runs(self):
        """The snippet in repro/__init__'s docstring (and README) works."""
        import random

        from repro.comm.codecs import codec_family
        from repro.core import run_execution
        from repro.servers import advisor_server_class
        from repro.universal import CompactUniversalUser, ListEnumeration
        from repro.users import follower_user_class
        from repro.worlds import control_goal, control_sensing, random_law

        law = random_law(random.Random(0))
        goal = control_goal(law)
        codecs = codec_family(8)
        user = CompactUniversalUser(
            ListEnumeration(follower_user_class(codecs)), control_sensing()
        )
        server = advisor_server_class(law, codecs)[5]
        result = run_execution(user, server, goal.world, max_rounds=2000, seed=1)
        assert goal.evaluate(result).achieved
