"""Flaky / crashing / byzantine server wrappers."""

from __future__ import annotations

import random

from repro.comm.codecs import IdentityCodec, ReverseCodec
from repro.comm.messages import ServerInbox, ServerOutbox
from repro.core.execution import run_execution
from repro.core.strategy import ServerStrategy
from repro.faults.servers import ByzantineWrapper, CrashingServer, FlakyServer
from repro.faults.schedules import ScriptedSchedule
from repro.obs import FaultInjected, FaultRecovered, MemorySink, Tracer
from repro.servers.printer_servers import SpacePrinter
from repro.servers.wrappers import EncodedServer, ResettableServer
from repro.users.printer_users import PrinterProtocolUser
from repro.worlds.printer import printing_goal


class _EchoCounter(ServerStrategy):
    """Replies ``<count>`` to every message; state is the message count."""

    @property
    def name(self) -> str:
        return "echo-counter"

    def initial_state(self, rng):
        return 0

    def step(self, state, inbox, rng):
        if inbox.from_user:
            state += 1
            return state, ServerOutbox(to_user=str(state))
        return state, ServerOutbox()


def drive(server, script, seed: int = 0):
    """Step the server over a list of user messages; return the replies."""
    rng = random.Random(seed)
    state = server.initial_state(rng)
    replies = []
    for message in script:
        state, out = server.step(state, ServerInbox(from_user=message), rng)
        replies.append(out.to_user)
    return state, replies


class TestFlakyServer:
    def test_frozen_rounds_then_recovery(self):
        server = FlakyServer(_EchoCounter(), ScriptedSchedule([1, 2]))
        _, replies = drive(server, ["a", "b", "c", "d"])
        # Rounds 1-2 are outage: no reply, inner state frozen — so round 3
        # resumes the count exactly where round 0 left it.
        assert replies == ["1", "", "", "2"]

    def test_step_does_not_mutate_prior_state(self):
        server = FlakyServer(_EchoCounter(), ScriptedSchedule([]))
        rng = random.Random(0)
        before = server.initial_state(rng)
        after, _ = server.step(before, ServerInbox(from_user="x"), rng)
        assert after is not before
        assert before.clock == 0 and after.clock == 1

    def test_events_mark_outage_window(self):
        sink = MemorySink()
        server = FlakyServer(_EchoCounter(), ScriptedSchedule([1]), tracer=Tracer(sink))
        drive(server, ["a", "b", "c"])
        assert sink.of_kind(FaultInjected) == [
            FaultInjected(round_index=1, site="server", fault="flaky")
        ]
        assert sink.of_kind(FaultRecovered) == [
            FaultRecovered(round_index=2, site="server")
        ]


class TestCrashingServer:
    def test_fail_stop_is_forever(self):
        server = CrashingServer(_EchoCounter(), ScriptedSchedule([2]))
        _, replies = drive(server, ["a", "b", "c", "d", "e"])
        assert replies == ["1", "2", "", "", ""]

    def test_crash_emits_no_recovery(self):
        sink = MemorySink()
        server = CrashingServer(
            _EchoCounter(), ScriptedSchedule([1]), tracer=Tracer(sink)
        )
        drive(server, ["a", "b", "c", "d"])
        assert sink.of_kind(FaultInjected) == [
            FaultInjected(round_index=1, site="server", fault="crash")
        ]
        assert sink.of_kind(FaultRecovered) == []


class TestByzantineWrapper:
    def test_forged_replies_in_the_lie_window(self):
        server = ByzantineWrapper(
            _EchoCounter(), ScriptedSchedule([1]), forge="ACK:forged"
        )
        _, replies = drive(server, ["a", "b", "c"])
        # The inner server still ran during the lie: round 2's count is 3.
        assert replies == ["1", "ACK:forged", "3"]

    def test_world_side_effects_cannot_be_forged(self):
        server = ByzantineWrapper(SpacePrinter(), ScriptedSchedule([0]))
        rng = random.Random(0)
        state = server.initial_state(rng)
        _, out = server.step(state, ServerInbox(from_user="PRINT doc"), rng)
        assert out.to_user == server._forge
        assert out.to_world == "OUT:doc"  # The paper still gets printed.


class TestComposition:
    def test_wrappers_compose_with_codec_and_reset_layers(self):
        server = FlakyServer(
            ResettableServer(EncodedServer(SpacePrinter(), ReverseCodec())),
            ScriptedSchedule([0]),
        )
        assert "flaky" in server.name
        assert "resettable" in server.name
        assert "reverse" in server.name

    def test_printing_survives_a_flaky_server(self):
        goal = printing_goal(["the doc"])
        server = FlakyServer(
            EncodedServer(SpacePrinter(), IdentityCodec()),
            ScriptedSchedule(range(0, 40, 3)),  # Down every third round.
        )
        result = run_execution(
            PrinterProtocolUser("space", IdentityCodec()),
            server,
            goal.world,
            max_rounds=100,
            seed=0,
        )
        assert goal.evaluate(result).achieved

    def test_crashed_server_fails_the_goal(self):
        goal = printing_goal(["the doc"])
        server = CrashingServer(
            EncodedServer(SpacePrinter(), IdentityCodec()), ScriptedSchedule([0])
        )
        result = run_execution(
            PrinterProtocolUser("space", IdentityCodec()),
            server,
            goal.world,
            max_rounds=60,
            seed=0,
        )
        assert not goal.evaluate(result).achieved
