"""Faulty channels: each fault kind, direction scoping, events, engine wiring."""

from __future__ import annotations

import pytest

from repro.comm.codecs import IdentityCodec
from repro.comm.messages import SILENCE
from repro.core.execution import run_execution
from repro.faults.channel import (
    BOTH,
    CORRUPT,
    DELAY,
    DROP,
    DUPLICATE,
    SERVER_TO_USER,
    USER_TO_SERVER,
    ChannelFault,
    FaultyChannel,
    drop_channel,
    garble,
)
from repro.faults.schedules import BernoulliSchedule, NeverSchedule, ScriptedSchedule
from repro.obs import FaultInjected, FaultRecovered, MemorySink, Tracer
from repro.servers.printer_servers import SpacePrinter
from repro.servers.wrappers import EncodedServer
from repro.users.printer_users import PrinterProtocolUser
from repro.worlds.printer import printing_goal


def channel_of(kind: str, rounds, direction: str = BOTH, **kwargs) -> FaultyChannel:
    return FaultyChannel(
        [ChannelFault(kind, ScriptedSchedule(rounds), direction, **kwargs)]
    )


class TestGarble:
    def test_deterministic_and_length_preserving(self):
        assert garble("ACK:done", 3) == garble("ACK:done", 3)
        assert len(garble("ACK:done", 3)) == len("ACK:done")

    def test_changes_every_nonempty_payload(self):
        for payload in ("x", "ACK:", "JOB:doc;TAIL:doc"):
            assert garble(payload, 0) != payload

    def test_silence_passes_through(self):
        assert garble("", 5) == ""


class TestChannelFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ChannelFault("mangle", NeverSchedule())

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError):
            ChannelFault(DROP, NeverSchedule(), "sideways")

    def test_delay_rounds_validated(self):
        with pytest.raises(ValueError):
            ChannelFault(DELAY, NeverSchedule(), delay_rounds=0)


class TestFaultKinds:
    def test_drop_silences_the_payload(self):
        run = channel_of(DROP, [0]).start(seed=0)
        assert run.apply(0, "hello", "reply") == (SILENCE, SILENCE)
        assert run.apply(1, "hello", "reply") == ("hello", "reply")

    def test_corrupt_garbles_in_place(self):
        run = channel_of(CORRUPT, [0]).start(seed=0)
        u2s, s2u = run.apply(0, "hello", "reply")
        assert u2s == garble("hello", salt=0) and u2s != "hello"
        assert s2u == garble("reply", salt=0) and s2u != "reply"

    def test_duplicate_replays_into_an_idle_round(self):
        run = channel_of(DUPLICATE, [0]).start(seed=0)
        assert run.apply(0, "cmd", SILENCE) == ("cmd", SILENCE)
        assert run.apply(1, SILENCE, SILENCE) == ("cmd", SILENCE)
        assert run.apply(2, SILENCE, SILENCE) == (SILENCE, SILENCE)

    def test_duplicate_loses_to_fresh_traffic(self):
        run = channel_of(DUPLICATE, [0]).start(seed=0)
        run.apply(0, "old", SILENCE)
        assert run.apply(1, "new", SILENCE) == ("new", SILENCE)
        # The stale copy is gone for good, not deferred.
        assert run.apply(2, SILENCE, SILENCE) == (SILENCE, SILENCE)

    def test_delay_postpones_by_k_rounds(self):
        run = channel_of(DELAY, [0], delay_rounds=2).start(seed=0)
        assert run.apply(0, "late", SILENCE) == (SILENCE, SILENCE)
        assert run.apply(1, SILENCE, SILENCE) == (SILENCE, SILENCE)
        assert run.apply(2, SILENCE, SILENCE) == ("late", SILENCE)

    def test_delayed_payload_loses_collision(self):
        run = channel_of(DELAY, [0], delay_rounds=1).start(seed=0)
        run.apply(0, "late", SILENCE)
        assert run.apply(1, "fresh", SILENCE) == ("fresh", SILENCE)
        assert run.apply(2, SILENCE, SILENCE) == (SILENCE, SILENCE)

    def test_fault_on_silent_round_is_a_no_op(self):
        run = channel_of(DROP, [0, 1]).start(seed=0)
        assert run.apply(0, SILENCE, SILENCE) == (SILENCE, SILENCE)

    def test_clauses_apply_in_order(self):
        """A drop firing first leaves nothing for a later corrupt to touch."""
        channel = FaultyChannel(
            [
                ChannelFault(DROP, ScriptedSchedule([0])),
                ChannelFault(CORRUPT, ScriptedSchedule([0])),
            ]
        )
        assert channel.start(seed=0).apply(0, "msg", SILENCE) == (SILENCE, SILENCE)


class TestDirections:
    def test_user_to_server_only(self):
        run = channel_of(DROP, [0], USER_TO_SERVER).start(seed=0)
        assert run.apply(0, "up", "down") == (SILENCE, "down")

    def test_server_to_user_only(self):
        run = channel_of(DROP, [0], SERVER_TO_USER).start(seed=0)
        assert run.apply(0, "up", "down") == ("up", SILENCE)

    def test_directions_consume_independent_randomness(self):
        """A bidirectional Bernoulli drop is two decorrelated processes."""
        channel = drop_channel(0.5)
        run = channel.start(seed=9)
        kept = [run.apply(r, "u", "s") for r in range(128)]
        up = [u == "u" for u, _ in kept]
        down = [s == "s" for _, s in kept]
        assert up != down


class TestNamesAndDeterminism:
    def test_label_and_derived_names(self):
        assert drop_channel(0.1).name == "drop(0.1)"
        scoped = drop_channel(0.1, direction=USER_TO_SERVER)
        assert scoped.name == "drop(0.1)[user->server]"
        derived = channel_of(DROP, [1]).name
        assert "drop" in derived and "scripted" in derived
        assert FaultyChannel([]).name == "perfect"

    def test_same_seed_same_fault_trace(self):
        channel = drop_channel(0.3)
        first_run, again_run = channel.start(seed=4), channel.start(seed=4)
        first = [first_run.apply(r, "m", "m") for r in range(64)]
        again = [again_run.apply(r, "m", "m") for r in range(64)]
        assert first == again

    def test_different_seeds_different_traces(self):
        channel = drop_channel(0.5)
        run_a, run_b = channel.start(seed=1), channel.start(seed=2)
        a = [run_a.apply(r, "m", "m") for r in range(64)]
        b = [run_b.apply(r, "m", "m") for r in range(64)]
        assert a != b


class TestFaultEvents:
    def test_injection_and_recovery_events(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        run = channel_of(DROP, [1], USER_TO_SERVER).start(seed=0, tracer=tracer)
        run.apply(0, "a", SILENCE)  # Clean delivery.
        run.apply(1, "b", SILENCE)  # Dropped.
        run.apply(2, SILENCE, SILENCE)  # Silence is not yet recovery.
        run.apply(3, "c", SILENCE)  # First clean delivery after the fault.
        events = [
            e for e in sink.events if isinstance(e, (FaultInjected, FaultRecovered))
        ]
        assert events == [
            FaultInjected(round_index=1, site=USER_TO_SERVER, fault=DROP),
            FaultRecovered(round_index=3, site=USER_TO_SERVER),
        ]

    def test_tracing_never_alters_the_trace(self):
        channel = drop_channel(0.4)
        silent_run = channel.start(seed=6)
        traced_run = channel.start(seed=6, tracer=Tracer())
        silent = [silent_run.apply(r, "m", "m") for r in range(64)]
        traced = [traced_run.apply(r, "m", "m") for r in range(64)]
        assert silent == traced

    def test_counters_aggregate_faults(self):
        tracer = Tracer()
        run = channel_of(DROP, [0, 1]).start(seed=0, tracer=tracer)
        run.apply(0, "x", SILENCE)
        run.apply(1, "y", SILENCE)
        run.apply(2, "z", SILENCE)
        counters = tracer.counters.snapshot()
        assert counters["faults_injected"] == 2
        assert counters["faults_recovered"] == 1


class TestEngineIntegration:
    def make_system(self):
        user = PrinterProtocolUser("space", IdentityCodec())
        server = EncodedServer(SpacePrinter(), IdentityCodec())
        return user, server, printing_goal(["the doc"])

    def test_result_names_the_channel(self):
        user, server, goal = self.make_system()
        result = run_execution(
            user, server, goal.world, max_rounds=50, seed=0, channel=drop_channel(0.05)
        )
        assert result.channel_name == "drop(0.05)"
        clean = run_execution(user, server, goal.world, max_rounds=50, seed=0)
        assert clean.channel_name is None

    def test_transcript_shows_what_was_said_views_what_was_heard(self):
        """Faults bite between the speaker's outbox and the hearer's inbox."""
        user, server, goal = self.make_system()
        # Drop every user->server payload: the command is always spoken,
        # never heard, so nothing is ever printed.
        channel = FaultyChannel(
            [ChannelFault(DROP, BernoulliSchedule(1.0), USER_TO_SERVER)]
        )
        result = run_execution(
            user,
            server,
            goal.world,
            max_rounds=40,
            seed=0,
            record_transcript=True,
            channel=channel,
        )
        assert result.transcript.messages("user", "server")  # Spoken...
        heard = [r.server_inbox.from_user for r in result.rounds]
        assert all(m == SILENCE for m in heard)  # ...but never heard.
        assert not goal.evaluate(result).achieved

    def test_goal_survives_mild_drop(self):
        user, server, goal = self.make_system()
        result = run_execution(
            user, server, goal.world, max_rounds=200, seed=1, channel=drop_channel(0.1)
        )
        assert goal.evaluate(result).achieved
