"""Fault schedules: determinism, shapes, and the consultation contract."""

from __future__ import annotations

import pickle

import pytest

from repro.faults.schedules import (
    BernoulliSchedule,
    BurstSchedule,
    NeverSchedule,
    ScriptedSchedule,
)


def trace(schedule, seed: int, rounds: int = 64):
    run = schedule.start(seed)
    return [run.fires(r) for r in range(rounds)]


class TestNeverSchedule:
    def test_never_fires(self):
        assert trace(NeverSchedule(), seed=0) == [False] * 64

    def test_name(self):
        assert NeverSchedule().name == "never"


class TestBernoulliSchedule:
    def test_same_seed_same_trace(self):
        schedule = BernoulliSchedule(0.3)
        assert trace(schedule, seed=7) == trace(schedule, seed=7)

    def test_different_seeds_differ(self):
        schedule = BernoulliSchedule(0.5)
        assert trace(schedule, seed=1) != trace(schedule, seed=2)

    def test_salts_decorrelate(self):
        """Two salted schedules from one seed are independent streams."""
        a = trace(BernoulliSchedule(0.5, salt=0), seed=3)
        b = trace(BernoulliSchedule(0.5, salt=1), seed=3)
        assert a != b

    def test_rate_zero_never_fires(self):
        assert trace(BernoulliSchedule(0.0), seed=0) == [False] * 64

    def test_rate_one_always_fires(self):
        assert trace(BernoulliSchedule(1.0), seed=0) == [True] * 64

    def test_empirical_rate(self):
        fires = trace(BernoulliSchedule(0.2), seed=11, rounds=2000)
        assert 0.15 < sum(fires) / len(fires) < 0.25

    def test_out_of_order_consultation_rejected(self):
        """Skipping rounds would silently desync the trace — fail loudly."""
        run = BernoulliSchedule(0.5).start(0)
        run.fires(0)
        with pytest.raises(ValueError):
            run.fires(2)

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            BernoulliSchedule(1.5)
        with pytest.raises(ValueError):
            BernoulliSchedule(-0.1)

    def test_start_does_not_mutate_schedule(self):
        """One schedule object can drive many independent runs."""
        schedule = BernoulliSchedule(0.4)
        first = trace(schedule, seed=5)
        _ = trace(schedule, seed=99)
        assert trace(schedule, seed=5) == first

    def test_trace_survives_pickling(self):
        """Cross-process determinism: a pickled schedule replays the trace."""
        schedule = BernoulliSchedule(0.3, salt=2)
        clone = pickle.loads(pickle.dumps(schedule))
        assert trace(clone, seed=13) == trace(schedule, seed=13)


class TestBurstSchedule:
    def test_fires_in_window_each_period(self):
        fires = trace(BurstSchedule(period=10, burst=3), seed=0, rounds=25)
        expected = [(r % 10) < 3 for r in range(25)]
        assert fires == expected

    def test_phase_shifts_the_window(self):
        fires = trace(BurstSchedule(period=10, burst=2, phase=4), seed=0, rounds=20)
        assert [r for r in range(20) if fires[r]] == [4, 5, 14, 15]

    def test_window_wraps_modulo_period(self):
        """phase + burst past the period wraps to the period's start."""
        fires = trace(BurstSchedule(period=8, burst=3, phase=7), seed=0, rounds=16)
        assert [r for r in range(16) if fires[r]] == [0, 1, 7, 8, 9, 15]

    def test_seed_is_irrelevant(self):
        schedule = BurstSchedule(period=6, burst=2)
        assert trace(schedule, seed=1) == trace(schedule, seed=2)

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstSchedule(period=0, burst=0)
        with pytest.raises(ValueError):
            BurstSchedule(period=5, burst=6)
        with pytest.raises(ValueError):
            BurstSchedule(period=5, burst=2, phase=5)

    def test_name(self):
        assert BurstSchedule(period=32, burst=4, phase=8).name == "burst(4/32@8)"


class TestScriptedSchedule:
    def test_fires_exactly_on_listed_rounds(self):
        fires = trace(ScriptedSchedule([2, 5, 6]), seed=0, rounds=10)
        assert [r for r in range(10) if fires[r]] == [2, 5, 6]

    def test_accepts_any_iterable(self):
        assert ScriptedSchedule(range(3)).rounds == frozenset({0, 1, 2})

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            ScriptedSchedule([3, -1])

    def test_name_truncates_long_scripts(self):
        assert ScriptedSchedule([1, 2]).name == "scripted(1,2)"
        assert ScriptedSchedule(range(9)).name == "scripted(0,1,2,3,...)"

    def test_equality_ignores_listing_order(self):
        assert ScriptedSchedule([3, 1]) == ScriptedSchedule([1, 3])
