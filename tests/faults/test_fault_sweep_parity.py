"""Reproducibility of faulted runs: recording policies, backends, seeds.

The acceptance bar for the fault layer: a fault trace is a pure function
of the execution seed, so the *same* seed gives the *same* execution —
under FULL and METRICS recording, serially and across process workers —
and ``channel=None`` stays bitwise identical to the pre-fault engine.
"""

from __future__ import annotations

from repro.analysis.parallel import ProcessExecutor
from repro.analysis.runner import sweep
from repro.comm.codecs import IdentityCodec, codec_family
from repro.core.execution import (
    FULL_RECORDING,
    METRICS_RECORDING,
    run_execution,
)
from repro.faults.channel import drop_channel
from repro.servers.advisors import advisor_server_class
from repro.users.control_users import AdvisorFollowingUser
from repro.worlds.control import control_goal

LAW = {"red": "blue", "blue": "red"}
GOAL = control_goal(LAW)
SERVERS = advisor_server_class(LAW, codec_family(2))
FAULTS = [None, drop_channel(0.05), drop_channel(0.15, salt=1)]


def faulted_sweep(**kwargs):
    return sweep(
        AdvisorFollowingUser(IdentityCodec()),
        SERVERS,
        GOAL,
        seeds=(0, 1),
        max_rounds=300,
        faults=FAULTS,
        **kwargs,
    )


class TestFaultsAxis:
    def test_grid_is_servers_cross_channels(self):
        result = faulted_sweep()
        assert len(result.cells) == len(SERVERS) * len(FAULTS)
        names = [cell.channel_name for cell in result.cells]
        per_server = [None, "drop(0.05)", "drop(0.15)"]
        assert names == per_server * len(SERVERS)

    def test_omitting_faults_keeps_the_classical_sweep(self):
        result = sweep(
            AdvisorFollowingUser(IdentityCodec()),
            SERVERS,
            GOAL,
            seeds=(0,),
            max_rounds=200,
        )
        assert len(result.cells) == len(SERVERS)
        assert all(cell.channel_name is None for cell in result.cells)

    def test_perfect_cells_match_a_channel_free_sweep(self):
        """The faults axis must not perturb its own baseline column."""
        clean = sweep(
            AdvisorFollowingUser(IdentityCodec()),
            SERVERS,
            GOAL,
            seeds=(0, 1),
            max_rounds=300,
        )
        faulted = faulted_sweep()
        perfect_runs = [
            cell.runs for cell in faulted.cells if cell.channel_name is None
        ]
        assert perfect_runs == [cell.runs for cell in clean.cells]


class TestBackendParityUnderFaults:
    def test_process_pool_matches_serial(self):
        serial = faulted_sweep(telemetry=True)
        parallel = faulted_sweep(
            telemetry=True, executor=ProcessExecutor(max_workers=2)
        )
        assert parallel == serial

    def test_metrics_recording_parity_across_backends(self):
        serial = faulted_sweep(recording=METRICS_RECORDING)
        parallel = faulted_sweep(
            recording=METRICS_RECORDING, executor=ProcessExecutor(max_workers=2)
        )
        assert parallel == serial


class TestExecutionReproducibility:
    def run_once(self, recording, seed=3):
        return run_execution(
            AdvisorFollowingUser(IdentityCodec()),
            SERVERS[0],
            GOAL.world,
            max_rounds=300,
            seed=seed,
            recording=recording,
            channel=drop_channel(0.1),
        )

    def test_same_seed_same_execution(self):
        first = self.run_once(FULL_RECORDING)
        again = self.run_once(FULL_RECORDING)
        assert first.world_states == again.world_states
        assert first.halted == again.halted
        assert [r.server_inbox for r in first.rounds] == [
            r.server_inbox for r in again.rounds
        ]

    def test_full_and_metrics_recording_agree(self):
        full = self.run_once(FULL_RECORDING)
        metrics = self.run_once(METRICS_RECORDING)
        assert metrics.world_states == full.world_states
        assert metrics.halted == full.halted
        assert metrics.rounds_executed == full.rounds_executed
        assert metrics.channel_name == full.channel_name
        assert GOAL.evaluate(metrics).achieved == GOAL.evaluate(full).achieved

    def test_different_seeds_differ(self):
        assert (
            self.run_once(FULL_RECORDING, seed=3).world_states
            != self.run_once(FULL_RECORDING, seed=4).world_states
        )
