"""Patience budgets: bounded retry instead of spurious switching under noise.

The semantics under test (all three universal users):

* the budget is *per trial* and cumulative — a candidate is evicted on its
  ``patience + 1``-th negative indication, and interleaved positives do not
  refill the budget (a genuinely failing candidate cannot live forever on
  occasional luck);
* ``patience=0`` is exactly the paper's noiseless behaviour;
* a fault-induced spurious negative costs one strike, so a correct
  candidate survives it — the bounded retry the fault layer calls for.
"""

from __future__ import annotations

import random

import pytest

from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.core.sensing import ConstantSensing, FunctionSensing
from repro.faults.channel import (
    CORRUPT,
    SERVER_TO_USER,
    ChannelFault,
    FaultyChannel,
    drop_channel,
)
from repro.faults.schedules import ScriptedSchedule
from repro.servers.advisors import AdvisorServer
from repro.servers.printer_servers import printer_server_class
from repro.servers.wrappers import EncodedServer
from repro.universal.bayesian import BeliefWeightedUniversalUser
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.universal.finite import FiniteUniversalUser
from repro.users.control_users import follower_user_class
from repro.users.printer_users import printer_user_class
from repro.worlds.control import control_goal, control_sensing, random_law
from repro.worlds.printer import printing_goal, printing_sensing

from tests.universal.helpers import (
    EagerHaltUser,
    KeywordServer,
    KeywordUser,
    NullWorld,
    keyword_sensing,
)

WORDS = ["alpha", "beta", "gamma"]


def keyword_universal(**kwargs):
    return CompactUniversalUser(
        ListEnumeration([KeywordUser(w) for w in WORDS]),
        keyword_sensing(),
        **kwargs,
    )


class TestValidation:
    def test_negative_patience_rejected_everywhere(self):
        enumeration = ListEnumeration([KeywordUser("a")])
        with pytest.raises(ValueError):
            CompactUniversalUser(enumeration, ConstantSensing(False), patience=-1)
        with pytest.raises(ValueError):
            FiniteUniversalUser(enumeration, ConstantSensing(False), patience=-1)
        with pytest.raises(ValueError):
            BeliefWeightedUniversalUser(
                [KeywordUser("a")], ConstantSensing(False), patience=-1
            )


class TestCompactStrikeAccounting:
    def run_rounds(self, user, rounds):
        result = run_execution(
            user, KeywordServer("none"), NullWorld(), max_rounds=rounds, seed=0
        )
        return result.final_user_state

    @pytest.mark.parametrize("patience", [0, 2, 5])
    def test_eviction_on_the_patience_plus_first_negative(self, patience):
        """Under always-negative sensing a trial lasts patience + 1 rounds."""
        user = CompactUniversalUser(
            ListEnumeration([KeywordUser(w) for w in WORDS]),
            ConstantSensing(False),
            patience=patience,
        )
        rounds = 12 * (patience + 1)
        state = self.run_rounds(user, rounds)
        assert state.switches == rounds // (patience + 1)

    def test_positives_do_not_refill_the_budget(self):
        """Alternating indications still evict — strikes are cumulative."""
        alternating = FunctionSensing(
            lambda view: len(view) % 2 == 0, label="alternating"
        )
        user = CompactUniversalUser(
            ListEnumeration([KeywordUser(w) for w in WORDS]),
            alternating,
            patience=1,
        )
        # Negatives land on trial rounds 1, 3, 5, ...; with patience=1 the
        # second negative (trial round 3) evicts, so trials last 3 rounds.
        state = self.run_rounds(user, 12)
        assert state.switches == 4


class TestCompactSpuriousSwitch:
    """The scenario the budget exists for: one fault-made negative."""

    def corrupt_once(self, round_index):
        return FaultyChannel(
            [ChannelFault(CORRUPT, ScriptedSchedule([round_index]), SERVER_TO_USER)],
            label=f"corrupt@{round_index}",
        )

    def run(self, patience):
        result = run_execution(
            keyword_universal(patience=patience),
            KeywordServer(WORDS[0]),  # Index 0 is correct from the start.
            NullWorld(),
            max_rounds=60,
            seed=0,
            channel=self.corrupt_once(10),
        )
        return result.final_user_state

    def test_without_patience_the_fault_evicts_the_right_candidate(self):
        state = self.run(patience=0)
        assert state.switches > 0

    def test_patience_absorbs_the_spurious_negative(self):
        state = self.run(patience=1)
        assert state.switches == 0
        assert state.index == 0


class TestBayesianPatience:
    def run_rounds(self, patience, rounds=12):
        user = BeliefWeightedUniversalUser(
            [KeywordUser("a"), KeywordUser("b")],
            ConstantSensing(False),
            patience=patience,
        )
        result = run_execution(
            user, KeywordServer("none"), NullWorld(), max_rounds=rounds, seed=0
        )
        return result.final_user_state

    def test_patience_defers_the_decay(self):
        # Uniform prior over two candidates: every decay flips the argmax,
        # so switches count decays exactly.
        assert self.run_rounds(patience=0).switches == 12
        assert self.run_rounds(patience=2).switches == 4


class TestFinitePatience:
    def run_single_slot(self, patience):
        """One scheduled trial only: retries are the whole recovery story."""
        user = FiniteUniversalUser(
            ListEnumeration([EagerHaltUser()]),
            ConstantSensing(False),  # Every halt is rejected.
            schedule_factory=lambda cap: iter([(0, 4)]),
            patience=patience,
        )
        result = run_execution(
            user, KeywordServer("none"), NullWorld(), max_rounds=20, seed=0
        )
        return result

    def test_without_patience_one_rejection_abandons_the_slot(self):
        result = self.run_single_slot(patience=0)
        assert not result.halted
        assert result.final_user_state.trials_run == 1

    def test_patience_grants_same_candidate_retries(self):
        result = self.run_single_slot(patience=2)
        assert not result.halted
        assert result.final_user_state.trials_run == 3

    def test_endorsed_halt_is_untouched_by_patience(self):
        user = FiniteUniversalUser(
            ListEnumeration([EagerHaltUser()]),
            ConstantSensing(True),
            schedule_factory=lambda cap: iter([(0, 4)]),
            patience=2,
        )
        result = run_execution(
            user, KeywordServer("none"), NullWorld(), max_rounds=20, seed=0
        )
        assert result.halted


class TestGoalsUnderDrop:
    """Acceptance: the test-suite goals still land under ≤10% Bernoulli drop."""

    def test_compact_control_under_drop_with_patience(self):
        codecs = codec_family(3)
        law = random_law(random.Random(5))
        goal = control_goal(law, deadline=20)
        for codec in codecs:
            server = EncodedServer(AdvisorServer(law), codec)
            user = CompactUniversalUser(
                ListEnumeration(follower_user_class(codecs)),
                control_sensing(grace_rounds=30),
                patience=2,
            )
            result = run_execution(
                user,
                server,
                goal.world,
                max_rounds=4000,
                seed=2,
                channel=drop_channel(0.10),
            )
            assert goal.evaluate(result).achieved, codec.name

    def test_finite_printing_under_drop_with_patience(self):
        codecs = codec_family(2)
        goal = printing_goal(["the doc"])
        server = printer_server_class(["space", "tagged"], codecs)[2]
        user = FiniteUniversalUser(
            ListEnumeration(printer_user_class(["space", "tagged"], codecs)),
            printing_sensing(),
            patience=1,
        )
        result = run_execution(
            user,
            server,
            goal.world,
            max_rounds=4000,
            seed=0,
            channel=drop_channel(0.10),
        )
        assert result.halted
        assert goal.evaluate(result).achieved

    def test_bayesian_control_under_drop_with_patience(self):
        codecs = codec_family(3)
        law = random_law(random.Random(5))
        goal = control_goal(law, deadline=20)
        server = EncodedServer(AdvisorServer(law), codecs[1])
        user = BeliefWeightedUniversalUser(
            follower_user_class(codecs),
            control_sensing(grace_rounds=30),
            patience=2,
        )
        result = run_execution(
            user,
            server,
            goal.world,
            max_rounds=4000,
            seed=2,
            channel=drop_channel(0.10),
        )
        assert goal.evaluate(result).achieved
