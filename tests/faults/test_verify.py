"""Robustness verification: grids, margins, and false-positive hunting."""

from __future__ import annotations

import math

import pytest

from repro.comm.codecs import IdentityCodec, codec_family
from repro.core.sensing import ConstantSensing
from repro.faults.channel import drop_channel
from repro.faults.verify import (
    RobustnessReport,
    default_fault_grid,
    verify_robustness,
)
from repro.servers.advisors import AdvisorServer
from repro.servers.printer_servers import printer_server_class
from repro.universal.enumeration import ListEnumeration
from repro.universal.finite import FiniteUniversalUser
from repro.users.control_users import AdvisorFollowingUser
from repro.users.printer_users import PrinterProtocolUser, printer_user_class
from repro.worlds.control import control_goal, control_sensing
from repro.worlds.printer import printing_goal, printing_sensing

LAW = {"red": "blue", "blue": "red"}


class TestDefaultGrid:
    def test_shape(self):
        grid = default_fault_grid()
        assert grid[0] is None  # The perfect link anchors the comparison.
        names = [c.name for c in grid[1:]]
        assert names == [
            "drop(0.05)",
            "drop(0.1)",
            "corrupt(0.1)",
            "burst-outage(4/32)",
        ]


class TestFiniteVerification:
    def make_report(self, **kwargs) -> RobustnessReport:
        codecs = codec_family(2)
        goal = printing_goal(["the doc"])
        user = FiniteUniversalUser(
            ListEnumeration(printer_user_class(["space", "tagged"], codecs)),
            printing_sensing(),
            patience=1,
        )
        servers = [printer_server_class(["space", "tagged"], codecs)[1]]
        return verify_robustness(
            user,
            servers,
            goal,
            printing_sensing(),
            grid=[None, drop_channel(0.05)],
            seeds=(0, 1),
            max_rounds=2000,
            **kwargs,
        )

    def test_safe_and_viable_on_a_mild_grid(self):
        report = self.make_report()
        assert report.safe
        assert report.viability_floor == 1.0
        perfect = report.point("perfect")
        assert perfect.runs == 2 and perfect.achieved == 2
        assert not math.isnan(perfect.mean_rounds)

    def test_point_lookup_and_format(self):
        report = self.make_report()
        assert report.point("drop(0.05)").safe
        with pytest.raises(KeyError):
            report.point("no-such-channel")
        table = report.format()
        assert "robustness" in table and "drop(0.05)" in table

    def test_unsafe_sensing_is_caught(self):
        """A blind halter endorsed by degenerate sensing = false positive."""
        goal = printing_goal(["the doc"])
        # Speaks the wrong dialect, then halts anyway on a timer.
        user = PrinterProtocolUser("space", IdentityCodec(), blind_halt_after=5)
        servers = printer_server_class(["tagged"], [IdentityCodec()])
        report = verify_robustness(
            user,
            servers,
            goal,
            ConstantSensing(True),
            grid=[None],
            seeds=(0,),
            max_rounds=200,
        )
        assert not report.safe
        assert report.point("perfect").false_positives == 1
        assert report.viability_floor == 0.0


class TestCompactVerification:
    def test_healthy_compact_system_is_safe(self):
        goal = control_goal(LAW)
        report = verify_robustness(
            AdvisorFollowingUser(IdentityCodec()),
            [AdvisorServer(LAW)],
            goal,
            control_sensing(),
            grid=[None, drop_channel(0.05)],
            seeds=(0,),
            max_rounds=600,
        )
        assert report.safe
        assert report.viability_floor == 1.0

    def test_settled_failure_with_blind_sensing_is_a_false_positive(self):
        """A user failing forever while sensing cheers is the compact
        safety violation: the run looks settled to anyone trusting sensing."""
        goal = control_goal(LAW)
        # Wrong codec: advice is never understood, mistakes never stop.
        wrong = AdvisorFollowingUser(codec_family(3)[2])
        report = verify_robustness(
            wrong,
            [AdvisorServer(LAW)],
            goal,
            ConstantSensing(True),
            grid=[None],
            seeds=(0,),
            max_rounds=300,
        )
        assert not report.safe
        assert report.point("perfect").false_positives == 1
