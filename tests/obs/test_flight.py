"""Flight recorder: the bounded ring, tee fan-out, and fragment certificates.

The flight buffer is the black box for long-running serving: it must
evict deterministically, compose with full tracing through a tee, dump
to an ordinary schema-versioned trace fragment, and that fragment must
certify under ``--fragment`` — accepting the invariants a missing prefix
cannot break while still rejecting the tampering it *can* detect.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.certify import FRAGMENT_CHECKS, certify_events, certify_trace
from repro.obs.events import (
    ABANDON_FAILURE,
    MessageSent,
    RoundExecuted,
    SensingIndication,
    SessionAbandoned,
    StrategySwitch,
    TrialFinished,
    TrialStarted,
    event_from_dict,
)
from repro.obs.flight import FlightBuffer, TeeSink, dump_flight
from repro.obs.sinks import MemorySink, iter_trace


def _round(index, messages=0):
    return RoundExecuted(
        round_index=index, messages=messages, message_bytes=0, halted=False
    )


class TestFlightBuffer:
    def test_keeps_only_the_most_recent_events(self):
        buf = FlightBuffer(capacity=3)
        for i in range(7):
            buf.emit(_round(i))
        assert len(buf) == 3
        assert buf.evicted == 4
        assert [e.round_index for e in buf.events] == [4, 5, 6]

    def test_under_capacity_evicts_nothing(self):
        buf = FlightBuffer(capacity=10)
        buf.emit(_round(0))
        assert buf.evicted == 0
        assert len(buf) == 1

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            FlightBuffer(capacity=0)

    def test_clear_resets_ring_and_eviction_count(self):
        buf = FlightBuffer(capacity=1)
        buf.emit(_round(0))
        buf.emit(_round(1))
        buf.clear()
        assert len(buf) == 0
        assert buf.evicted == 0


class TestTeeSink:
    def test_fans_out_to_every_child_in_order(self):
        a, b = MemorySink(), MemorySink()
        tee = TeeSink(a, b)
        tee.emit(_round(0))
        assert a.events == b.events
        assert len(a.events) == 1

    def test_close_closes_all_children_despite_errors(self):
        closed = []

        class Recording(MemorySink):
            def __init__(self, label, explode=False):
                super().__init__()
                self.label = label
                self.explode = explode

            def close(self):
                closed.append(self.label)
                if self.explode:
                    raise RuntimeError("flush failed")

        tee = TeeSink(Recording("first", explode=True), Recording("last"))
        with pytest.raises(RuntimeError, match="flush failed"):
            tee.close()
        assert closed == ["first", "last"]

    def test_requires_at_least_one_child(self):
        with pytest.raises(ValueError):
            TeeSink()


class TestDumpFlight:
    def test_dump_is_readable_by_iter_trace(self, tmp_path):
        buf = FlightBuffer(capacity=2)
        for i in range(5):
            buf.emit(_round(i))
        path = dump_flight(buf, tmp_path / "flight" / "s-9.jsonl")
        header, events = iter_trace(path)
        assert header["flight"] is True
        assert header["evicted"] == 3
        assert [e.round_index for e in events] == [3, 4]

    def test_header_extras_merge_without_clobbering(self, tmp_path):
        buf = FlightBuffer(capacity=4)
        buf.emit(_round(0))
        path = dump_flight(
            buf, tmp_path / "f.jsonl", header={"session_id": "s-1", "flight": False}
        )
        header, _ = iter_trace(path)
        # Reserved keys win over caller extras; new keys pass through.
        assert header["flight"] is True
        assert header["session_id"] == "s-1"

    def test_plain_iterable_dumps_without_eviction_count(self, tmp_path):
        path = dump_flight([_round(0)], tmp_path / "f.jsonl")
        header, events = iter_trace(path)
        assert "evicted" not in header
        assert len(list(events)) == 1


def _fragment_events():
    """A plausible mid-stream window: trial machinery from round 5 on."""
    return [
        MessageSent(round_index=5, sender="user", receiver="server", payload="a"),
        _round(5, messages=1),
        SensingIndication(round_index=6, candidate_index=2, positive=False),
        TrialFinished(
            round_index=6,
            trial_number=3,
            candidate_index=2,
            reason="evicted",
            rounds_used=4,
        ),
        StrategySwitch(
            round_index=6,
            from_index=2,
            to_index=3,
            reason="sensing-negative",
            wrapped=False,
        ),
        TrialStarted(round_index=6, trial_number=4, candidate_index=3, budget=None),
        _round(6),
        SessionAbandoned(
            session_id="s-1", rounds_completed=7, reason=ABANDON_FAILURE
        ),
    ]


class TestFragmentCertification:
    def test_midstream_window_certifies_as_fragment(self):
        report = certify_events(_fragment_events(), fragment=True)
        assert report.ok, report.format()
        assert report.fragment
        assert report.checks == FRAGMENT_CHECKS
        assert "overhead" not in report.checks
        assert "[fragment]" in report.format()
        assert report.to_dict()["fragment"] is True

    def test_same_window_fails_without_fragment_mode(self):
        report = certify_events(_fragment_events())
        assert not report.ok
        assert not report.fragment

    def test_unjustified_switch_still_rejected_in_fragment_mode(self):
        # Once the window shows a full trial close, a switch after an
        # *endorsed* trial is tampering a fragment cannot excuse.
        events = [
            _round(5),
            TrialFinished(
                round_index=6,
                trial_number=3,
                candidate_index=2,
                reason="endorsed",
                rounds_used=4,
            ),
            StrategySwitch(
                round_index=6,
                from_index=2,
                to_index=3,
                reason="sensing-negative",
                wrapped=False,
            ),
        ]
        report = certify_events(events, fragment=True)
        assert not report.ok
        assert any("switch" in issue.check for issue in report.issues)

    def test_events_after_abandon_are_rejected(self):
        events = [
            _round(5),
            SessionAbandoned(
                session_id="s-1", rounds_completed=6, reason=ABANDON_FAILURE
            ),
            _round(6),
        ]
        report = certify_events(events, fragment=True)
        assert not report.ok

    def test_abandon_with_understated_rounds_is_rejected(self):
        events = [
            _round(5),
            _round(6),
            SessionAbandoned(
                session_id="s-1", rounds_completed=1, reason=ABANDON_FAILURE
            ),
        ]
        report = certify_events(events, fragment=True)
        assert not report.ok

    def test_unknown_abandon_reason_is_rejected(self):
        events = [
            SessionAbandoned(session_id="s-1", rounds_completed=0, reason="gremlins")
        ]
        report = certify_events(events, fragment=True)
        assert not report.ok

    def test_dumped_fragment_certifies_from_disk(self, tmp_path):
        buf = FlightBuffer(capacity=32)
        for event in _fragment_events():
            buf.emit(event)
        path = dump_flight(buf, tmp_path / "flight" / "s-1.jsonl")
        report = certify_trace(path, fragment=True)
        assert report.ok, report.format()
        assert report.fragment

    def test_round_trip_through_event_from_dict(self):
        original = SessionAbandoned(
            session_id="s-7", rounds_completed=12, reason=ABANDON_FAILURE
        )
        payload = json.loads(json.dumps(original.to_dict()))
        assert event_from_dict(payload) == original
