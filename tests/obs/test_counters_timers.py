"""Counters, histograms, and phase timers."""

from __future__ import annotations

import math

import pytest

from repro.obs import CounterSet, PhaseTimer
from repro.obs.counters import Counter, Histogram


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("rounds")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter("rounds").inc(-1)


class TestHistogram:
    def test_streaming_summary(self):
        h = Histogram("trial_rounds")
        for v in (4, 1, 9):
            h.observe(v)
        assert h.count == 3
        assert h.total == 14
        assert h.minimum == 1
        assert h.maximum == 9
        assert h.mean == pytest.approx(14 / 3)

    def test_empty_histogram_mean_is_nan(self):
        assert math.isnan(Histogram("x").mean)


class TestCounterSet:
    def test_create_on_first_touch(self):
        cs = CounterSet()
        cs.inc("rounds", 3)
        cs.observe("trial_rounds", 7.0)
        assert cs.get("rounds") == 3
        assert cs.get("never_touched") == 0

    def test_snapshot_preserves_creation_order(self):
        cs = CounterSet()
        for name in ("b", "a", "c"):
            cs.inc(name)
        assert list(cs.snapshot()) == ["b", "a", "c"]

    def test_snapshot_flattens_histograms(self):
        cs = CounterSet()
        cs.observe("h", 2.0)
        cs.observe("h", 4.0)
        snap = cs.snapshot()["h"]
        assert snap == {"count": 2, "total": 6.0, "min": 2.0, "max": 4.0, "mean": 3.0}

    def test_snapshot_is_a_copy(self):
        cs = CounterSet()
        cs.inc("rounds")
        snap = cs.snapshot()
        cs.inc("rounds")
        assert snap["rounds"] == 1


class TestPhaseTimer:
    def test_accumulates_with_injected_clock(self):
        ticks = iter([0.0, 1.5, 10.0, 10.25])
        timer = PhaseTimer(clock=lambda: next(ticks))
        with timer.phase("engine"):
            pass
        with timer.phase("engine"):
            pass
        assert timer.total("engine") == pytest.approx(1.75)
        assert timer.entries("engine") == 2

    def test_untouched_phase_reads_zero(self):
        timer = PhaseTimer()
        assert timer.total("nothing") == 0.0
        assert timer.entries("nothing") == 0

    def test_real_clock_measures_something_nonnegative(self):
        timer = PhaseTimer()
        with timer.phase("noop"):
            pass
        assert timer.total("noop") >= 0.0
