"""Counters, histograms, and phase timers."""

from __future__ import annotations

import math

import pytest

from repro.obs import CounterSet, PhaseTimer
from repro.obs.counters import (
    BUCKET_GAMMA,
    BUCKET_MAX_INDEX,
    BUCKET_MIN_INDEX,
    Counter,
    Histogram,
    bucket_index,
    bucket_upper,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("rounds")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter("rounds").inc(-1)


class TestHistogram:
    def test_streaming_summary(self):
        h = Histogram("trial_rounds")
        for v in (4, 1, 9):
            h.observe(v)
        assert h.count == 3
        assert h.total == 14
        assert h.minimum == 1
        assert h.maximum == 9
        assert h.mean == pytest.approx(14 / 3)

    def test_empty_histogram_mean_is_nan(self):
        assert math.isnan(Histogram("x").mean)


class TestBucketGeometry:
    def test_bucket_covers_half_open_interval(self):
        # Bucket i covers (gamma**(i-1), gamma**i]: exact powers land in
        # their own bucket, a nudge above lands in the next one.
        for i in (-8, -1, 0, 1, 5, 40):
            edge = bucket_upper(i)
            assert bucket_index(edge) == i
            assert bucket_index(edge * 1.0001) == i + 1

    def test_extreme_values_clamp_to_edge_buckets(self):
        assert bucket_index(1e-300) == BUCKET_MIN_INDEX
        assert bucket_index(1e300) == BUCKET_MAX_INDEX

    def test_upper_bound_matches_indexing(self):
        for value in (0.003, 0.7, 1.0, 17.3, 994.896, 123456.0):
            i = bucket_index(value)
            assert value <= bucket_upper(i)
            if i > BUCKET_MIN_INDEX:
                assert value > bucket_upper(i - 1)


class TestHistogramQuantiles:
    def test_quantile_within_one_bucket_of_exact(self):
        h = Histogram("latency_ms")
        values = [float(v) for v in range(1, 1001)]
        for v in values:
            h.observe(v)
        for q in (0.5, 0.95, 0.99):
            exact = values[max(0, math.ceil(q * len(values)) - 1)]
            got = h.quantile(q)
            assert exact <= got <= exact * BUCKET_GAMMA

    def test_quantile_exact_at_maximum(self):
        h = Histogram("x")
        for v in (3.0, 5.0, 11.0):
            h.observe(v)
        # The top bucket's upper bound clamps to the tracked maximum.
        assert h.quantile(1.0) == 11.0
        # The bottom of the range still overshoots by at most one bucket.
        assert 3.0 <= h.quantile(0.0) <= 3.0 * BUCKET_GAMMA

    def test_constant_data_is_exact(self):
        h = Histogram("x")
        for _ in range(100):
            h.observe(42.0)
        assert h.quantile(0.5) == 42.0
        assert h.quantile(0.99) == 42.0

    def test_golden_bucket_quantiles(self):
        # Pinned values: the deterministic geometry means these numbers
        # are identical on every platform and every run.
        h = Histogram("x")
        for v in (1.0, 2.0, 4.0, 8.0, 16.0):
            h.observe(v)
        assert h.quantile(0.5) == pytest.approx(4.0)
        assert h.quantile(0.8) == pytest.approx(8.0)
        assert h.quantile(1.0) == 16.0

    def test_zero_and_negative_fall_in_low_bucket(self):
        h = Histogram("x")
        h.observe(0.0)
        h.observe(-2.0)
        h.observe(10.0)
        assert h.low == 2
        # The low bucket's representative is its upper bound, 0.0.
        assert h.quantile(0.5) == 0.0
        assert h.quantile(0.1) == 0.0

    def test_empty_quantile_is_nan(self):
        assert math.isnan(Histogram("x").quantile(0.5))

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram("x").quantile(1.5)

    def test_snapshot_round_trips_through_json_keys(self):
        h = Histogram("x")
        for v in (0.25, 1.0, 700.0):
            h.observe(v)
        snap = h.snapshot()
        assert all(isinstance(k, str) for k in snap["buckets"])
        back = Histogram.from_snapshot("x", snap)
        assert back.snapshot() == snap
        assert back.quantile(0.95) == h.quantile(0.95)


class TestHistogramMerge:
    def test_merge_is_associative_across_workers(self):
        # Three "workers" each observe a disjoint share of the samples;
        # any merge grouping must equal the single-process histogram.
        import random

        rng = random.Random(7)
        samples = [rng.uniform(0.01, 5000.0) for _ in range(600)]
        whole = Histogram("x")
        for v in samples:
            whole.observe(v)
        shares = [samples[0::3], samples[1::3], samples[2::3]]
        snaps = []
        for share in shares:
            h = Histogram("x")
            for v in share:
                h.observe(v)
            snaps.append(h.snapshot())

        left = Histogram.from_snapshot("x", snaps[0])
        left.merge_snapshot(snaps[1])
        left.merge_snapshot(snaps[2])

        right_tail = Histogram.from_snapshot("x", snaps[1])
        right_tail.merge_snapshot(snaps[2])
        right = Histogram("x")
        right.merge_snapshot(snaps[0])
        right.merge_snapshot(right_tail.snapshot())

        # Everything discrete (counts, buckets, extremes) is bitwise
        # identical under any merge grouping; float totals agree up to
        # summation order.
        for merged in (left, right):
            assert merged.count == whole.count
            assert merged.low == whole.low
            assert merged.buckets == whole.buckets
            assert merged.minimum == whole.minimum
            assert merged.maximum == whole.maximum
            assert merged.total == pytest.approx(whole.total)
            for q in (0.5, 0.95, 0.99):
                assert merged.quantile(q) == whole.quantile(q)

    def test_counter_set_merge_folds_buckets(self):
        a, b = CounterSet(), CounterSet()
        for v in (1.0, 2.0):
            a.observe("h", v)
        for v in (4.0, 8.0):
            b.observe("h", v)
        a.merge(b.snapshot())
        merged = Histogram.from_snapshot("h", a.snapshot()["h"])
        assert merged.count == 4
        assert merged.quantile(1.0) == 8.0

    def test_merge_tolerates_bucketless_legacy_snapshot(self):
        # Snapshots written before buckets existed still merge their
        # scalar summary; quantiles then degrade gracefully.
        cs = CounterSet()
        cs.merge({"h": {"count": 2, "total": 6.0, "min": 2.0, "max": 4.0, "mean": 3.0}})
        h = cs.histogram("h")
        assert h.count == 2
        assert h.quantile(1.0) == 4.0


class TestCounterSet:
    def test_create_on_first_touch(self):
        cs = CounterSet()
        cs.inc("rounds", 3)
        cs.observe("trial_rounds", 7.0)
        assert cs.get("rounds") == 3
        assert cs.get("never_touched") == 0

    def test_snapshot_preserves_creation_order(self):
        cs = CounterSet()
        for name in ("b", "a", "c"):
            cs.inc(name)
        assert list(cs.snapshot()) == ["b", "a", "c"]

    def test_snapshot_flattens_histograms(self):
        cs = CounterSet()
        cs.observe("h", 2.0)
        cs.observe("h", 4.0)
        snap = cs.snapshot()["h"]
        # 2.0 and 4.0 are exact powers of the bucket base (gamma**4 and
        # gamma**8), so their bucket keys are pinned too.
        assert snap == {
            "count": 2,
            "total": 6.0,
            "min": 2.0,
            "max": 4.0,
            "mean": 3.0,
            "low": 0,
            "buckets": {"4": 1, "8": 1},
        }

    def test_snapshot_is_a_copy(self):
        cs = CounterSet()
        cs.inc("rounds")
        snap = cs.snapshot()
        cs.inc("rounds")
        assert snap["rounds"] == 1


class TestPhaseTimer:
    def test_accumulates_with_injected_clock(self):
        ticks = iter([0.0, 1.5, 10.0, 10.25])
        timer = PhaseTimer(clock=lambda: next(ticks))
        with timer.phase("engine"):
            pass
        with timer.phase("engine"):
            pass
        assert timer.total("engine") == pytest.approx(1.75)
        assert timer.entries("engine") == 2

    def test_untouched_phase_reads_zero(self):
        timer = PhaseTimer()
        assert timer.total("nothing") == 0.0
        assert timer.entries("nothing") == 0

    def test_real_clock_measures_something_nonnegative(self):
        timer = PhaseTimer()
        with timer.phase("noop"):
            pass
        assert timer.total("noop") >= 0.0
