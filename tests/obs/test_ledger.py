"""Run ledger: manifest round-trips, provenance capture, sweep ledgers."""

from __future__ import annotations

import json
import math

import pytest

from repro.analysis.runner import sweep
from repro.comm.codecs import codec_family
from repro.core.execution import METRICS_RECORDING
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    LedgerSchemaError,
    RunManifest,
    SweepManifest,
    git_sha,
    read_manifest,
    record_run,
    write_manifest,
)
from repro.obs.sinks import read_trace
from repro.servers.advisors import advisor_server_class
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import follower_user_class
from repro.worlds.control import control_goal, control_sensing, random_law

import random

LAW = random_law(random.Random(7))
GOAL = control_goal(LAW)
CODECS = codec_family(4)
SERVERS = advisor_server_class(LAW, CODECS)


def make_user():
    return CompactUniversalUser(
        ListEnumeration(follower_user_class(CODECS)), control_sensing()
    )


def sample_manifest(**overrides):
    payload = dict(
        kind="run",
        goal="g",
        user="u",
        server="s",
        channel=None,
        recording="full",
        seeds=(0, 1),
        max_rounds=100,
        rounds=42,
        achieved=1,
        halted=0,
        wall_time_s=0.5,
        cpu_time_s=0.4,
    )
    payload.update(overrides)
    return RunManifest(**payload)


class TestRunManifest:
    def test_json_round_trip_is_identity(self, tmp_path):
        manifest = sample_manifest(trace_path="run.jsonl", git_sha="abc")
        path = write_manifest(manifest, tmp_path / "run.json")
        assert read_manifest(path) == manifest

    def test_serialisation_is_deterministic_and_schema_first(self):
        manifest = sample_manifest()
        data = json.loads(manifest.to_json())
        assert next(iter(data)) == "ledger_schema"
        assert data["ledger_schema"] == LEDGER_SCHEMA
        assert manifest.to_json() == sample_manifest().to_json()

    def test_run_id_depends_on_identity_not_timing(self):
        a = sample_manifest(wall_time_s=0.1, cpu_time_s=0.1)
        b = sample_manifest(wall_time_s=9.9, cpu_time_s=8.8)
        assert a.run_id() == b.run_id()
        assert len(a.run_id()) == 12

    @pytest.mark.parametrize(
        "field,value",
        [
            ("seeds", (5,)),
            ("goal", "other-goal"),
            ("server", "other-server"),
            ("channel", "drop(0.1)"),
            ("recording", "metrics"),
            ("max_rounds", 999),
        ],
    )
    def test_run_id_separates_identity_fields(self, field, value):
        assert sample_manifest().run_id() != sample_manifest(
            **{field: value}
        ).run_id()

    def test_newer_schema_major_is_rejected(self, tmp_path):
        data = json.loads(sample_manifest().to_json())
        data["ledger_schema"] = LEDGER_SCHEMA + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(data))
        with pytest.raises(LedgerSchemaError, match="newer than the supported"):
            read_manifest(path)

    def test_malformed_schema_is_rejected(self, tmp_path):
        data = json.loads(sample_manifest().to_json())
        data["ledger_schema"] = "one"
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(data))
        with pytest.raises(LedgerSchemaError, match="malformed"):
            read_manifest(path)

    def test_unknown_kind_is_rejected(self, tmp_path):
        data = json.loads(sample_manifest().to_json())
        data["kind"] = "mystery"
        path = tmp_path / "odd.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="unknown manifest kind"):
            read_manifest(path)


class TestSweepManifestDocument:
    def test_json_round_trip_is_identity(self, tmp_path):
        manifest = SweepManifest(
            goal="g", user="u", cells=("a.json", "b.json"), seeds=(0,),
            max_rounds=50, wall_time_s=1.0, git_sha=None,
        )
        path = write_manifest(manifest, tmp_path / "sweep.json")
        assert read_manifest(path) == manifest


class TestGitSha:
    def test_returns_hex_or_none(self):
        sha = git_sha()
        assert sha is None or (
            len(sha) == 40 and all(c in "0123456789abcdef" for c in sha)
        )


class TestRecordRun:
    def test_writes_trace_and_matching_manifest(self, tmp_path):
        recorded = record_run(
            make_user(), SERVERS[1], GOAL,
            max_rounds=600, seed=3, out_dir=tmp_path, name="demo",
        )
        assert recorded.trace_path == tmp_path / "demo.jsonl"
        assert recorded.manifest_path == tmp_path / "demo.json"

        manifest = read_manifest(recorded.manifest_path)
        assert manifest == recorded.manifest
        assert manifest.kind == "run"
        assert manifest.seeds == (3,)
        assert manifest.max_rounds == 600
        assert manifest.rounds == recorded.execution.rounds_executed
        assert manifest.achieved == 1
        assert manifest.trace_path == "demo.jsonl"
        assert manifest.wall_time_s >= 0
        assert manifest.cpu_time_s >= 0

        header, events = read_trace(recorded.trace_path)
        assert header["trace_schema"] >= 1
        # Both the engine's and the universal user's events are present.
        kinds = {event.kind for event in events}
        assert "round-executed" in kinds
        assert "sensing-indication" in kinds

    def test_restores_user_tracer(self, tmp_path):
        user = make_user()
        assert user.tracer is None
        record_run(
            user, SERVERS[0], GOAL, max_rounds=600, out_dir=tmp_path
        )
        assert user.tracer is None

    def test_respects_recording_policy(self, tmp_path):
        recorded = record_run(
            make_user(), SERVERS[0], GOAL,
            max_rounds=600, out_dir=tmp_path, recording=METRICS_RECORDING,
        )
        assert recorded.manifest.recording == METRICS_RECORDING.label


class TestSweepLedger:
    def test_sweep_writes_cell_manifests_and_index(self, tmp_path):
        ledger = tmp_path / "ledger"
        result = sweep(
            make_user(), SERVERS, GOAL,
            seeds=(0, 1), max_rounds=600, ledger_dir=ledger,
        )
        index = read_manifest(ledger / "sweep.json")
        assert isinstance(index, SweepManifest)
        assert index.seeds == (0, 1)
        assert len(index.cells) == len(SERVERS)

        seen_ids = set()
        for cell_file, cell_result in zip(index.cells, result.cells):
            manifest = read_manifest(ledger / cell_file)
            assert manifest.kind == "cell"
            assert manifest.server == cell_result.server_name
            assert manifest.seeds == (0, 1)
            assert manifest.rounds == sum(
                run.rounds for run in cell_result.runs
            )
            assert manifest.achieved == sum(
                run.achieved for run in cell_result.runs
            )
            # The manifest uniquely identifies its configuration.
            seen_ids.add(manifest.run_id())
            # And round-trips exactly through JSON.
            assert read_manifest(ledger / cell_file) == manifest
        assert len(seen_ids) == len(SERVERS)

    def test_cell_timing_fields_do_not_break_parity(self):
        """compare=False timing keeps the parallel == serial contract."""
        serial = sweep(make_user(), SERVERS[:2], GOAL, seeds=(0,), max_rounds=600)
        again = sweep(make_user(), SERVERS[:2], GOAL, seeds=(0,), max_rounds=600)
        assert serial.cells == again.cells
        assert all(cell.wall_time_s >= 0 for cell in serial.cells)

    def test_no_ledger_dir_writes_nothing(self, tmp_path):
        sweep(make_user(), SERVERS[:1], GOAL, seeds=(0,), max_rounds=600)
        assert list(tmp_path.iterdir()) == []

    def test_mean_rounds_nan_guard(self):
        # Manifest totals stay integers even when nothing achieves.
        assert not math.isnan(float(sample_manifest(achieved=0).achieved))


class TestLazyAnalysisImports:
    def test_engine_import_does_not_load_analysis_modules(self):
        """The tracing-off path never pays for ledger/overhead/analyze.

        Module state is process-global, so this has to run in a fresh
        interpreter: import the engine, then assert the analysis-side obs
        modules stayed unloaded (they are PEP 562 lazy re-exports).
        """
        import subprocess
        import sys

        code = (
            "import sys\n"
            "import repro.core.execution\n"
            "banned = ['repro.obs.ledger', 'repro.obs.overhead',"
            " 'repro.obs.analyze']\n"
            "loaded = [m for m in banned if m in sys.modules]\n"
            "assert not loaded, loaded\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert completed.returncode == 0, completed.stderr
