"""Event taxonomy: registry completeness and dict round-trips."""

from __future__ import annotations

import pytest

from repro.obs import (
    Event,
    ExecutionFinished,
    ExecutionStarted,
    FaultInjected,
    FaultRecovered,
    GoalVerdict,
    GraceSuppressed,
    MessageSent,
    ProofFinished,
    ProofRoundChecked,
    ProofStarted,
    RoundExecuted,
    SensingIndication,
    SessionAbandoned,
    StrategySwitch,
    TrialFinished,
    TrialStarted,
    event_from_dict,
    event_kinds,
)

ALL_EVENT_TYPES = [
    ExecutionStarted,
    MessageSent,
    RoundExecuted,
    ExecutionFinished,
    SensingIndication,
    StrategySwitch,
    TrialStarted,
    TrialFinished,
    GraceSuppressed,
    FaultInjected,
    FaultRecovered,
    GoalVerdict,
    ProofStarted,
    ProofRoundChecked,
    ProofFinished,
    SessionAbandoned,
]

SAMPLES = [
    ExecutionStarted(user="u", server="s", world="w", max_rounds=10, seed=3,
                     rng_digest="abc123"),
    MessageSent(round_index=2, sender="user", receiver="server", payload="hi"),
    RoundExecuted(round_index=2, messages=3, message_bytes=17, halted=False),
    ExecutionFinished(rounds_executed=9, halted=True),
    SensingIndication(round_index=4, candidate_index=1, positive=False),
    StrategySwitch(round_index=4, from_index=1, to_index=2, wrapped=False,
                   reason="belief-decay"),
    TrialStarted(round_index=5, trial_number=2, candidate_index=2, budget=16),
    TrialFinished(round_index=8, trial_number=2, candidate_index=2,
                  rounds_used=4, reason="evicted"),
    GraceSuppressed(round_index=1, grace_rounds=4),
    FaultInjected(round_index=6, site="user->server", fault="drop"),
    FaultRecovered(round_index=7, site="user->server"),
    GoalVerdict(goal="g", compact=True, achieved=True, halted=False, rounds=9,
                settle_fraction=0.1, total_prefixes=10, bad_prefixes=2,
                last_bad_round=3),
    ProofStarted(protocol="qbf", modulus=97, claimed_value=1),
    ProofRoundChecked(index=0, op_kind="exists", var="x", degree_bound=2,
                      poly="1,0,96", challenge=11, claim_before=1,
                      claim_after=42),
    ProofFinished(accepted=True),
    SessionAbandoned(session_id="s-1", rounds_completed=7, reason="failure"),
]


class TestRegistry:
    def test_every_event_type_is_registered(self):
        registry = event_kinds()
        for cls in ALL_EVENT_TYPES:
            assert registry[cls.kind] is cls

    def test_kinds_are_unique(self):
        kinds = [cls.kind for cls in ALL_EVENT_TYPES]
        assert len(kinds) == len(set(kinds))

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            event_from_dict({"kind": "no-such-event"})

    def test_mismatched_payload_raises(self):
        with pytest.raises(TypeError):
            event_from_dict({"kind": "round-executed", "bogus": 1})


class TestRoundTrip:
    @pytest.mark.parametrize("event", SAMPLES, ids=lambda e: e.kind)
    def test_dict_round_trip_is_identity(self, event: Event):
        assert event_from_dict(event.to_dict()) == event

    @pytest.mark.parametrize("event", SAMPLES, ids=lambda e: e.kind)
    def test_kind_is_first_key(self, event: Event):
        assert next(iter(event.to_dict())) == "kind"

    def test_field_order_is_declaration_order(self):
        keys = list(SAMPLES[1].to_dict())
        assert keys == ["kind", "round_index", "sender", "receiver", "payload"]

    def test_samples_cover_every_registered_kind(self):
        """A new event type must gain a sample here (and thus a round-trip)."""
        assert {e.kind for e in SAMPLES} == set(event_kinds())

    def test_every_kind_round_trips_through_a_trace_file(self, tmp_path):
        """JsonlSink → read_trace is the identity for every event type."""
        from repro.obs import (
            TRACE_SCHEMA,
            TRACE_SCHEMA_MINOR,
            JsonlSink,
            read_trace,
        )

        path = tmp_path / "all-kinds.jsonl"
        with JsonlSink(path) as sink:
            for event in SAMPLES:
                sink.emit(event)
        header, events = read_trace(path)
        assert header == {
            "trace_schema": TRACE_SCHEMA,
            "trace_schema_minor": TRACE_SCHEMA_MINOR,
        }
        assert events == SAMPLES
