"""Overhead accounting: hand-built traces with known answers, live users."""

from __future__ import annotations

import pytest

from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.obs import MemorySink, Tracer
from repro.obs.events import (
    ExecutionFinished,
    RoundExecuted,
    SensingIndication,
    StrategySwitch,
    TrialFinished,
    TrialStarted,
)
from repro.obs.overhead import compute_overhead
from repro.servers.advisors import advisor_server_class
from repro.universal.bayesian import BeliefWeightedUniversalUser
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import follower_user_class
from repro.worlds.control import control_goal, control_sensing, random_law

import random

LAW = random_law(random.Random(5))
GOAL = control_goal(LAW)
CODECS = codec_family(6)
SERVERS = advisor_server_class(LAW, CODECS)


def rounds(n, start=0):
    return [
        RoundExecuted(round_index=start + i, messages=1, message_bytes=2,
                      halted=False)
        for i in range(n)
    ]


class TestHandBuiltTraces:
    def test_empty_trace_is_all_zero(self):
        report = compute_overhead([])
        assert report.total_rounds == 0
        assert report.overhead_rounds == 0
        assert report.overhead_ratio == 0.0
        assert report.settled_index is None
        assert report.per_strategy == ()

    def test_no_trial_events_means_no_overhead(self):
        """A non-enumerating user's trace: rounds, but zero overhead."""
        report = compute_overhead(
            rounds(7) + [ExecutionFinished(rounds_executed=7, halted=True)]
        )
        assert report.total_rounds == 7
        assert report.productive_rounds == 0
        assert report.overhead_rounds == 7
        assert report.trials == 0

    def test_known_two_trial_split(self):
        """Candidate 0 burns 3 rounds, candidate 1 settles for 5: ratio 3/8."""
        events = [
            TrialStarted(round_index=0, trial_number=0, candidate_index=0),
            *rounds(3),
            SensingIndication(round_index=2, candidate_index=0, positive=False),
            TrialFinished(round_index=2, trial_number=0, candidate_index=0,
                          rounds_used=3, reason="evicted"),
            StrategySwitch(round_index=2, from_index=0, to_index=1,
                           wrapped=False),
            TrialStarted(round_index=3, trial_number=1, candidate_index=1),
            *rounds(5, start=3),
            ExecutionFinished(rounds_executed=8, halted=False),
        ]
        report = compute_overhead(events)
        assert report.total_rounds == 8
        assert report.productive_rounds == 5
        assert report.overhead_rounds == 3
        assert report.overhead_ratio == pytest.approx(3 / 8)
        assert report.settled_index == 1
        assert report.switches == 1
        assert report.wraps == 0
        assert report.trials == 2
        assert report.strategy(0).rounds == 3
        assert report.strategy(0).switched_away
        assert report.strategy(1).rounds == 5
        assert not report.strategy(1).switched_away

    def test_endorsed_trial_is_productive_rest_is_overhead(self):
        """Finite user's halt: the endorsed trial's rounds are productive."""
        events = [
            TrialStarted(round_index=0, trial_number=0, candidate_index=0,
                         budget=4),
            TrialFinished(round_index=3, trial_number=0, candidate_index=0,
                          rounds_used=4, reason="budget"),
            TrialStarted(round_index=4, trial_number=1, candidate_index=1,
                         budget=4),
            TrialFinished(round_index=6, trial_number=1, candidate_index=1,
                          rounds_used=3, reason="endorsed"),
            ExecutionFinished(rounds_executed=7, halted=True),
        ]
        report = compute_overhead(rounds(7) + events)
        assert report.total_rounds == 7
        assert report.productive_rounds == 3
        assert report.overhead_rounds == 4
        assert report.settled_index == 1

    def test_abandoned_last_trial_settles_nowhere(self):
        events = [
            TrialStarted(round_index=0, trial_number=0, candidate_index=0,
                         budget=4),
            TrialFinished(round_index=3, trial_number=0, candidate_index=0,
                          rounds_used=4, reason="budget"),
            ExecutionFinished(rounds_executed=4, halted=False),
        ]
        report = compute_overhead(rounds(4) + events)
        assert report.settled_index is None
        assert report.productive_rounds == 0
        assert report.overhead_rounds == 4

    def test_user_only_trace_counts_sensing_consultations(self):
        """No engine events at all: totals come from the user's own stream."""
        events = [
            TrialStarted(round_index=0, trial_number=0, candidate_index=0),
            SensingIndication(round_index=0, candidate_index=0, positive=True),
            SensingIndication(round_index=1, candidate_index=0, positive=False),
            TrialFinished(round_index=1, trial_number=0, candidate_index=0,
                          rounds_used=2, reason="evicted"),
            StrategySwitch(round_index=1, from_index=0, to_index=1,
                           wrapped=False),
            TrialStarted(round_index=2, trial_number=1, candidate_index=1),
            SensingIndication(round_index=2, candidate_index=1, positive=True),
        ]
        report = compute_overhead(events)
        assert report.total_rounds == 3
        assert report.productive_rounds == 1
        assert report.overhead_rounds == 2
        assert report.settled_index == 1

    def test_wraps_are_counted(self):
        events = [
            StrategySwitch(round_index=5, from_index=2, to_index=0,
                           wrapped=True),
            StrategySwitch(round_index=9, from_index=0, to_index=1,
                           wrapped=False),
        ]
        report = compute_overhead(events)
        assert report.switches == 2
        assert report.wraps == 1

    def test_report_renders_text_and_json(self):
        events = [
            TrialStarted(round_index=0, trial_number=0, candidate_index=0),
            *rounds(2),
            ExecutionFinished(rounds_executed=2, halted=False),
        ]
        report = compute_overhead(events)
        text = report.format()
        assert "total rounds" in text and "per-strategy" in text
        data = report.to_dict()
        assert data["total_rounds"] == 2
        assert data["per_strategy"][0]["index"] == 0


def traced_run(user, server, max_rounds=1200, seed=0):
    sink = MemorySink()
    tracer = Tracer(sink=sink)
    user.tracer = tracer
    result = run_execution(
        user, server, GOAL.world, max_rounds=max_rounds, seed=seed,
        tracer=tracer,
    )
    return result, compute_overhead(sink.events)


class TestLiveUsers:
    def test_compact_user_accounting_matches_state(self):
        position = 3
        user = CompactUniversalUser(
            ListEnumeration(follower_user_class(CODECS)), control_sensing()
        )
        result, report = traced_run(user, SERVERS[position])
        assert GOAL.evaluate(result).achieved
        assert report.total_rounds == result.rounds_executed
        assert report.switches == position
        assert report.settled_index == position
        state = result.rounds[-1].user_state_after
        assert report.switches == state.switches

    def test_compact_position_zero_has_zero_overhead(self):
        user = CompactUniversalUser(
            ListEnumeration(follower_user_class(CODECS)), control_sensing()
        )
        _, report = traced_run(user, SERVERS[0])
        assert report.overhead_rounds == 0
        assert report.overhead_ratio == 0.0

    def test_belief_weighted_user_emits_accountable_trace(self):
        user = BeliefWeightedUniversalUser(
            ListEnumeration(follower_user_class(CODECS)), control_sensing()
        )
        result, report = traced_run(user, SERVERS[2], max_rounds=2400)
        assert report.total_rounds == result.rounds_executed
        assert report.trials >= 1
        assert report.settled_index is not None
        assert report.productive_rounds + report.overhead_rounds == (
            report.total_rounds
        )

    def test_finite_user_endorsed_halt_is_accounted(self):
        from repro.comm.codecs import IdentityCodec
        from repro.servers.password import all_passwords, password_server_class
        from repro.users.control_users import (
            AdvisorFollowingUser,
            password_user_class,
        )

        law = {"red": "blue", "blue": "red"}
        goal = control_goal(law)
        users = password_user_class(
            all_passwords(2), lambda: AdvisorFollowingUser(IdentityCodec())
        )
        user = CompactUniversalUser(
            ListEnumeration(users, label="pw2"), control_sensing()
        )
        servers = password_server_class(2, law)
        sink = MemorySink()
        tracer = Tracer(sink=sink)
        user.tracer = tracer
        result = run_execution(
            user, servers[1], goal.world, max_rounds=6000, seed=0,
            tracer=tracer,
        )
        report = compute_overhead(sink.events)
        assert goal.evaluate(result).achieved
        assert report.settled_index == 1
        assert report.switches == 1
