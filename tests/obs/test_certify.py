"""Run certificates: the engine-free checker and its tampering defences.

The recorded trace + manifest pair is a *certificate*: every claim the
ledger makes should be re-derivable from the trace alone by a checker
that never loads the engine.  These tests certify clean runs (control
class, faulted channel, QBF delegation), then attack the trace one
tampering class at a time — a flipped verdict, a dropped switch event,
reordered rounds, an edited seed, a truncated file — and require
``certify`` to fail each attack with a pointed, line-anchored diagnostic.
"""

from __future__ import annotations

import json
import random
import subprocess
import sys

import pytest

from repro.analysis.runner import sweep
from repro.comm.codecs import IdentityCodec, codec_family
from repro.faults.channel import drop_channel
from repro.faults.verify import verify_robustness
from repro.mathx.modular import Field
from repro.obs.__main__ import main
from repro.obs.certify import (
    CHECKS,
    CertificationError,
    certify_events,
    certify_run,
    certify_sweep,
    certify_trace,
)
from repro.obs.ledger import record_run
from repro.obs.sinks import read_trace
from repro.qbf.generators import random_qbf
from repro.servers.advisors import advisor_server_class
from repro.servers.provers import HonestProverServer
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import follower_user_class
from repro.users.delegation_users import DelegationUser
from repro.worlds.computation import delegation_goal
from repro.worlds.control import control_goal, control_sensing, random_law

LAW = random_law(random.Random(7))
GOAL = control_goal(LAW)
CODECS = codec_family(4)
SERVERS = advisor_server_class(LAW, CODECS)


def make_user():
    return CompactUniversalUser(
        ListEnumeration(follower_user_class(CODECS)), control_sensing()
    )


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One faulted control-class run, recorded and ledgered once."""
    out = tmp_path_factory.mktemp("certify-run")
    return record_run(
        make_user(), SERVERS[1], GOAL,
        max_rounds=600, seed=3, out_dir=out, name="run",
        channel=drop_channel(0.05), certify=True,
    )


@pytest.fixture(scope="module")
def qbf_recorded(tmp_path_factory):
    """One QBF delegation run with an in-trace proof transcript."""
    out = tmp_path_factory.mktemp("certify-qbf")
    field = Field()
    instances = [random_qbf(random.Random(s), 2) for s in (1, 4)]
    return record_run(
        DelegationUser(IdentityCodec(), field),
        HonestProverServer(field),
        delegation_goal(instances),
        max_rounds=300, seed=0, out_dir=out, name="qbf",
        certify=True,
    )


def tampered_copy(recorded, tmp_path, mutate):
    """Copy the trace (without its manifest) and apply one mutation.

    ``mutate`` maps the list of trace lines to a new list.  The manifest
    is deliberately left behind: the tampering tests target the trace's
    *internal* consistency, not the digest cross-check.
    """
    copy = tmp_path / "tampered.jsonl"
    lines = recorded.trace_path.read_text().splitlines()
    copy.write_text("\n".join(mutate(lines)) + "\n")
    return copy


def edit_event(lines, kind, field, value, *, occurrence=0):
    """Rewrite one field of the n-th event of ``kind``, in place."""
    seen = 0
    for i, line in enumerate(lines):
        data = json.loads(line)
        if data.get("kind") != kind:
            continue
        if seen == occurrence:
            data[field] = value
            lines[i] = json.dumps(data)
            return lines
        seen += 1
    raise AssertionError(f"no event of kind {kind!r} (occurrence {occurrence})")


def certify_cli(path, *extra, capsys):
    code = main(["certify", str(path), *extra])
    return code, capsys.readouterr().out


class TestCleanCertification:
    def test_recorded_run_certifies(self, recorded):
        report = certify_trace(recorded.trace_path)
        assert report.ok
        assert report.certifiable
        assert report.issues == ()
        assert report.checks == CHECKS
        assert report.trace_sha256 == recorded.manifest.trace_sha256

    def test_cli_exit_zero_and_status_line(self, recorded, capsys):
        code, out = certify_cli(recorded.trace_path, capsys=capsys)
        assert code == 0
        assert "CERTIFIED" in out

    def test_cli_json_document(self, recorded, capsys):
        code, out = certify_cli(
            recorded.trace_path,
            "--manifest", str(recorded.manifest_path),
            "--format", "json",
            capsys=capsys,
        )
        assert code == 0
        document = json.loads(out)
        assert document["certified"] is True
        assert document["trace_sha256"] == recorded.manifest.trace_sha256
        assert document["issues"] == []

    def test_certify_run_accepts_the_pair(self, recorded):
        report = certify_run(recorded.trace_path, recorded.manifest_path)
        assert report.ok

    def test_certify_events_on_in_memory_stream(self, recorded):
        header, events = read_trace(recorded.trace_path)
        report = certify_events(events, header=header)
        assert report.ok
        assert report.events == len(events)

    def test_missing_trace_is_a_usage_error(self, tmp_path, capsys):
        assert main(["certify", str(tmp_path / "absent.jsonl")]) == 2


class TestTampering:
    """Each ISSUE tampering class must fail with a line-anchored message."""

    def assert_rejected(self, path, check, fragment, capsys):
        code, out = certify_cli(path, capsys=capsys)
        assert code == 1
        assert "FAILED" in out
        # Line-anchored: at least one issue cites the file (with a line).
        assert f"{path}:" in out
        assert f"[{check}]" in out
        assert fragment in out

    def test_flipped_verdict(self, recorded, tmp_path, capsys):
        path = tampered_copy(
            recorded, tmp_path,
            lambda lines: edit_event(lines, "goal-verdict", "achieved", False),
        )
        self.assert_rejected(
            path, "goal-verdict", "settle arithmetic derives True", capsys
        )

    def test_dropped_switch_event(self, recorded, tmp_path, capsys):
        path = tampered_copy(
            recorded, tmp_path,
            lambda lines: [
                line for line in lines
                if json.loads(line).get("kind") != "strategy-switch"
            ],
        )
        self.assert_rejected(
            path, "switch-legality", "without a justifying strategy-switch",
            capsys,
        )

    def test_reordered_rounds(self, recorded, tmp_path, capsys):
        def swap_rounds(lines):
            rounds = [
                i for i, line in enumerate(lines)
                if json.loads(line).get("kind") == "round-executed"
            ]
            a, b = rounds[10], rounds[11]
            lines[a], lines[b] = lines[b], lines[a]
            return lines

        path = tampered_copy(recorded, tmp_path, swap_rounds)
        self.assert_rejected(path, "stream", "out of order", capsys)

    def test_edited_seed(self, recorded, tmp_path, capsys):
        path = tampered_copy(
            recorded, tmp_path,
            lambda lines: edit_event(lines, "execution-started", "seed", 4),
        )
        self.assert_rejected(path, "seed-chain", "rng digest mismatch", capsys)

    def test_truncated_file(self, recorded, tmp_path, capsys):
        copy = tmp_path / "truncated.jsonl"
        text = recorded.trace_path.read_text()
        copy.write_text(text[: int(len(text) * 0.7)])
        self.assert_rejected(
            copy, "stream", "trace unreadable past this point", capsys
        )
        _, out = certify_cli(copy, capsys=capsys)
        assert "no execution-finished event" in out

    def test_digest_mismatch_against_manifest(self, recorded, tmp_path, capsys):
        # Tamper the trace but keep the genuine manifest: even if a future
        # attack fooled every semantic check, the digest cross-check trips.
        trace = tampered_copy(
            recorded, tmp_path,
            lambda lines: edit_event(lines, "goal-verdict", "achieved", False),
        )
        code, out = certify_cli(
            trace, "--manifest", str(recorded.manifest_path), capsys=capsys
        )
        assert code == 1
        assert "[manifest]" in out
        assert "sha256" in out

    def test_certify_run_raises_on_tampered_trace(self, recorded, tmp_path):
        trace = tampered_copy(
            recorded, tmp_path,
            lambda lines: edit_event(lines, "execution-started", "seed", 4),
        )
        with pytest.raises(CertificationError, match="seed-chain"):
            certify_run(trace)


class TestLegacyTraces:
    def test_schema_minor_zero_is_uncertifiable_not_an_error(
        self, tmp_path, capsys
    ):
        path = tmp_path / "legacy.jsonl"
        path.write_text(json.dumps({"trace_schema": 1}) + "\n")
        code, out = certify_cli(path, capsys=capsys)
        assert code == 1
        assert "UNCERTIFIABLE" in out
        assert "predates the certificate evidence" in out

    def test_headerless_trace_is_uncertifiable(self, tmp_path):
        path = tmp_path / "bare.jsonl"
        path.write_text("")
        report = certify_trace(path)
        assert not report.certifiable
        assert "no schema header" in report.reason


class TestProofCertification:
    def test_qbf_delegation_run_certifies(self, qbf_recorded):
        report = certify_trace(qbf_recorded.trace_path)
        assert report.ok
        _, events = read_trace(qbf_recorded.trace_path)
        assert any(e.kind == "proof-round" for e in events)

    def test_tampered_proof_coefficients_are_rejected(
        self, qbf_recorded, tmp_path, capsys
    ):
        def corrupt(lines):
            for i, line in enumerate(lines):
                data = json.loads(line)
                if data.get("kind") != "proof-round":
                    continue
                # Bump the constant coefficient ("" is the zero poly).
                coeffs = [int(c) for c in data["poly"].split(",") if c]
                coeffs = [coeffs[0] + 1, *coeffs[1:]] if coeffs else [1]
                data["poly"] = ",".join(str(c) for c in coeffs)
                lines[i] = json.dumps(data)
                return lines
            raise AssertionError("no proof-round event")

        path = tampered_copy(qbf_recorded, tmp_path, corrupt)
        code, out = certify_cli(path, capsys=capsys)
        assert code == 1
        assert "[proof]" in out


class TestEngineFreedom:
    def test_certify_subprocess_never_imports_the_engine(self, recorded):
        """The checker is trusted *because* it cannot run the engine.

        Certify a real faulted trace in a fresh interpreter and assert no
        ``repro.core`` module (nor the universal users) was ever loaded —
        the replay re-derives verdicts from the event stream alone.
        """
        code = (
            "import sys\n"
            "from repro.obs.certify import certify_trace\n"
            f"report = certify_trace({str(recorded.trace_path)!r})\n"
            "assert report.ok, report.format()\n"
            "banned = [m for m in sys.modules\n"
            "          if m.startswith('repro.core') or\n"
            "             m.startswith('repro.universal')]\n"
            "assert not banned, banned\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
        )
        assert completed.returncode == 0, completed.stderr


class TestLedgerIntegration:
    def test_record_run_certify_flag_rejects_nothing_on_clean_runs(
        self, recorded
    ):
        # The module fixtures already ran record_run(certify=True); this
        # documents that the flag is what certified them.
        assert recorded.manifest.trace_sha256 is not None

    def test_sweep_certify_requires_ledger_dir(self):
        with pytest.raises(ValueError, match="requires ledger_dir"):
            sweep(
                make_user(), SERVERS[:1], GOAL,
                seeds=(3,), max_rounds=600, certify=True,
            )

    def test_sweep_certify_passes_and_tampering_trips_the_digest(
        self, tmp_path
    ):
        ledger = tmp_path / "ledger"
        sweep(
            make_user(), SERVERS[:2], GOAL,
            seeds=(3,), max_rounds=600, ledger_dir=ledger, certify=True,
        )
        index = json.loads((ledger / "sweep.json").read_text())
        assert index["cells_sha256"]
        # certify_sweep on the untouched ledger is clean...
        certify_sweep(ledger)
        # ...and any byte change to a cell manifest breaks the digest.
        cell = sorted(ledger.glob("cell-*.json"))[0]
        cell.write_text(cell.read_text() + "\n")
        with pytest.raises(CertificationError, match="digest mismatch"):
            certify_sweep(ledger)

    def test_sweep_certify_detects_missing_cell(self, tmp_path):
        ledger = tmp_path / "ledger"
        sweep(
            make_user(), SERVERS[:1], GOAL,
            seeds=(3,), max_rounds=600, ledger_dir=ledger, certify=True,
        )
        cell = sorted(ledger.glob("cell-*.json"))[0]
        cell.unlink()
        with pytest.raises(CertificationError):
            certify_sweep(ledger)

    def test_verify_robustness_certify_flag(self):
        report = verify_robustness(
            make_user(), SERVERS[:1], GOAL, control_sensing(),
            grid=[None, drop_channel(0.05)], seeds=(3,), max_rounds=200,
            certify=True,
        )
        assert report.safe
