"""Live telemetry: sampler stream, Prometheus exposition, admin plane, top.

The contract under test: a metrics stream's per-tick counter deltas sum
back to the accumulator's final totals (even when the process is
SIGKILLed mid-run and the final line is torn), the Prometheus rendering
round-trips through the shared parser, and the admin endpoint serves
exactly its registered routes over loopback TCP or a UNIX socket.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.obs.counters import CounterSet, Histogram
from repro.obs.live import (
    METRICS_SCHEMA,
    AdminServer,
    MetricsSampler,
    MetricsSchemaError,
    build_view,
    cumulative_counters,
    fetch_admin,
    final_histograms,
    json_route,
    parse_prometheus,
    read_metrics,
    render_prometheus,
    render_top,
    scrape_admin,
    top_frames,
    view_from_samples,
    write_metrics,
)


def run(coroutine):
    return asyncio.run(coroutine)


class TestMetricsSampler:
    def test_header_is_written_at_construction(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        sampler = MetricsSampler(
            CounterSet(), path, interval_s=0.5, header={"run": "r-1"}
        )
        try:
            header, samples = read_metrics(path)
        finally:
            sampler.close()
        assert header["metrics_schema"] == METRICS_SCHEMA
        assert header["interval_s"] == 0.5
        assert header["run"] == "r-1"
        assert samples == []

    def test_deltas_sum_to_final_totals(self, tmp_path):
        counters = CounterSet()
        path = tmp_path / "metrics.jsonl"
        sampler = MetricsSampler(counters, path)
        counters.inc("serve.rounds", 5)
        sampler.tick()
        counters.inc("serve.rounds", 7)
        counters.inc("serve.sessions_settled")
        sampler.close()  # final tick captures the tail deltas
        _, samples = read_metrics(path)
        totals = cumulative_counters(samples)
        assert totals["serve.rounds"] == counters.get("serve.rounds") == 12
        assert totals["serve.sessions_settled"] == 1

    def test_zero_deltas_are_omitted_from_samples(self, tmp_path):
        counters = CounterSet()
        counters.inc("serve.rounds", 3)
        sampler = MetricsSampler(counters, tmp_path / "m.jsonl")
        first = sampler.tick()
        second = sampler.tick()  # nothing moved between ticks
        sampler.close()
        assert first["counters"] == {"serve.rounds": 3}
        assert second["counters"] == {}

    def test_histograms_are_cumulative_snapshots(self, tmp_path):
        counters = CounterSet()
        path = tmp_path / "m.jsonl"
        sampler = MetricsSampler(counters, path)
        counters.observe("serve.session_wall_ms", 4.0)
        sampler.tick()
        counters.observe("serve.session_wall_ms", 16.0)
        sampler.close()
        _, samples = read_metrics(path)
        final = final_histograms(samples)["serve.session_wall_ms"]
        restored = Histogram.from_snapshot("serve.session_wall_ms", final)
        assert restored.count == 2
        assert restored.quantile(1.0) == 16.0

    def test_every_tick_is_flushed_to_disk(self, tmp_path):
        counters = CounterSet()
        path = tmp_path / "m.jsonl"
        sampler = MetricsSampler(counters, path)
        counters.inc("serve.rounds")
        sampler.tick()
        # Read *before* close: the flush contract makes the tick durable.
        _, samples = read_metrics(path)
        assert len(samples) == 1
        sampler.close()

    def test_gauges_and_monotonic_seq(self, tmp_path):
        levels = {"open_sessions": 2.0}
        ticks = iter([0.0, 1.0, 2.0, 3.0])
        sampler = MetricsSampler(
            CounterSet(),
            tmp_path / "m.jsonl",
            gauges=lambda: levels,
            clock=lambda: next(ticks),
        )
        first = sampler.tick()
        levels["open_sessions"] = 5.0
        second = sampler.tick()
        sampler.close()
        assert (first["seq"], second["seq"]) == (1, 2)
        assert first["gauges"] == {"open_sessions": 2.0}
        assert second["gauges"] == {"open_sessions": 5.0}
        assert first["uptime_s"] == 1.0

    def test_close_is_idempotent(self, tmp_path):
        sampler = MetricsSampler(CounterSet(), tmp_path / "m.jsonl")
        sampler.close()
        sampler.close()
        assert sampler.closed

    def test_rejects_non_positive_interval(self, tmp_path):
        with pytest.raises(ValueError):
            MetricsSampler(CounterSet(), tmp_path / "m.jsonl", interval_s=0.0)

    def test_async_run_ticks_until_cancelled(self, tmp_path):
        counters = CounterSet()
        path = tmp_path / "m.jsonl"

        async def go():
            sampler = MetricsSampler(counters, path, interval_s=0.01)
            task = asyncio.ensure_future(sampler.run())
            counters.inc("serve.rounds", 2)
            await asyncio.sleep(0.05)
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
            sampler.close()

        run(go())
        _, samples = read_metrics(path)
        assert len(samples) >= 2
        assert cumulative_counters(samples)["serve.rounds"] == 2


class TestReadMetrics:
    def test_torn_final_line_is_dropped(self, tmp_path):
        counters = CounterSet()
        path = tmp_path / "m.jsonl"
        sampler = MetricsSampler(counters, path)
        counters.inc("serve.rounds", 4)
        sampler.tick()
        sampler.close()
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "counters": {"serve.rou')  # SIGKILL tear
        _, samples = read_metrics(path)
        assert cumulative_counters(samples)["serve.rounds"] == 4

    def test_malformed_mid_stream_line_raises(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(
            '{"metrics_schema": 1}\nnot json\n{"seq": 1}\n', encoding="utf-8"
        )
        with pytest.raises(MetricsSchemaError):
            read_metrics(path)

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text('{"seq": 1}\n', encoding="utf-8")
        with pytest.raises(MetricsSchemaError):
            read_metrics(path)

    def test_newer_schema_major_raises(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(
            json.dumps({"metrics_schema": METRICS_SCHEMA + 1}) + "\n",
            encoding="utf-8",
        )
        with pytest.raises(MetricsSchemaError):
            read_metrics(path)


class TestSigkillDurability:
    def test_killed_sampler_leaves_a_readable_stream(self, tmp_path):
        """SIGKILL the sampling process mid-run: the stream must still
        parse, and its deltas must sum to a prefix of the true totals —
        at most one interval short, never corrupt."""
        path = tmp_path / "m.jsonl"
        script = textwrap.dedent(
            """
            import sys
            from repro.obs.counters import CounterSet
            from repro.obs.live import MetricsSampler

            counters = CounterSet()
            sampler = MetricsSampler(counters, sys.argv[1], interval_s=1.0)
            for i in range(10_000):
                counters.inc("serve.rounds")
                sampler.tick()
                if i == 50:
                    print("ready", flush=True)
            """
        )
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(path)],
            stdout=subprocess.PIPE,
            env=env,
        )
        try:
            assert proc.stdout is not None
            assert proc.stdout.readline().strip() == b"ready"
            proc.kill()  # SIGKILL: no atexit, no flush-on-exit, no mercy
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == -signal.SIGKILL
        _, samples = read_metrics(path)
        totals = cumulative_counters(samples)
        assert totals["serve.rounds"] >= 50
        assert totals["serve.rounds"] == samples[-1]["seq"]


class TestWriteMetrics:
    def test_composes_over_existing_keys(self, tmp_path):
        path = tmp_path / "engine.json"
        path.write_text(json.dumps({"parked": "value", "rounds": 1}))
        merged = write_metrics(path, {"rounds": 9})
        on_disk = json.loads(path.read_text())
        assert on_disk == merged
        assert on_disk["parked"] == "value"  # compose, don't clobber
        assert on_disk["rounds"] == 9
        assert on_disk["metrics_schema"] == METRICS_SCHEMA
        assert "git_sha" in on_disk

    def test_corrupt_existing_file_is_replaced(self, tmp_path):
        path = tmp_path / "engine.json"
        path.write_text("{ not json")
        merged = write_metrics(path, {"rounds": 2})
        assert merged["rounds"] == 2


class TestPrometheus:
    def stats(self):
        counters = CounterSet()
        counters.inc("serve.rounds", 12)
        for v in (2.0, 4.0, 4.0):
            counters.observe("serve.session_wall_ms", v)
        return counters.snapshot()

    def test_counter_and_gauge_exposition(self):
        text = render_prometheus(self.stats(), gauges={"open_sessions": 3.0})
        samples = parse_prometheus(text)
        assert samples["repro_serve_rounds_total"] == 12.0
        assert samples["repro_open_sessions"] == 3.0

    def test_histogram_buckets_are_cumulative(self):
        samples = parse_prometheus(render_prometheus(self.stats()))
        # 2.0 sits at bucket upper 2.0, the two 4.0s at upper 4.0.
        assert samples['repro_serve_session_wall_ms_bucket{le="2.0"}'] == 1.0
        assert samples['repro_serve_session_wall_ms_bucket{le="4.0"}'] == 3.0
        assert samples['repro_serve_session_wall_ms_bucket{le="+Inf"}'] == 3.0
        assert samples["repro_serve_session_wall_ms_count"] == 3.0
        assert samples["repro_serve_session_wall_ms_sum"] == 10.0

    def test_low_bucket_surfaces_as_le_zero(self):
        counters = CounterSet()
        counters.observe("h", -1.0)
        counters.observe("h", 8.0)
        samples = parse_prometheus(render_prometheus(counters.snapshot()))
        assert samples['repro_h_bucket{le="0"}'] == 1.0
        assert samples['repro_h_bucket{le="+Inf"}'] == 2.0

    def test_parse_rejects_garbage(self):
        with pytest.raises(MetricsSchemaError):
            parse_prometheus("repro_x_total not-a-number\n")


class TestAdminServer:
    def routes(self):
        return {
            "/status": json_route(lambda: {"ok": True}),
            "/metrics": lambda: ("text/plain; version=0.0.4", "repro_up 1\n"),
        }

    def test_tcp_ephemeral_port_and_scrape(self):
        async def go():
            server = AdminServer(self.routes())
            address = await server.start("127.0.0.1:0")
            assert address != "127.0.0.1:0"  # resolved to the real port
            body = await fetch_admin(address, "/status")
            metrics = await fetch_admin(address, "/metrics")
            await server.aclose()
            return body, metrics

        body, metrics = run(go())
        assert json.loads(body) == {"ok": True}
        assert parse_prometheus(metrics)["repro_up"] == 1.0

    def test_unknown_route_is_404_listing_known(self):
        async def go():
            server = AdminServer(self.routes())
            address = await server.start("127.0.0.1:0")
            try:
                await fetch_admin(address, "/nope")
            finally:
                await server.aclose()

        with pytest.raises(MetricsSchemaError, match="404"):
            run(go())

    def test_non_loopback_host_is_refused(self):
        async def go():
            server = AdminServer(self.routes())
            with pytest.raises(ValueError, match="loopback"):
                await server.start("0.0.0.0:0")

        run(go())

    def test_unix_socket_round_trip(self, tmp_path):
        spec = str(tmp_path / "admin.sock")

        async def go():
            server = AdminServer(self.routes())
            address = await server.start(spec)
            body = await fetch_admin(address, "/status")
            await server.aclose()
            return address, body

        address, body = run(go())
        assert address == spec
        assert json.loads(body) == {"ok": True}
        assert not os.path.exists(spec)  # aclose cleans up the socket file

    def test_blocking_scrape_from_another_thread(self):
        async def go():
            server = AdminServer(self.routes())
            address = await server.start("127.0.0.1:0")
            body = await asyncio.get_event_loop().run_in_executor(
                None, scrape_admin, address, "/status"
            )
            await server.aclose()
            return body

        assert json.loads(run(go())) == {"ok": True}


class TestTop:
    def sample_stream(self, tmp_path):
        counters = CounterSet()
        path = tmp_path / "m.jsonl"
        sampler = MetricsSampler(counters, path, clock=iter([0.0, 1.0, 2.0]).__next__)
        counters.inc("serve.rounds", 10)
        counters.observe("serve.session_wall_ms", 8.0)
        sampler.tick()
        counters.inc("serve.rounds", 6)
        sampler.close()
        return path

    def test_view_from_samples_folds_deltas(self, tmp_path):
        _, samples = read_metrics(self.sample_stream(tmp_path))
        view = view_from_samples(samples)
        assert view["counters"]["serve.rounds"] == 16
        assert view["seq"] == 2

    def test_render_top_shows_totals_and_quantiles(self, tmp_path):
        _, samples = read_metrics(self.sample_stream(tmp_path))
        frame = render_top(view_from_samples(samples))
        assert "serve.rounds" in frame
        assert "16" in frame
        assert "serve.session_wall_ms" in frame

    def test_rates_use_the_previous_frame(self):
        previous = build_view({"serve.rounds": 10}, {}, uptime_s=1.0)
        current = build_view({"serve.rounds": 30}, {}, uptime_s=3.0)
        frame = render_top(current, previous)
        assert "10.0" in frame  # (30 - 10) / (3.0 - 1.0)

    def test_top_frames_file_mode(self, tmp_path):
        path = self.sample_stream(tmp_path)
        frames = []
        top_frames(
            str(path),
            frames=2,
            follow=True,
            interval_s=0.0,
            write=frames.append,
            sleep=lambda _s: None,
        )
        rendered = [f for f in frames if "serve.rounds" in f]
        assert len(rendered) == 2
