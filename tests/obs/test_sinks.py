"""Sinks: ring-buffer semantics and deterministic JSONL round-trips."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    TRACE_SCHEMA,
    TRACE_SCHEMA_MINOR,
    JsonlSink,
    MemorySink,
    NullSink,
    RoundExecuted,
    SensingIndication,
    TraceSchemaError,
    iter_trace,
    iter_trace_numbered,
    read_jsonl,
    read_trace,
)

EVENTS = [
    RoundExecuted(round_index=i, messages=1, message_bytes=4, halted=False)
    for i in range(5)
]


class TestMemorySink:
    def test_keeps_events_in_order(self):
        sink = MemorySink()
        for e in EVENTS:
            sink.emit(e)
        assert sink.events == EVENTS

    def test_capacity_evicts_oldest(self):
        sink = MemorySink(capacity=3)
        for e in EVENTS:
            sink.emit(e)
        assert sink.events == EVENTS[-3:]

    def test_of_kind_filters(self):
        sink = MemorySink()
        sink.emit(EVENTS[0])
        sink.emit(SensingIndication(round_index=0, candidate_index=0, positive=True))
        assert sink.of_kind(SensingIndication) == [
            SensingIndication(round_index=0, candidate_index=0, positive=True)
        ]
        assert len(sink.of_kind(RoundExecuted)) == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            MemorySink(capacity=0)


class TestJsonlSink:
    def test_write_parse_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            for e in EVENTS:
                sink.emit(e)
        assert read_jsonl(path) == EVENTS

    def test_field_order_is_deterministic(self, tmp_path):
        """Two traces of the same events are byte-identical."""
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            with JsonlSink(path) as sink:
                for e in EVENTS:
                    sink.emit(e)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_lines_are_compact_json_with_kind_first(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(EVENTS[0])
        header_line, event_line = path.read_text().strip().splitlines()
        assert json.loads(header_line) == {
            "trace_schema": TRACE_SCHEMA,
            "trace_schema_minor": TRACE_SCHEMA_MINOR,
        }
        assert event_line.startswith('{"kind":"round-executed"')
        assert json.loads(event_line)["round_index"] == 0

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.close()
        sink.close()


class TestTraceSchema:
    def test_header_round_trips_with_extras(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path, header={"run_id": "abc123"}) as sink:
            sink.emit(EVENTS[0])
        header, events = read_trace(path)
        assert header == {
            "trace_schema": TRACE_SCHEMA,
            "trace_schema_minor": TRACE_SCHEMA_MINOR,
            "run_id": "abc123",
        }
        assert events == [EVENTS[0]]

    def test_header_extras_cannot_shadow_schema(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        JsonlSink(
            path, header={"trace_schema": 99, "trace_schema_minor": 99}
        ).close()
        header, _ = read_trace(path)
        assert header["trace_schema"] == TRACE_SCHEMA
        assert header["trace_schema_minor"] == TRACE_SCHEMA_MINOR

    def test_headerless_file_reads_as_legacy(self, tmp_path):
        """Pre-versioning traces (first line is an event) still parse."""
        path = tmp_path / "legacy.jsonl"
        path.write_text(
            json.dumps(EVENTS[0].to_dict(), separators=(",", ":")) + "\n"
        )
        header, events = read_trace(path)
        assert header == {}
        assert events == [EVENTS[0]]

    def test_newer_major_is_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"trace_schema": TRACE_SCHEMA + 1}) + "\n")
        with pytest.raises(TraceSchemaError, match="newer than the supported"):
            read_trace(path)

    def test_malformed_schema_is_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"trace_schema": "one"}\n')
        with pytest.raises(TraceSchemaError, match="malformed"):
            read_trace(path)


class TestIterTrace:
    def write_trace(self, path):
        with JsonlSink(path) as sink:
            for e in EVENTS:
                sink.emit(e)

    def test_streams_same_events_as_read_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self.write_trace(path)
        header, stream = iter_trace(path)
        assert header["trace_schema"] == TRACE_SCHEMA
        assert list(stream) == read_trace(path)[1]

    def test_events_parse_lazily(self, tmp_path):
        """A bad line deep in the file only raises when reached."""
        path = tmp_path / "trace.jsonl"
        self.write_trace(path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("not json\n")
        header, stream = iter_trace(path)
        for _ in range(len(EVENTS)):
            next(stream)  # the good prefix streams fine
        with pytest.raises(TraceSchemaError, match="not valid JSON"):
            next(stream)

    def test_numbered_yields_one_based_file_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self.write_trace(path)
        _, numbered = iter_trace_numbered(path)
        lines = [number for number, _ in numbered]
        # Line 1 is the header, so events start at line 2.
        assert lines == list(range(2, 2 + len(EVENTS)))

    def test_headerless_file_numbers_from_one(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        path.write_text(
            json.dumps(EVENTS[0].to_dict(), separators=(",", ":")) + "\n"
        )
        header, numbered = iter_trace_numbered(path)
        assert header == {}
        assert [number for number, _ in numbered] == [1]

    def test_header_errors_raise_eagerly(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"trace_schema": TRACE_SCHEMA + 1}) + "\n")
        with pytest.raises(TraceSchemaError, match="newer than the supported"):
            iter_trace(path)


class TestLineAnchoredErrors:
    def test_bad_json_carries_path_and_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"trace_schema": 1}\n\n{oops\n')
        with pytest.raises(TraceSchemaError, match=r"bad\.jsonl:3: not valid JSON"):
            read_trace(path)

    def test_unknown_kind_carries_path_and_line(self, tmp_path):
        path = tmp_path / "unknown.jsonl"
        path.write_text('{"trace_schema": 1}\n{"kind": "martian"}\n')
        with pytest.raises(
            TraceSchemaError, match=r"unknown\.jsonl:2: unknown or missing"
        ):
            read_trace(path)

    def test_bad_payload_carries_path_and_line(self, tmp_path):
        path = tmp_path / "payload.jsonl"
        path.write_text(
            '{"trace_schema": 1}\n{"kind": "round-executed", "bogus": 1}\n'
        )
        with pytest.raises(
            TraceSchemaError, match=r"payload\.jsonl:2: malformed event payload"
        ) as excinfo:
            read_trace(path)
        assert excinfo.value.line == 2

    def test_non_object_line_is_rejected(self, tmp_path):
        path = tmp_path / "scalar.jsonl"
        path.write_text('{"trace_schema": 1}\n42\n')
        with pytest.raises(TraceSchemaError, match="not a JSON object"):
            read_trace(path)


class TestNullSink:
    def test_swallows_everything(self):
        sink = NullSink()
        for e in EVENTS:
            sink.emit(e)
        sink.close()
