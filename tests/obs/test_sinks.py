"""Sinks: ring-buffer semantics and deterministic JSONL round-trips."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    JsonlSink,
    MemorySink,
    NullSink,
    RoundExecuted,
    SensingIndication,
    read_jsonl,
)

EVENTS = [
    RoundExecuted(round_index=i, messages=1, message_bytes=4, halted=False)
    for i in range(5)
]


class TestMemorySink:
    def test_keeps_events_in_order(self):
        sink = MemorySink()
        for e in EVENTS:
            sink.emit(e)
        assert sink.events == EVENTS

    def test_capacity_evicts_oldest(self):
        sink = MemorySink(capacity=3)
        for e in EVENTS:
            sink.emit(e)
        assert sink.events == EVENTS[-3:]

    def test_of_kind_filters(self):
        sink = MemorySink()
        sink.emit(EVENTS[0])
        sink.emit(SensingIndication(round_index=0, candidate_index=0, positive=True))
        assert sink.of_kind(SensingIndication) == [
            SensingIndication(round_index=0, candidate_index=0, positive=True)
        ]
        assert len(sink.of_kind(RoundExecuted)) == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            MemorySink(capacity=0)


class TestJsonlSink:
    def test_write_parse_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            for e in EVENTS:
                sink.emit(e)
        assert read_jsonl(path) == EVENTS

    def test_field_order_is_deterministic(self, tmp_path):
        """Two traces of the same events are byte-identical."""
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            with JsonlSink(path) as sink:
                for e in EVENTS:
                    sink.emit(e)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_lines_are_compact_json_with_kind_first(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(EVENTS[0])
        line = path.read_text().strip()
        assert line.startswith('{"kind":"round-executed"')
        assert json.loads(line)["round_index"] == 0

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.close()
        sink.close()


class TestNullSink:
    def test_swallows_everything(self):
        sink = NullSink()
        for e in EVENTS:
            sink.emit(e)
        sink.close()
