"""The ``python -m repro.obs`` CLI: exit codes, formats, malformed inputs."""

from __future__ import annotations

import json

import pytest

from repro.obs import JsonlSink
from repro.obs.__main__ import main
from repro.obs.events import (
    ExecutionFinished,
    ExecutionStarted,
    RoundExecuted,
    SensingIndication,
    StrategySwitch,
    TrialFinished,
    TrialStarted,
)

EVENTS = [
    ExecutionStarted(user="u", server="s", world="w", max_rounds=10, seed=0),
    TrialStarted(round_index=0, trial_number=0, candidate_index=0),
    RoundExecuted(round_index=0, messages=2, message_bytes=8, halted=False),
    SensingIndication(round_index=0, candidate_index=0, positive=False),
    TrialFinished(round_index=0, trial_number=0, candidate_index=0,
                  rounds_used=1, reason="evicted"),
    StrategySwitch(round_index=0, from_index=0, to_index=1, wrapped=False),
    TrialStarted(round_index=1, trial_number=1, candidate_index=1),
    RoundExecuted(round_index=1, messages=2, message_bytes=8, halted=False),
    RoundExecuted(round_index=2, messages=2, message_bytes=8, halted=False),
    ExecutionFinished(rounds_executed=3, halted=False),
]


@pytest.fixture
def trace(tmp_path):
    path = tmp_path / "trace.jsonl"
    with JsonlSink(path) as sink:
        for event in EVENTS:
            sink.emit(event)
    return path


def write_history(path, *metric_dicts):
    with path.open("w", encoding="utf-8") as handle:
        for metrics in metric_dicts:
            handle.write(json.dumps({"manifest": {}, "metrics": metrics}) + "\n")


class TestSummarize:
    def test_text_output(self, trace, capsys):
        assert main(["summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "u vs s" in out
        assert "rounds     : 3" in out
        assert "round-executed" in out

    def test_json_output(self, trace, capsys):
        assert main(["summarize", str(trace), "--format", "json"]) == 0
        documents = json.loads(capsys.readouterr().out)
        assert documents[0]["rounds"] == 3
        assert documents[0]["counts"]["round-executed"] == 3
        assert documents[0]["trace_schema"] == 1

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_trace_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        assert main(["summarize", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_event_kind_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "unknown.jsonl"
        bad.write_text('{"trace_schema": 1}\n{"kind": "martian"}\n')
        assert main(["summarize", str(bad)]) == 2

    def test_future_schema_exits_2(self, tmp_path, capsys):
        future = tmp_path / "future.jsonl"
        future.write_text('{"trace_schema": 99}\n')
        assert main(["summarize", str(future)]) == 2
        assert "newer than the supported" in capsys.readouterr().err


class TestOverhead:
    def test_text_output(self, trace, capsys):
        assert main(["overhead", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "total rounds      : 3" in out
        assert "settled index     : 1" in out

    def test_json_output_matches_library(self, trace, capsys):
        from repro.obs.overhead import compute_overhead
        from repro.obs.sinks import read_jsonl

        assert main(["overhead", str(trace), "--format", "json"]) == 0
        documents = json.loads(capsys.readouterr().out)
        expected = compute_overhead(read_jsonl(trace)).to_dict()
        assert documents[0] == {"path": str(trace), **expected}


class TestTimeline:
    def test_renders_one_line_per_event(self, trace, capsys):
        assert main(["timeline", str(trace)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == len(EVENTS)
        assert "execution-started" in lines[0]
        assert "0 -> 1" in lines[5]

    def test_limit_truncates(self, trace, capsys):
        assert main(["timeline", str(trace), "--limit", "2"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert "truncated" in lines[-1]


class TestDiff:
    def test_identical_traces_diff_clean(self, trace, capsys):
        code = main(["diff", str(trace), str(trace), "--fail-on", "rounds"])
        assert code == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_regression_exits_1(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        write_history(history, {"rounds": 10}, {"rounds": 15})
        code = main(["diff", "--history", str(history), "--fail-on", "rounds"])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_tolerance_allows_small_increase(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        write_history(history, {"rounds": 100}, {"rounds": 104})
        assert main([
            "diff", "--history", str(history),
            "--fail-on", "rounds", "--tolerance", "5",
        ]) == 0

    def test_unwatched_increase_is_reported_not_failed(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        write_history(history, {"rounds": 10, "other": 1}, {"rounds": 15, "other": 1})
        assert main(["diff", "--history", str(history)]) == 0
        assert "10 -> 15" in capsys.readouterr().out

    def test_history_diff_uses_two_newest(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        write_history(history, {"x": 1}, {"x": 2}, {"x": 3})
        assert main(["diff", "--history", str(history), "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["metrics"][0]["old"] == 2
        assert data["metrics"][0]["new"] == 3

    def test_single_entry_history_exits_2(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        write_history(history, {"x": 1})
        assert main(["diff", "--history", str(history)]) == 2
        assert "at least 2" in capsys.readouterr().err

    def test_unknown_fail_on_metric_exits_2(self, trace, capsys):
        assert main([
            "diff", str(trace), str(trace), "--fail-on", "nope"
        ]) == 2
        assert "absent from both inputs" in capsys.readouterr().err

    def test_manifest_diff(self, tmp_path, capsys):
        from repro.obs.ledger import RunManifest, write_manifest

        manifest = RunManifest(
            kind="run", goal="g", user="u", server="s", channel=None,
            recording="full", seeds=(0,), max_rounds=10, rounds=5,
            achieved=1, halted=1, wall_time_s=0.1, cpu_time_s=0.1,
        )
        a = write_manifest(manifest, tmp_path / "a.json")
        b = write_manifest(manifest, tmp_path / "b.json")
        assert main(["diff", str(a), str(b), "--fail-on", "rounds"]) == 0

    def test_wrong_arity_exits_2(self, trace):
        with pytest.raises(SystemExit) as excinfo:
            main(["diff", str(trace)])
        assert excinfo.value.code == 2

    def test_unclassifiable_input_exits_2(self, tmp_path, capsys):
        odd = tmp_path / "data.txt"
        odd.write_text("hello")
        assert main(["diff", str(odd), str(odd)]) == 2
        assert "cannot classify" in capsys.readouterr().err
