"""Tracing wired through the engine, the universal users, and the sweeps.

The contracts under test:

* the traced event stream is a faithful account of the execution — round
  events match :class:`RoundRecord` order, counters agree with
  ``ExecutionResult.rounds_executed`` and ``RunMetrics.switches``;
* tracing is invisible — a traced run and an untraced run of the same
  seed produce identical results, and ``tracer=None`` stays deterministic;
* the JSONL trace of a universal run replays to the same statistics.
"""

from __future__ import annotations

import random

from repro.analysis.metrics import collect_metrics
from repro.analysis.runner import sweep
from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.core.sensing import ConstantSensing, GraceSensing
from repro.obs import (
    ExecutionFinished,
    ExecutionStarted,
    GraceSuppressed,
    JsonlSink,
    MemorySink,
    MessageSent,
    NoopTracer,
    RoundExecuted,
    SensingIndication,
    StrategySwitch,
    Tracer,
    TrialFinished,
    TrialStarted,
    read_jsonl,
)
from repro.servers.advisors import advisor_server_class
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.universal.finite import FiniteUniversalUser
from repro.users.control_users import follower_user_class
from repro.worlds.control import control_goal, control_sensing, random_law

CODECS = codec_family(4)
LAW = random_law(random.Random(1))
GOAL = control_goal(LAW)
SERVERS = advisor_server_class(LAW, CODECS)
HORIZON = 600


def compact_universal(tracer=None):
    return CompactUniversalUser(
        ListEnumeration(follower_user_class(CODECS)), control_sensing(),
        tracer=tracer,
    )


def traced_run(server_index=-1, *, seed=0, sink=None):
    tracer = Tracer(sink=sink if sink is not None else MemorySink())
    user = compact_universal(tracer)
    result = run_execution(
        user, SERVERS[server_index], GOAL.world,
        max_rounds=HORIZON, seed=seed, tracer=tracer,
    )
    return result, tracer


class TestEngineEventStream:
    def test_bracketed_by_start_and_finish(self):
        result, tracer = traced_run()
        events = tracer.sink.events
        assert isinstance(events[0], ExecutionStarted)
        assert isinstance(events[-1], ExecutionFinished)
        assert events[-1].rounds_executed == result.rounds_executed

    def test_round_events_match_round_record_order(self):
        result, tracer = traced_run()
        round_events = tracer.sink.of_kind(RoundExecuted)
        assert [e.round_index for e in round_events] == [
            r.index for r in result.rounds
        ]

    def test_message_events_match_round_traffic(self):
        """Per round, MessageSent events equal the record's non-silent outboxes."""
        result, tracer = traced_run()
        by_round = {}
        for e in tracer.sink.of_kind(MessageSent):
            by_round.setdefault(e.round_index, []).append((e.sender, e.receiver, e.payload))
        for record in result.rounds:
            expected = [
                (s, r, p)
                for s, r, p in (
                    ("user", "server", record.user_outbox.to_server),
                    ("user", "world", record.user_outbox.to_world),
                    ("server", "user", record.server_outbox.to_user),
                    ("server", "world", record.server_outbox.to_world),
                    ("world", "user", record.world_outbox.to_user),
                    ("world", "server", record.world_outbox.to_server),
                )
                if p
            ]
            assert by_round.get(record.index, []) == expected

    def test_round_counter_agrees_with_execution(self):
        result, tracer = traced_run()
        assert tracer.counters.get("rounds") == result.rounds_executed

    def test_message_counters_agree_with_events(self):
        _, tracer = traced_run()
        sent = tracer.sink.of_kind(MessageSent)
        assert tracer.counters.get("messages") == len(sent)
        assert tracer.counters.get("message_bytes") == sum(
            len(e.payload) for e in sent
        )


class TestUniversalUserEvents:
    def test_switch_counter_agrees_with_run_metrics(self):
        result, tracer = traced_run()
        metrics = collect_metrics(result, GOAL)
        assert metrics.switches == len(SERVERS) - 1  # settles on the last codec
        assert tracer.counters.get("switches") == metrics.switches
        assert len(tracer.sink.of_kind(StrategySwitch)) == metrics.switches

    def test_switches_walk_the_enumeration_in_order(self):
        _, tracer = traced_run()
        switches = tracer.sink.of_kind(StrategySwitch)
        assert [(s.from_index, s.to_index) for s in switches] == [
            (i, i + 1) for i in range(len(SERVERS) - 1)
        ]
        assert not any(s.wrapped for s in switches)

    def test_sensing_indication_every_user_round(self):
        result, tracer = traced_run()
        indications = tracer.sink.of_kind(SensingIndication)
        assert len(indications) == result.rounds_executed
        assert [e.round_index for e in indications] == list(
            range(result.rounds_executed)
        )
        positives = tracer.counters.get("sensing_positive")
        negatives = tracer.counters.get("sensing_negative")
        assert positives + negatives == len(indications)
        assert negatives == tracer.counters.get("switches")

    def test_trials_bracket_switches(self):
        _, tracer = traced_run()
        started = tracer.sink.of_kind(TrialStarted)
        finished = tracer.sink.of_kind(TrialFinished)
        assert [t.candidate_index for t in started] == list(range(len(SERVERS)))
        assert [t.candidate_index for t in finished] == list(range(len(SERVERS) - 1))
        assert all(t.reason == "evicted" for t in finished)

    def test_wrap_around_is_flagged(self):
        tracer = Tracer(sink=MemorySink())
        user = CompactUniversalUser(
            ListEnumeration(follower_user_class(CODECS)),
            ConstantSensing(False),  # Condemns everything: forces wrapping.
            tracer=tracer,
        )
        run_execution(
            user, SERVERS[0], GOAL.world, max_rounds=12, seed=0, tracer=tracer
        )
        wrapped = [s for s in tracer.sink.of_kind(StrategySwitch) if s.wrapped]
        assert wrapped
        assert all(s.to_index == 0 for s in wrapped)
        assert tracer.counters.get("wraps") == len(wrapped)


class TestFiniteUniversalEvents:
    @staticmethod
    def _printer_setup(tracer=None):
        from repro.servers.printer_servers import DIALECTS, printer_server_class
        from repro.universal.schedules import doubling_sweep_trials
        from repro.users.printer_users import printer_user_class
        from repro.worlds.printer import printing_goal, printing_sensing

        codecs = codec_family(2)
        goal = printing_goal(["report"])
        servers = printer_server_class(DIALECTS, codecs)
        user = FiniteUniversalUser(
            ListEnumeration(printer_user_class(DIALECTS, codecs)),
            printing_sensing(),
            schedule_factory=lambda cap: doubling_sweep_trials(
                None if cap is None else cap - 1
            ),
            tracer=tracer,
        )
        return user, servers, goal

    def test_trial_events_agree_with_trials_run(self):
        tracer = Tracer(sink=MemorySink())
        user, servers, goal = self._printer_setup(tracer)
        result = run_execution(
            user, servers[-1], goal.world, max_rounds=3000, seed=0, tracer=tracer
        )
        assert goal.evaluate(result).achieved
        metrics = collect_metrics(result, goal)
        started = tracer.sink.of_kind(TrialStarted)
        assert metrics.trials == len(started)
        assert tracer.counters.get("trials") == metrics.trials
        assert all(t.budget is not None for t in started)

    def test_last_trial_is_endorsed(self):
        tracer = Tracer(sink=MemorySink())
        user, servers, goal = self._printer_setup(tracer)
        run_execution(
            user, servers[-1], goal.world, max_rounds=3000, seed=0, tracer=tracer
        )
        finished = tracer.sink.of_kind(TrialFinished)
        assert finished[-1].reason == "endorsed"
        assert all(f.reason in {"budget", "halt-rejected"} for f in finished[:-1])
        # Every finished trial was started, with matching numbering.
        started_numbers = [t.trial_number for t in tracer.sink.of_kind(TrialStarted)]
        assert [f.trial_number for f in finished] == sorted(
            f.trial_number for f in finished
        )
        assert set(f.trial_number for f in finished) <= set(started_numbers)


class TestGraceSuppression:
    def test_grace_masking_negative_inner_is_reported(self):
        tracer = Tracer(sink=MemorySink())
        sensing = GraceSensing(ConstantSensing(False), grace_rounds=3).with_tracer(tracer)
        user = CompactUniversalUser(
            ListEnumeration(follower_user_class(CODECS)), sensing, tracer=tracer
        )
        run_execution(
            user, SERVERS[0], GOAL.world, max_rounds=8, seed=0, tracer=tracer
        )
        suppressed = tracer.sink.of_kind(GraceSuppressed)
        # Every trial's first 3 rounds are suppressed negatives.
        assert suppressed
        assert all(e.grace_rounds == 3 for e in suppressed)
        assert tracer.counters.get("grace_suppressed") == len(suppressed)

    def test_grace_without_tracer_stays_silent_and_identical(self):
        plain = GraceSensing(ConstantSensing(False), grace_rounds=3)
        traced = plain.with_tracer(Tracer(sink=MemorySink()))
        view_like = type("V", (), {"__len__": lambda self: 2})()
        assert plain.indicate(view_like) is traced.indicate(view_like) is True


class TestTracingIsInvisible:
    def _outcome_fingerprint(self, result):
        return (
            result.rounds_executed,
            result.halted,
            result.user_output,
            [str(s) for s in result.world_states],
            [(r.user_outbox, r.server_outbox, r.world_outbox) for r in result.rounds],
        )

    def test_untraced_run_is_deterministic(self):
        a = run_execution(
            compact_universal(), SERVERS[-1], GOAL.world,
            max_rounds=HORIZON, seed=0, tracer=None,
        )
        b = run_execution(
            compact_universal(), SERVERS[-1], GOAL.world,
            max_rounds=HORIZON, seed=0, tracer=None,
        )
        assert self._outcome_fingerprint(a) == self._outcome_fingerprint(b)

    def test_traced_equals_untraced(self):
        untraced = run_execution(
            compact_universal(), SERVERS[-1], GOAL.world,
            max_rounds=HORIZON, seed=0,
        )
        traced, _ = traced_run(-1, seed=0)
        assert self._outcome_fingerprint(untraced) == self._outcome_fingerprint(traced)

    def test_noop_tracer_equals_untraced(self):
        untraced = run_execution(
            compact_universal(), SERVERS[-1], GOAL.world,
            max_rounds=HORIZON, seed=0,
        )
        noop = NoopTracer()
        nooped = run_execution(
            compact_universal(noop), SERVERS[-1], GOAL.world,
            max_rounds=HORIZON, seed=0, tracer=noop,
        )
        assert self._outcome_fingerprint(untraced) == self._outcome_fingerprint(nooped)

    def test_jsonl_traces_are_byte_identical_across_runs(self, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            sink = JsonlSink(path)
            _, tracer = traced_run(-1, seed=0, sink=sink)
            tracer.close()
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_jsonl_replay_matches_live_counters(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        result, tracer = traced_run(-1, seed=0, sink=sink)
        tracer.close()
        replayed = read_jsonl(path)
        replay_tracer = Tracer()
        for event in replayed:
            replay_tracer.emit(event)
        assert replay_tracer.counters.snapshot() == tracer.counters.snapshot()
        metrics = collect_metrics(result, GOAL)
        assert replay_tracer.counters.get("switches") == metrics.switches


class TestSweepTelemetry:
    def test_cells_carry_aggregated_counters(self):
        result = sweep(
            compact_universal(), SERVERS, GOAL,
            seeds=(0, 1), max_rounds=HORIZON, telemetry=True,
        )
        assert result.universal_success
        for index, cell in enumerate(result.cells):
            telemetry = cell.telemetry
            assert telemetry is not None
            assert telemetry.get("rounds") == sum(m.rounds for m in cell.runs)
            assert telemetry.get("switches") == sum(m.switches for m in cell.runs)
            assert telemetry.get("messages") > 0
            assert telemetry.get("message_bytes") > 0

    def test_telemetry_off_leaves_cells_bare(self):
        result = sweep(
            compact_universal(), SERVERS[:1], GOAL, seeds=(0,), max_rounds=HORIZON
        )
        assert result.cells[0].telemetry is None

    def test_sweep_restores_user_tracer(self):
        user = compact_universal()
        sweep(user, SERVERS[:1], GOAL, seeds=(0,), max_rounds=HORIZON, telemetry=True)
        assert user.tracer is None

    def test_telemetry_does_not_change_outcomes(self):
        plain = sweep(
            compact_universal(), SERVERS, GOAL, seeds=(0,), max_rounds=HORIZON
        )
        traced = sweep(
            compact_universal(), SERVERS, GOAL,
            seeds=(0,), max_rounds=HORIZON, telemetry=True,
        )
        assert [c.runs for c in plain.cells] == [c.runs for c in traced.cells]
