"""Integration: the obs toolkit end to end on a password-server run.

The acceptance loop for the run ledger + trace CLI: record a
compact-universal run against the paper's password class (E3/E4 setting)
with :func:`repro.obs.ledger.record_run`, then check that what
``python -m repro.obs overhead`` reports off the trace file agrees with
the in-memory accounting *and* with the user's own terminal state — the
same consistency bench_e4 asserts.
"""

from __future__ import annotations

import json

from repro.comm.codecs import IdentityCodec
from repro.obs.__main__ import main
from repro.obs.ledger import read_manifest, record_run
from repro.obs.overhead import compute_overhead
from repro.obs.sinks import read_jsonl
from repro.servers.password import all_passwords, password_server_class
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import AdvisorFollowingUser, password_user_class
from repro.worlds.control import control_goal, control_sensing

LAW = {"red": "blue", "blue": "red"}
GOAL = control_goal(LAW)
BITS = 2
POSITION = 2  # The planted password's enumeration index.


def universal():
    users = password_user_class(
        all_passwords(BITS), lambda: AdvisorFollowingUser(IdentityCodec())
    )
    return CompactUniversalUser(
        ListEnumeration(users, label=f"pw{BITS}"), control_sensing()
    )


class TestObsToolkit:
    def test_cli_overhead_agrees_with_library_and_user_state(
        self, tmp_path, capsys
    ):
        servers = password_server_class(BITS, LAW)
        recorded = record_run(
            universal(), servers[POSITION], GOAL,
            max_rounds=6000, seed=0, out_dir=tmp_path, name="pw",
        )
        assert recorded.manifest.achieved == 1

        # Library accounting off the replayed trace file.
        replayed = compute_overhead(read_jsonl(recorded.trace_path))

        # CLI accounting off the same file.
        assert main(
            ["overhead", str(recorded.trace_path), "--format", "json"]
        ) == 0
        cli = json.loads(capsys.readouterr().out)[0]

        # CLI == library == the run's own figures (bench_e4's invariants).
        assert cli["total_rounds"] == replayed.total_rounds
        assert cli["overhead_rounds"] == replayed.overhead_rounds
        assert cli["settled_index"] == replayed.settled_index
        assert replayed.total_rounds == recorded.execution.rounds_executed
        assert replayed.switches == POSITION
        assert replayed.settled_index == POSITION
        state = recorded.execution.rounds[-1].user_state_after
        assert replayed.switches == state.switches

    def test_manifest_identifies_the_run(self, tmp_path):
        servers = password_server_class(BITS, LAW)
        recorded = record_run(
            universal(), servers[POSITION], GOAL,
            max_rounds=6000, seed=0, out_dir=tmp_path, name="pw",
        )
        manifest = read_manifest(recorded.manifest_path)
        assert manifest == recorded.manifest
        assert manifest.seeds == (0,)
        assert manifest.server == servers[POSITION].name
        assert manifest.trace_path == "pw.jsonl"

    def test_cli_summarize_reads_the_recorded_trace(self, tmp_path, capsys):
        servers = password_server_class(BITS, LAW)
        recorded = record_run(
            universal(), servers[0], GOAL,
            max_rounds=6000, seed=0, out_dir=tmp_path, name="pw0",
        )
        assert main(
            ["summarize", str(recorded.trace_path), "--format", "json"]
        ) == 0
        summary = json.loads(capsys.readouterr().out)[0]
        assert summary["rounds"] == recorded.execution.rounds_executed
        assert summary["trace_schema"] == 1
