"""Integration: the printer goal, including the blind variant (experiment E9).

Claim: the printing goal — achieved purely through side-effects on the
world — is covered by the theory exactly like delegation; and removing the
world's feedback removes safe+viable sensing, at which point no universal
behaviour is possible (blind halting is unsafe, cautious waiting never
halts).
"""

from __future__ import annotations

from repro.analysis.runner import sweep
from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.servers.printer_servers import DIALECTS, printer_server_class
from repro.universal.enumeration import ListEnumeration
from repro.universal.finite import FiniteUniversalUser
from repro.universal.schedules import doubling_sweep_trials
from repro.users.printer_users import printer_user_class
from repro.worlds.printer import printing_goal, printing_sensing

CODECS = codec_family(4)
GOAL = printing_goal(["quarterly report"])
BLIND_GOAL = printing_goal(["quarterly report"], feedback=False)
SERVERS = printer_server_class(DIALECTS, CODECS)


def universal(users):
    return FiniteUniversalUser(
        ListEnumeration(users),
        printing_sensing(),
        schedule_factory=lambda cap: doubling_sweep_trials(
            None if cap is None else cap - 1
        ),
    )


class TestE9:
    def test_with_feedback_universal_printing_works(self):
        users = printer_user_class(DIALECTS, CODECS)
        result = sweep(universal(users), SERVERS, GOAL, seeds=(0,), max_rounds=6000)
        assert result.universal_success, [c.server_name for c in result.failures()]

    def test_blind_world_cautious_user_never_halts(self):
        users = printer_user_class(DIALECTS, CODECS)
        result = run_execution(
            universal(users), SERVERS[0], BLIND_GOAL.world, max_rounds=4000, seed=0
        )
        assert not result.halted  # No evidence ever arrives; sensing vetoes.

    def test_blind_world_bold_user_is_wrong_somewhere(self):
        """Blind halting succeeds on matched pairs but fails universality."""
        bold_users = printer_user_class(DIALECTS, CODECS, blind_halt_after=5)
        failures = 0
        for seed, server in enumerate(SERVERS):
            user = bold_users[0]  # A rigid blind user, not even enumerating.
            result = run_execution(
                user, server, BLIND_GOAL.world, max_rounds=400, seed=seed
            )
            if result.halted and not BLIND_GOAL.evaluate(result).achieved:
                failures += 1
        assert failures > 0

    def test_goal_is_about_world_state_not_knowledge(self):
        """The referee consults only the paper's world states."""
        users = printer_user_class(DIALECTS, CODECS)
        result = run_execution(
            universal(users), SERVERS[3], GOAL.world, max_rounds=6000, seed=1
        )
        assert result.halted
        state = result.final_world_state()
        assert state.document in state.printed


class TestAckLiar:
    """Why server chatter cannot substitute for world feedback (the honest
    version of the blind-world impossibility)."""

    def test_liar_acks_like_an_honest_printer(self):
        import random

        from repro.comm.messages import ServerInbox
        from repro.servers.printer_servers import LyingPrinter, SpacePrinter

        rng = random.Random(0)
        liar, honest = LyingPrinter("space"), SpacePrinter()
        liar_state, honest_state = liar.initial_state(rng), honest.initial_state(rng)
        inbox = ServerInbox(from_user="PRINT memo")
        _, liar_out = liar.step(liar_state, inbox, rng)
        _, honest_out = honest.step(honest_state, inbox, rng)
        assert liar_out.to_user == honest_out.to_user  # Indistinguishable chatter...
        assert liar_out.to_world == "" and honest_out.to_world == "OUT:memo"

    def test_ack_based_sensing_is_unsafe_against_the_liar(self):
        """A user that halts on the server's acknowledgement is fooled."""
        from repro.comm.codecs import IdentityCodec
        from repro.servers.printer_servers import LyingPrinter
        from repro.users.printer_users import PrinterProtocolUser

        bold = PrinterProtocolUser("space", IdentityCodec(), blind_halt_after=5)
        result = run_execution(
            bold, LyingPrinter("space"), BLIND_GOAL.world, max_rounds=200, seed=0
        )
        assert result.halted
        assert not BLIND_GOAL.evaluate(result).achieved

    def test_world_feedback_defeats_the_liar(self):
        """With feedback restored, the universal user is not fooled: the
        liar simply never produces the evidence, so the user never halts
        (the liar is unhelpful, and safety holds)."""
        users = printer_user_class(DIALECTS, CODECS)
        from repro.servers.printer_servers import LyingPrinter

        result = run_execution(
            universal(users), LyingPrinter("space"), GOAL.world,
            max_rounds=3000, seed=0,
        )
        assert not result.halted
        assert not GOAL.evaluate(result).achieved


class TestWorldNondeterminism:
    """Footnote 2: the world's non-deterministic draw (which document) is
    quantified over too — the universal printer must handle every draw."""

    def test_universal_prints_any_document_the_world_picks(self):
        documents = ["alpha report", "beta memo", "gamma invoice"]
        goal = printing_goal(documents)
        users = printer_user_class(DIALECTS, CODECS)
        seen = set()
        for seed in range(8):
            result = run_execution(
                universal(users), SERVERS[5], goal.world,
                max_rounds=6000, seed=seed,
            )
            assert goal.evaluate(result).achieved, seed
            seen.add(result.final_world_state().document)
        assert len(seen) >= 2  # Multiple draws actually exercised.
