"""Integration: one universal user over a *union* of strategy families.

The paper's construction never needs the candidate class to be
homogeneous: any enumeration works.  Here a single compact universal user
enumerates codec-followers *and* password-authenticating followers, and
must serve a server class mixing plain encoded advisors with
password-locked ones — the kind of heterogeneous "broad class" the paper's
closing remarks are about.
"""

from __future__ import annotations

import random

import pytest

from repro.comm.codecs import IdentityCodec, codec_family
from repro.core.execution import run_execution
from repro.servers.advisors import AdvisorServer, advisor_server_class
from repro.servers.password import PasswordServer, all_passwords
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import (
    AdvisorFollowingUser,
    follower_user_class,
    password_user_class,
)
from repro.worlds.control import control_goal, control_sensing, random_law

CODECS = codec_family(3)
LAW = random_law(random.Random(23))
GOAL = control_goal(LAW)

# The heterogeneous candidate class: interpreters first, then door-knockers.
USER_CLASS = follower_user_class(CODECS) + password_user_class(
    all_passwords(2), lambda: AdvisorFollowingUser(IdentityCodec())
)

# The heterogeneous server class: encoded advisors and locked advisors.
SERVER_CLASS = advisor_server_class(LAW, CODECS) + [
    PasswordServer(pw, AdvisorServer(LAW)) for pw in all_passwords(2)
]


def universal():
    return CompactUniversalUser(
        ListEnumeration(USER_CLASS, label="mixed"), control_sensing()
    )


class TestMixedClass:
    @pytest.mark.parametrize(
        "index", range(len(SERVER_CLASS)), ids=[s.name for s in SERVER_CLASS]
    )
    def test_universal_serves_the_whole_union(self, index):
        server = SERVER_CLASS[index]
        result = run_execution(
            universal(), server, GOAL.world, max_rounds=4000, seed=index
        )
        assert GOAL.evaluate(result).achieved
        state = result.rounds[-1].user_state_after
        # The class was built in matching order: member i needs candidate i.
        assert state.index == index

    def test_candidate_families_are_not_interchangeable(self):
        """A follower cannot unlock; a door-knocker with the wrong password
        cannot follow a locked advisor — the union is genuinely needed."""
        locked = SERVER_CLASS[len(CODECS)]  # PasswordServer("00", ...).
        follower_only = AdvisorFollowingUser(IdentityCodec())
        result = run_execution(
            follower_only, locked, GOAL.world, max_rounds=800, seed=0
        )
        assert not GOAL.evaluate(result).achieved

        plain = SERVER_CLASS[0]  # advisor@id — no lock to open.
        knocker = USER_CLASS[len(CODECS) + 1]  # auth[01]+follow@id.
        result = run_execution(knocker, plain, GOAL.world, max_rounds=800, seed=0)
        # The knocker still works on plain advisors (AUTH is ignored noise),
        # which is exactly why unions enumerate cleanly.
        assert GOAL.evaluate(result).achieved
