"""Integration: compact-goal semantics — errors stop (experiment E7).

Claim: under the universal user, the number of unacceptable prefixes is
finite: all mistakes cluster in the learning phase, the error curve goes
flat, and longer horizons add no new errors.
"""

from __future__ import annotations

import random

from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.servers.advisors import advisor_server_class
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import follower_user_class
from repro.worlds.control import ControlState, control_goal, control_sensing, random_law

CODECS = codec_family(4)
LAW = random_law(random.Random(21))
GOAL = control_goal(LAW)
SERVERS = advisor_server_class(LAW, CODECS)


def universal():
    return CompactUniversalUser(
        ListEnumeration(follower_user_class(CODECS)), control_sensing()
    )


class TestE7:
    def test_mistakes_stop_after_settling(self):
        result = run_execution(
            universal(), SERVERS[-1], GOAL.world, max_rounds=2000, seed=0
        )
        verdict = GOAL.referee.judge(result)
        assert verdict.bad_prefixes > 0          # It did have to learn...
        assert verdict.last_bad_round is not None
        assert verdict.last_bad_round < 600      # ...but finished learning early.

    def test_longer_horizon_adds_no_errors(self):
        def mistakes_at(horizon):
            result = run_execution(
                universal(), SERVERS[2], GOAL.world, max_rounds=horizon, seed=3
            )
            state = result.final_world_state()
            assert isinstance(state, ControlState)
            return state.mistakes

        assert mistakes_at(2400) == mistakes_at(1200)

    def test_mistake_count_scales_with_codec_index(self):
        def mistakes_against(server_index):
            result = run_execution(
                universal(), SERVERS[server_index], GOAL.world,
                max_rounds=2000, seed=1,
            )
            return result.final_world_state().mistakes

        assert mistakes_against(3) > mistakes_against(0)

    def test_error_flags_form_a_clean_tail(self):
        result = run_execution(
            universal(), SERVERS[1], GOAL.world, max_rounds=1500, seed=2
        )
        flags = GOAL.referee.judge(result).flags
        tail = flags[len(flags) // 2:]
        assert all(tail)
