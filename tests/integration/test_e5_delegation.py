"""Integration: the delegation goal end-to-end (experiment E5, scaled down).

Claim (Juba–Sudan via our TQBF IP): a universal delegating user
  (a) answers correctly with every honest prover under every codec, and
  (b) is never talked into a wrong answer by cheating or lazy provers,
      because IP soundness makes its sensing safe.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.runner import sweep
from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.core.helpfulness import is_helpful
from repro.mathx.modular import Field
from repro.qbf.generators import balanced_qbf_batch
from repro.servers.provers import (
    CheatingProverServer,
    HonestProverServer,
    LazyProverServer,
)
from repro.servers.wrappers import EncodedServer
from repro.universal.enumeration import ListEnumeration
from repro.universal.finite import FiniteUniversalUser
from repro.universal.schedules import doubling_sweep_trials
from repro.users.delegation_users import delegation_user_class
from repro.worlds.computation import delegation_goal, delegation_sensing

F = Field()
CODECS = codec_family(4)
INSTANCES = balanced_qbf_batch(random.Random(2), 3, 4)
GOAL = delegation_goal(INSTANCES)
USERS = delegation_user_class(CODECS, F)
HONEST_SERVERS = [EncodedServer(HonestProverServer(F), c) for c in CODECS]
DISHONEST_SERVERS = [
    CheatingProverServer(F, style) for style in ("flip", "constant", "random")
] + [LazyProverServer(0), LazyProverServer(1)]


def universal():
    return FiniteUniversalUser(
        ListEnumeration(USERS, label="delegates"),
        delegation_sensing(),
        schedule_factory=lambda cap: doubling_sweep_trials(
            None if cap is None else cap - 1
        ),
    )


class TestE5:
    def test_honest_encoded_provers_are_helpful(self):
        for server in HONEST_SERVERS:
            assert is_helpful(server, GOAL, USERS, seeds=(0,), max_rounds=400), (
                server.name
            )

    def test_universal_answers_correctly_with_every_honest_prover(self):
        result = sweep(universal(), HONEST_SERVERS, GOAL, seeds=(0, 1), max_rounds=6000)
        assert result.universal_success, [c.server_name for c in result.failures()]

    @pytest.mark.parametrize("server", DISHONEST_SERVERS, ids=lambda s: s.name)
    def test_never_answers_wrong_against_dishonest_provers(self, server):
        for seed in range(2):
            result = run_execution(
                universal(), server, GOAL.world, max_rounds=3000, seed=seed
            )
            if result.halted:
                # Halting is only allowed when the answer is actually right.
                assert GOAL.evaluate(result).achieved

    def test_dishonest_provers_are_not_helpful(self):
        for server in DISHONEST_SERVERS:
            assert not is_helpful(
                server, GOAL, USERS, seeds=(0,), max_rounds=400
            ), server.name

    def test_answer_matches_instance_truth(self):
        from repro.qbf.qbf import QBF

        result = run_execution(
            universal(), HONEST_SERVERS[1], GOAL.world, max_rounds=6000, seed=5
        )
        assert result.halted
        instance = QBF.deserialize(result.final_world_state().instance)
        assert result.user_output == f"ANSWER:{int(instance.evaluate())}"
