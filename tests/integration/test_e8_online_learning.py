"""Integration: beyond enumeration — the online-learning view (experiment E8).

Claim (Juba–Vempala, the paper's closing direction): on simple multi-session
goals, structure-aware users beat the generic enumeration overhead —
logarithmic vs. linear mistakes in the class size — and the belief-weighted
user (Juba–Sudan ICS'11) interpolates when its prior is informative.
"""

from __future__ import annotations

import math

from repro.core.execution import run_execution
from repro.core.strategy import SilentServer
from repro.online.adapter import threshold_user_class
from repro.online.equivalence import (
    enumeration_user,
    halving_user,
    mistakes_in_world,
    weighted_majority_user,
)
from repro.universal.bayesian import BeliefWeightedUniversalUser
from repro.worlds.lookup import lookup_goal, lookup_sensing

DOMAIN = 16


class TestE8:
    def test_both_users_achieve_the_goal(self):
        goal = lookup_goal(threshold=10, domain=DOMAIN)
        for user in (enumeration_user(DOMAIN), halving_user(DOMAIN)):
            result = run_execution(
                user, SilentServer(), goal.world, max_rounds=3000, seed=0
            )
            assert goal.evaluate(result).achieved, user.name

    def test_halving_logarithmic_vs_enumeration_linear(self):
        log_bound = math.log2(DOMAIN + 2) + 2
        for theta in (4, 10, 15):
            enum = mistakes_in_world(
                enumeration_user(DOMAIN), theta, DOMAIN, horizon=3000, seed=1
            )
            halv = mistakes_in_world(
                halving_user(DOMAIN), theta, DOMAIN, horizon=3000, seed=1
            )
            assert halv <= log_bound
            if theta >= 10:
                assert enum > halv  # The crossover the claim predicts.

    def test_enumeration_mistakes_track_index(self):
        low = mistakes_in_world(enumeration_user(DOMAIN), 2, DOMAIN, horizon=3000, seed=2)
        high = mistakes_in_world(enumeration_user(DOMAIN), 14, DOMAIN, horizon=3000, seed=2)
        assert high >= low + 4

    def test_weighted_majority_comparable_to_halving(self):
        wm = mistakes_in_world(
            weighted_majority_user(DOMAIN), 12, DOMAIN, horizon=3000, seed=3
        )
        assert wm <= 2.41 * math.log2(DOMAIN + 2) + 3

    def test_informed_prior_beats_uniform_enumeration(self):
        goal = lookup_goal(threshold=13, domain=DOMAIN)
        candidates = threshold_user_class(DOMAIN)
        prior = [1.0] * len(candidates)
        prior[13] = 50.0  # Mostly-correct beliefs about the server/world.
        informed = BeliefWeightedUniversalUser(
            candidates, lookup_sensing(), prior=prior
        )
        result = run_execution(
            informed, SilentServer(), goal.world, max_rounds=1500, seed=4
        )
        assert goal.evaluate(result).achieved
        informed_mistakes = result.final_world_state().mistakes
        uniform_mistakes = mistakes_in_world(
            enumeration_user(DOMAIN), 13, DOMAIN, horizon=3000, seed=4
        )
        assert informed_mistakes < uniform_mistakes
