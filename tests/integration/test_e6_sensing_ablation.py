"""Integration: Theorem 1's hypotheses are necessary (experiment E6).

Claim: drop *safety* and the universal user can be led into false success;
drop *viability* and it never settles/halts even with a helpful server.
Each ablation breaks exactly the guarantee its property protects.
"""

from __future__ import annotations

import random

from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.core.sensing import ConstantSensing
from repro.servers.advisors import advisor_server_class
from repro.servers.printer_servers import printer_server_class
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.universal.finite import FiniteUniversalUser
from repro.users.control_users import follower_user_class
from repro.users.printer_users import printer_user_class
from repro.worlds.control import control_goal, control_sensing, random_law
from repro.worlds.printer import printing_goal, printing_sensing

CODECS = codec_family(3)
DIALECTS = ("space", "tagged")

PRINT_GOAL = printing_goal(["memo"])
PRINT_SERVERS = printer_server_class(DIALECTS, CODECS)
PRINT_USERS = printer_user_class(DIALECTS, CODECS)
BLIND_PRINT_USERS = printer_user_class(DIALECTS, CODECS, blind_halt_after=5)

LAW = random_law(random.Random(4))
CONTROL_GOAL = control_goal(LAW)
CONTROL_SERVERS = advisor_server_class(LAW, CODECS)
CONTROL_USERS = follower_user_class(CODECS)


class TestFiniteAblation:
    def test_unsafe_sensing_admits_false_halt(self):
        """Always-positive sensing endorses a blind candidate's wrong halt."""
        user = FiniteUniversalUser(
            ListEnumeration(BLIND_PRINT_USERS), ConstantSensing(True)
        )
        # Pair with a server the *first* (blind) candidate mismatches.
        mismatched = PRINT_SERVERS[-1]
        result = run_execution(
            user, mismatched, PRINT_GOAL.world, max_rounds=400, seed=0
        )
        assert result.halted
        assert not PRINT_GOAL.evaluate(result).achieved

    def test_safe_sensing_blocks_the_same_trap(self):
        user = FiniteUniversalUser(
            ListEnumeration(BLIND_PRINT_USERS), printing_sensing()
        )
        mismatched = PRINT_SERVERS[-1]
        result = run_execution(
            user, mismatched, PRINT_GOAL.world, max_rounds=3000, seed=0
        )
        # Blind halts get vetoed until the actually-matching candidate runs;
        # whenever the user halts, it halts right.
        if result.halted:
            assert PRINT_GOAL.evaluate(result).achieved

    def test_nonviable_sensing_never_halts(self):
        user = FiniteUniversalUser(
            ListEnumeration(PRINT_USERS), ConstantSensing(False)
        )
        result = run_execution(
            user, PRINT_SERVERS[0], PRINT_GOAL.world, max_rounds=2000, seed=0
        )
        assert not result.halted


class TestCompactAblation:
    def test_unsafe_sensing_sticks_with_failing_strategy(self):
        user = CompactUniversalUser(
            ListEnumeration(CONTROL_USERS), ConstantSensing(True)
        )
        mismatched = CONTROL_SERVERS[-1]  # First candidate can't decode it.
        result = run_execution(
            user, mismatched, CONTROL_GOAL.world, max_rounds=1200, seed=0
        )
        state = result.rounds[-1].user_state_after
        assert state.index == 0 and state.switches == 0
        assert not CONTROL_GOAL.evaluate(result).achieved

    def test_nonviable_sensing_cycles_forever(self):
        """On a goal whose candidates always act (rigid threshold users),
        perpetual eviction means perpetually rotating — mostly wrong —
        answers: the adequate candidate is never allowed to stay."""
        from repro.core.strategy import SilentServer
        from repro.online.adapter import threshold_user_class
        from repro.worlds.lookup import lookup_goal

        goal = lookup_goal(threshold=3, domain=8)
        user = CompactUniversalUser(
            ListEnumeration(threshold_user_class(8)), ConstantSensing(False)
        )
        result = run_execution(
            user, SilentServer(), goal.world, max_rounds=1200, seed=0
        )
        state = result.rounds[-1].user_state_after
        assert state.wraps > 10  # Even the adequate candidate gets evicted.
        assert not goal.evaluate(result).achieved

    def test_proper_sensing_restores_the_guarantee(self):
        user = CompactUniversalUser(
            ListEnumeration(CONTROL_USERS), control_sensing()
        )
        result = run_execution(
            user, CONTROL_SERVERS[-1], CONTROL_GOAL.world, max_rounds=1200, seed=0
        )
        assert CONTROL_GOAL.evaluate(result).achieved
