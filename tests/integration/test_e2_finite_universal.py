"""Integration: Theorem 1, finite case (experiment E2, scaled down).

Claim: the Levin-scheduled universal user prints with every member of the
dialect × codec printer class; the naive fixed-budget scheduler breaks when
its guess is too small, and the Levin schedule's overhead grows with the
adequate candidate's index.
"""

from __future__ import annotations

from repro.analysis.runner import sweep
from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.servers.printer_servers import DIALECTS, printer_server_class
from repro.universal.enumeration import ListEnumeration
from repro.universal.finite import FiniteUniversalUser
from repro.universal.schedules import doubling_sweep_trials, sequential_trials
from repro.users.printer_users import printer_user_class
from repro.worlds.printer import printing_goal, printing_sensing

CODECS = codec_family(3)
GOAL = printing_goal(["a short memo"])
SERVERS = printer_server_class(DIALECTS, CODECS)
USERS = printer_user_class(DIALECTS, CODECS)


def levin_user():
    return FiniteUniversalUser(ListEnumeration(USERS), printing_sensing())


def sweep_user():
    return FiniteUniversalUser(
        ListEnumeration(USERS),
        printing_sensing(),
        schedule_factory=lambda cap: doubling_sweep_trials(
            None if cap is None else cap - 1
        ),
    )


class TestE2:
    def test_levin_universal_prints_with_every_server(self):
        result = sweep(levin_user(), SERVERS, GOAL, seeds=(0,), max_rounds=40000)
        assert result.universal_success, [c.server_name for c in result.failures()]

    def test_doubling_sweep_also_universal_and_cheaper(self):
        levin = sweep(levin_user(), SERVERS, GOAL, seeds=(0,), max_rounds=40000)
        sweeping = sweep(sweep_user(), SERVERS, GOAL, seeds=(0,), max_rounds=4000)
        assert sweeping.universal_success
        worst_levin = max(c.mean_rounds() for c in levin.cells)
        worst_sweep = max(c.mean_rounds() for c in sweeping.cells)
        assert worst_sweep < worst_levin

    def test_single_pass_fixed_budget_scheduler_fails(self):
        """Committing to one small budget per candidate (no growth, no
        retries) breaks completeness — no candidate can even see feedback
        within one round, so the rigid scheduler never halts.  This is the
        failure Levin's growing budgets exist to avoid."""
        rigid = FiniteUniversalUser(
            ListEnumeration(USERS),
            printing_sensing(),
            schedule_factory=lambda cap: sequential_trials(
                1, max_index=None if cap is None else cap - 1, repeat=False
            ),
        )
        result = sweep(rigid, SERVERS, GOAL, seeds=(0,), max_rounds=3000)
        # (Not *every* pairing fails: a candidate running after the matched
        # one can still halt on the world's printed-tail evidence.  But the
        # last server's match has nobody after it, so universality breaks.)
        assert not result.universal_success
        assert result.failures()

    def test_small_cyclic_budgets_survive_thanks_to_forgiveness(self):
        """Conversely, even budget-2 trials succeed *when repeated*: the
        goal is forgiving and printer state persists across trials, so an
        abandoned trial's handshake still counts.  This documents why the
        lower bound needs password-style servers (E3), not mere protocol
        depth."""
        cyclic = FiniteUniversalUser(
            ListEnumeration(USERS),
            printing_sensing(),
            schedule_factory=lambda cap: sequential_trials(
                2, max_index=None if cap is None else cap - 1
            ),
        )
        result = sweep(cyclic, SERVERS, GOAL, seeds=(0,), max_rounds=3000)
        assert result.universal_success

    def test_levin_cost_grows_with_candidate_index(self):
        first = run_execution(
            levin_user(), SERVERS[0], GOAL.world, max_rounds=40000, seed=1
        )
        last = run_execution(
            levin_user(), SERVERS[-1], GOAL.world, max_rounds=40000, seed=1
        )
        assert first.halted and last.halted
        assert last.rounds_executed > 4 * first.rounds_executed

    def test_output_is_the_adequate_candidates_output(self):
        result = run_execution(
            levin_user(), SERVERS[4], GOAL.world, max_rounds=40000, seed=0
        )
        assert result.halted
        assert result.user_output == "PRINTED"
