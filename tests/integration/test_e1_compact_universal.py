"""Integration: Theorem 1, compact case (experiment E1, scaled down).

Claim: with safe+viable sensing, the enumerate-and-switch universal user
achieves the compact control goal with *every* helpful server in the class,
and with none of the unhelpful ones is it fooled into settling.
"""

from __future__ import annotations

import random


from repro.analysis.runner import sweep
from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.core.helpfulness import is_helpful
from repro.servers.advisors import MisleadingAdvisorServer, advisor_server_class
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import follower_user_class
from repro.worlds.control import control_goal, control_sensing, random_law

CODECS = codec_family(6)
LAW = random_law(random.Random(11))
GOAL = control_goal(LAW)
SERVERS = advisor_server_class(LAW, CODECS)
USERS = follower_user_class(CODECS)


def universal():
    return CompactUniversalUser(ListEnumeration(USERS), control_sensing())


class TestE1:
    def test_every_class_member_is_helpful(self):
        for server in SERVERS:
            assert is_helpful(server, GOAL, USERS, seeds=(0,), max_rounds=400)

    def test_universal_succeeds_with_every_helpful_server(self):
        result = sweep(universal(), SERVERS, GOAL, seeds=(0, 1), max_rounds=2000)
        assert result.universal_success, [c.server_name for c in result.failures()]

    def test_settles_on_matching_codec_index(self):
        for index, server in enumerate(SERVERS):
            result = run_execution(
                universal(), server, GOAL.world, max_rounds=2000, seed=3
            )
            state = result.rounds[-1].user_state_after
            assert state.index == index, server.name

    def test_unhelpful_server_does_not_fool_the_user(self):
        misleading = MisleadingAdvisorServer(LAW)
        result = run_execution(
            universal(), misleading, GOAL.world, max_rounds=1500, seed=0
        )
        assert not GOAL.evaluate(result).achieved

    def test_world_nondeterminism_any_law(self):
        """Theorem quantifies over the world class too: try several laws."""
        for seed in range(3):
            law = random_law(random.Random(seed))
            goal = control_goal(law)
            servers = advisor_server_class(law, CODECS[:3])
            user = CompactUniversalUser(
                ListEnumeration(follower_user_class(CODECS[:3])), control_sensing()
            )
            result = sweep(user, servers, goal, seeds=(0,), max_rounds=1500)
            assert result.universal_success
