"""Integration: Theorem 1's *characterisation* — the "iff".

"This universal strategy achieves the goal when coupled with a server S
**iff** there is some user strategy that achieves the goal when coupled
with S."  Over a mixed class — helpful advisors in several languages,
a misleading advisor, a silent server, and faulty-but-helpful members —
the universal user's success must coincide *exactly* with helpfulness,
server by server.
"""

from __future__ import annotations

import random

import pytest

from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.core.helpfulness import is_helpful
from repro.core.strategy import SilentServer
from repro.servers.advisors import (
    AdvisorServer,
    MisleadingAdvisorServer,
    advisor_server_class,
)
from repro.servers.faulty import DroppingServer
from repro.servers.wrappers import EncodedServer
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import follower_user_class
from repro.worlds.control import control_goal, control_sensing, random_law

CODECS = codec_family(4)
LAW = random_law(random.Random(17))
GOAL = control_goal(LAW, deadline=16)
USER_CLASS = follower_user_class(CODECS)

MIXED_CLASS = (
    advisor_server_class(LAW, CODECS)
    + [
        MisleadingAdvisorServer(LAW),
        SilentServer(),
        DroppingServer(EncodedServer(AdvisorServer(LAW), CODECS[1]), 0.15),
    ]
)


def universal():
    return CompactUniversalUser(
        ListEnumeration(USER_CLASS), control_sensing(grace_rounds=24)
    )


@pytest.mark.parametrize("server", MIXED_CLASS, ids=lambda s: s.name)
def test_universal_success_iff_helpful(server):
    helpful = bool(
        is_helpful(server, GOAL, USER_CLASS, seeds=(0, 1), max_rounds=700)
    )
    achieved_all = all(
        GOAL.evaluate(
            run_execution(universal(), server, GOAL.world, max_rounds=3000, seed=seed)
        ).achieved
        for seed in (0, 1)
    )
    assert achieved_all == helpful, (
        f"{server.name}: helpful={helpful} but universal achieved={achieved_all}"
    )


def test_the_mixed_class_really_is_mixed():
    """Guard the experiment's premise: both kinds are represented."""
    verdicts = {
        server.name: bool(
            is_helpful(server, GOAL, USER_CLASS, seeds=(0,), max_rounds=700)
        )
        for server in MIXED_CLASS
    }
    assert any(verdicts.values())
    assert not all(verdicts.values())
    assert verdicts["advisor-misleading"] is False
    assert verdicts["SilentServer"] is False
