"""Integration: overhead tracks enumeration position (experiment E4).

Claim: the compact universal user's switches equal the adequate candidate's
index, and its settling time grows monotonically (≈ linearly) with it —
which is why enumeration order / priors (E8b) matter.
"""

from __future__ import annotations

import random

from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.servers.advisors import advisor_server_class
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import follower_user_class
from repro.worlds.control import control_goal, control_sensing, random_law

CODECS = codec_family(6)
LAW = random_law(random.Random(8))
GOAL = control_goal(LAW)
SERVERS = advisor_server_class(LAW, CODECS)


def universal():
    return CompactUniversalUser(
        ListEnumeration(follower_user_class(CODECS)), control_sensing()
    )


def settle_stats(server_index, seed=0):
    result = run_execution(
        universal(), SERVERS[server_index], GOAL.world, max_rounds=3000, seed=seed
    )
    assert GOAL.evaluate(result).achieved
    state = result.rounds[-1].user_state_after
    verdict = GOAL.referee.judge(result)
    return state.switches, (verdict.last_bad_round or 0)


class TestE4:
    def test_switches_equal_target_index(self):
        for index in range(len(SERVERS)):
            switches, _ = settle_stats(index)
            assert switches == index

    def test_settling_time_monotone_in_index(self):
        times = [settle_stats(i)[1] for i in (0, 2, 5)]
        assert times[0] <= times[1] <= times[2]
        assert times[2] > times[0]

    def test_reordering_the_enumeration_moves_the_cost(self):
        """The same server is cheap or dear depending only on class order."""
        reordered = list(follower_user_class(CODECS))
        reordered.reverse()
        user = CompactUniversalUser(
            ListEnumeration(reordered), control_sensing()
        )
        result = run_execution(
            user, SERVERS[-1], GOAL.world, max_rounds=3000, seed=0
        )
        assert GOAL.evaluate(result).achieved
        state = result.rounds[-1].user_state_after
        assert state.switches == 0  # Last codec is now first in the class.
