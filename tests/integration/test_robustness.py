"""Integration: robustness under injected faults.

Beyond the paper's noiseless model: the universal users should degrade
gracefully when servers drop, garble, or intermittently vanish — safety
stays absolute (no wrong halts, no false settling), success costs more
rounds but still arrives for forgiving goals.
"""

from __future__ import annotations

import random

from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.mathx.modular import Field
from repro.qbf.generators import random_qbf
from repro.servers.advisors import AdvisorServer
from repro.servers.faulty import DroppingServer, GarblingServer, IntermittentServer
from repro.servers.provers import HonestProverServer
from repro.servers.wrappers import EncodedServer
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.universal.finite import FiniteUniversalUser
from repro.universal.schedules import doubling_sweep_trials
from repro.users.control_users import follower_user_class
from repro.users.delegation_users import delegation_user_class
from repro.worlds.computation import delegation_goal, delegation_sensing
from repro.worlds.control import control_goal, control_sensing, random_law

F = Field()
CODECS = codec_family(3)


class TestDelegationUnderFaults:
    def _universal(self):
        return FiniteUniversalUser(
            ListEnumeration(delegation_user_class(CODECS, F)),
            delegation_sensing(),
            schedule_factory=lambda cap: doubling_sweep_trials(
                None if cap is None else cap - 1
            ),
        )

    def test_garbled_prover_replies_never_cause_wrong_answers(self):
        goal = delegation_goal([random_qbf(random.Random(1), 2)])
        server = GarblingServer(
            EncodedServer(HonestProverServer(F), CODECS[1]), garble_probability=0.3
        )
        for seed in range(3):
            result = run_execution(
                self._universal(), server, goal.world, max_rounds=4000, seed=seed
            )
            if result.halted:
                assert goal.evaluate(result).achieved

    def test_dropping_prover_still_delegates(self):
        goal = delegation_goal([random_qbf(random.Random(2), 2)])
        server = DroppingServer(HonestProverServer(F), drop_probability=0.25)
        result = run_execution(
            self._universal(), server, goal.world, max_rounds=6000, seed=1
        )
        assert result.halted
        assert goal.evaluate(result).achieved


class TestControlUnderFaults:
    def test_intermittent_advisor_still_converges(self):
        law = random_law(random.Random(5))
        goal = control_goal(law, deadline=20)
        server = IntermittentServer(
            EncodedServer(AdvisorServer(law), CODECS[2]), on_rounds=12, off_rounds=4
        )
        user = CompactUniversalUser(
            ListEnumeration(follower_user_class(CODECS)),
            control_sensing(grace_rounds=30),
        )
        result = run_execution(user, server, goal.world, max_rounds=4000, seed=2)
        assert goal.evaluate(result).achieved
