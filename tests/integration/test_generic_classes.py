"""Integration: universal users over *generic* machine enumerations.

The paper's universal user enumerates "all relevant user strategies"; the
headline experiments use hand-built protocol classes, and these tests close
the gap by running the same universal constructions over machine-defined
classes — all small transducers, all short GVM programs — where the
adequate strategy is found by blind enumeration of a program space, not by
picking from a curated menu.
"""

from __future__ import annotations

from repro.core.execution import run_execution
from repro.machines.enumerators import (
    transducer_user_enumeration,
    vm_user_enumeration,
)
from repro.universal.compact import CompactUniversalUser
from repro.universal.finite import FiniteUniversalUser

from tests.universal.helpers import (
    KeywordServer,
    NullWorld,
    YesSensing,
    keyword_sensing,
)

WORDS = ("alpha", "beta", "gamma")


class TestTransducerClass:
    def test_compact_universal_over_all_transducers(self):
        """Enumerate every 1..2-state transducer emitting word symbols."""
        enumeration = transducer_user_enumeration(
            input_alphabet=("",),
            output_alphabet=WORDS,
            max_states=2,
        )
        user = CompactUniversalUser(enumeration, keyword_sensing())
        result = run_execution(
            user, KeywordServer("gamma"), NullWorld(), max_rounds=2000, seed=0
        )
        state = result.rounds[-1].user_state_after
        # Settled on some machine that says "gamma" forever.
        sent = [r.outbox.to_server for r in result.user_view][-50:]
        assert all(message == "gamma" for message in sent)
        assert state.switches >= 1  # It really enumerated machines.

    def test_settles_within_the_one_state_block(self):
        """The adequate machine exists among the |out| one-state machines,
        so the enumeration must settle before exhausting that block."""
        enumeration = transducer_user_enumeration(
            input_alphabet=("",),
            output_alphabet=WORDS,
            max_states=2,
        )
        user = CompactUniversalUser(enumeration, keyword_sensing())
        result = run_execution(
            user, KeywordServer("beta"), NullWorld(), max_rounds=2000, seed=0
        )
        state = result.rounds[-1].user_state_after
        assert state.index < len(WORDS)


class TestVMProgramClass:
    def test_compact_universal_over_short_programs(self):
        """Blind enumeration of GVM programs finds one that says 'A'.

        The sensing needs its 2-round grace here: a candidate's first
        message takes two rounds to be echoed back, and an ungraced
        always-negative start would evict every candidate after one round
        (1-round trials can never be endorsed — the enumeration cycles
        forever; that failure mode is itself pinned by E6).
        """
        enumeration = vm_user_enumeration(max_length=2, constants=(65, 66))
        user = CompactUniversalUser(enumeration, keyword_sensing(grace=2))
        result = run_execution(
            user, KeywordServer("A"), NullWorld(), max_rounds=4000, seed=0
        )
        sent = [r.outbox.to_server for r in result.user_view][-20:]
        assert all(message == "A" for message in sent)
        state = result.rounds[-1].user_state_after
        # The winning program is PUSH 65; WRITE — a length-2 program, found
        # after the length-1 block plus part of the length-2 block.
        assert state.index >= 11  # All 11 length-1 programs failed first.

    def test_finite_universal_over_short_programs(self):
        """The Levin-style user halts once some program is endorsed.

        GVM programs never halt the conversation themselves, so we wrap
        the enumeration's candidates with a halting probe via the finite
        user's sensing: a candidate is endorsed when the server said YES
        to *its* message.  Here we only check that enumeration runs and no
        false halt occurs (programs don't emit halts at all).
        """
        enumeration = vm_user_enumeration(max_length=1, constants=(65,))
        user = FiniteUniversalUser(enumeration, YesSensing(default=False))
        result = run_execution(
            user, KeywordServer("A"), NullWorld(), max_rounds=300, seed=0
        )
        assert not result.halted  # No VM candidate can halt; none endorsed.
