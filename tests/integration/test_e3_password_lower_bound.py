"""Integration: the enumeration overhead is necessary (experiment E3).

Claim: against the class of 2^k password-locked servers, *any* universal
user must try passwords essentially exhaustively — rounds-to-success grows
exponentially in k and respects the information-theoretic envelope of
(2^k + 1)/2 expected password trials against a uniform member.
"""

from __future__ import annotations

import random
import statistics

from repro.comm.codecs import IdentityCodec
from repro.core.execution import run_execution
from repro.servers.password import all_passwords, password_server_class
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import AdvisorFollowingUser, password_user_class
from repro.worlds.control import control_goal, control_sensing

LAW = {"red": "blue", "blue": "red"}
GOAL = control_goal(LAW)


def universal_for_bits(bits):
    users = password_user_class(
        all_passwords(bits), lambda: AdvisorFollowingUser(IdentityCodec())
    )
    # Passwords are indistinguishable until unlocked: grace must outlive the
    # sensing's deadline-induced mistakes so eviction is driven by feedback.
    return CompactUniversalUser(
        ListEnumeration(users, label=f"pw{bits}"), control_sensing()
    )


def settle_index(bits, password_index, seed=0, horizon=6000):
    servers = password_server_class(bits, LAW)
    result = run_execution(
        universal_for_bits(bits), servers[password_index], GOAL.world,
        max_rounds=horizon, seed=seed,
    )
    state = result.rounds[-1].user_state_after
    return GOAL.evaluate(result), state


class TestE3:
    def test_universal_unlocks_every_member_k2(self):
        servers = password_server_class(2, LAW)
        for index in range(len(servers)):
            outcome, state = settle_index(2, index)
            assert outcome.achieved, index
            assert state.index == index  # Settles exactly on the password.

    def test_trials_equal_password_position(self):
        """The user burns exactly `position` failed candidates first."""
        _, state = settle_index(3, 5, horizon=9000)
        assert state.switches == 5

    def test_rounds_grow_exponentially_in_bits(self):
        def worst_rounds(bits, horizon):
            servers = password_server_class(bits, LAW)
            last = servers[-1]  # Worst case: password enumerated last.
            result = run_execution(
                universal_for_bits(bits), last, GOAL.world,
                max_rounds=horizon, seed=1,
            )
            verdict = GOAL.referee.judge(result)
            assert GOAL.evaluate(result).achieved
            return verdict.last_bad_round or 0

        settle2 = worst_rounds(2, 4000)
        settle4 = worst_rounds(4, 16000)
        assert settle4 > 2.5 * settle2  # 4x the candidates, ~4x the work.

    def test_expected_trials_match_uniform_envelope(self):
        """Average switches over random members ≈ (2^k - 1) / 2."""
        bits = 3
        servers = password_server_class(bits, LAW)
        rng = random.Random(0)
        switches = []
        for _ in range(8):
            index = rng.randrange(len(servers))
            outcome, state = settle_index(bits, index, seed=rng.randrange(100), horizon=9000)
            assert outcome.achieved
            switches.append(state.switches)
        mean = statistics.mean(switches)
        envelope = (2**bits - 1) / 2
        assert 0.3 * envelope <= mean <= 1.7 * envelope
