"""Integration: the multiparty reduction (experiment E10, footnote 1).

Claim: the symmetric N-party setting reduces to the two-party one — the
reduced system reproduces the native trajectory, and the compact rendezvous
goal is achieved through the reduction.
"""

from __future__ import annotations

from repro.core.execution import run_execution
from repro.core.goals import CompactGoal
from repro.multiparty.reduction import reduce_to_two_party
from repro.multiparty.symmetric import (
    FollowLeaderParty,
    RendezvousWorld,
    rendezvous_referee,
    run_multiparty,
)

NAMES = ["p1", "p2", "p3", "p4"]
PREFS = ["red", "green", "blue", "yellow"]


def parties():
    return {
        name: FollowLeaderParty(name, pref, NAMES)
        for name, pref in zip(NAMES, PREFS)
    }


class TestE10:
    def test_native_four_party_rendezvous(self):
        result = run_multiparty(
            parties(), RendezvousWorld(NAMES), max_rounds=25, seed=0
        )
        assert result.final_world_state().agreed(4)

    def test_reduced_rendezvous_achieves_compact_goal(self):
        user, server, world = reduce_to_two_party(
            parties(), RendezvousWorld(NAMES), "p2"
        )
        goal = CompactGoal(
            name="rendezvous",
            world=world,
            referee=rendezvous_referee(4),
            settle_fraction=0.5,
        )
        result = run_execution(user, server, world, max_rounds=60, seed=0)
        assert goal.evaluate(result).achieved

    def test_reduction_preserves_trajectory_for_every_pivot(self):
        native = run_multiparty(
            parties(), RendezvousWorld(NAMES), max_rounds=20, seed=5
        )
        for pivot in NAMES:
            user, server, world = reduce_to_two_party(
                parties(), RendezvousWorld(NAMES), pivot
            )
            reduced = run_execution(user, server, world, max_rounds=20, seed=5)
            assert reduced.world_states[-1] == native.world_states[-1], pivot
