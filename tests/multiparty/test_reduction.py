"""Tests for the N-party → two-party reduction (the paper's footnote 1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.execution import run_execution
from repro.multiparty.reduction import (
    CompositeServer,
    decode_profile,
    encode_profile,
    reduce_to_two_party,
)
from repro.multiparty.symmetric import (
    FollowLeaderParty,
    RendezvousWorld,
    run_multiparty,
)

NAMES = ["alice", "bob", "carol"]
PREFS = ["red", "green", "blue"]


def parties():
    return {
        name: FollowLeaderParty(name, pref, NAMES)
        for name, pref in zip(NAMES, PREFS)
    }


class TestProfileFraming:
    @given(
        profile=st.dictionaries(
            st.text(
                alphabet=st.characters(min_codepoint=33, max_codepoint=126),
                min_size=1,
                max_size=8,
            ),
            st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                min_size=1,
                max_size=20,
            ),
            max_size=5,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip(self, profile):
        assert decode_profile(encode_profile(profile)) == profile

    def test_empty_profile(self):
        assert encode_profile({}) == ""
        assert decode_profile("") == {}

    def test_silent_entries_skipped(self):
        assert encode_profile({"a": "", "b": "x"}) == encode_profile({"b": "x"})

    def test_malformed_entries_dropped(self):
        assert decode_profile("no-separator-here") == {}


class TestReduction:
    def test_user_must_be_a_party(self):
        with pytest.raises(ValueError):
            reduce_to_two_party(parties(), RendezvousWorld(NAMES), "mallory")

    def test_composite_excludes_user(self):
        with pytest.raises(ValueError):
            CompositeServer(parties(), "alice")

    @pytest.mark.parametrize("user_name", NAMES)
    def test_reduced_execution_reaches_agreement(self, user_name):
        user, server, world = reduce_to_two_party(
            parties(), RendezvousWorld(NAMES), user_name
        )
        result = run_execution(user, server, world, max_rounds=20, seed=0)
        final = result.final_world_state()
        assert final.agreed(3)
        assert set(dict(final.announcements).values()) == {"red"}

    def test_reduced_matches_native_trajectory(self):
        """The reduction theorem, checked on world-state trajectories."""
        native = run_multiparty(
            parties(), RendezvousWorld(NAMES), max_rounds=15, seed=7
        )
        user, server, world = reduce_to_two_party(
            parties(), RendezvousWorld(NAMES), "alice"
        )
        reduced = run_execution(user, server, world, max_rounds=15, seed=7)
        # Rendezvous is deterministic, so the trajectories must agree exactly
        # once both systems have delivered the first messages.
        assert native.world_states[-1] == reduced.world_states[-1]
        assert native.world_states[3:] == reduced.world_states[3:]
