"""Tests for the N-party model and the rendezvous goal."""

from __future__ import annotations

import pytest

from repro.errors import ExecutionError
from repro.multiparty.symmetric import (
    FollowLeaderParty,
    RendezvousState,
    RendezvousWorld,
    rendezvous_referee,
    run_multiparty,
)

NAMES = ["alice", "bob", "carol"]
PREFS = ["red", "green", "blue"]


def follow_leader_parties():
    return {
        name: FollowLeaderParty(name, pref, NAMES)
        for name, pref in zip(NAMES, PREFS)
    }


class TestRunMultiparty:
    def test_reserved_world_name_rejected(self):
        parties = follow_leader_parties()
        parties["world"] = parties.pop("carol")
        with pytest.raises(ExecutionError):
            run_multiparty(parties, RendezvousWorld(NAMES), max_rounds=5)

    def test_max_rounds_validated(self):
        with pytest.raises(ExecutionError):
            run_multiparty(
                follow_leader_parties(), RendezvousWorld(NAMES), max_rounds=0
            )

    def test_records_world_states(self):
        result = run_multiparty(
            follow_leader_parties(), RendezvousWorld(NAMES), max_rounds=10, seed=0
        )
        assert len(result.world_states) == 11
        assert result.rounds_executed == 10

    def test_deterministic_under_seed(self):
        a = run_multiparty(
            follow_leader_parties(), RendezvousWorld(NAMES), max_rounds=10, seed=3
        )
        b = run_multiparty(
            follow_leader_parties(), RendezvousWorld(NAMES), max_rounds=10, seed=3
        )
        assert a.world_states == b.world_states


class TestRendezvous:
    def test_follow_leader_converges_to_leader_preference(self):
        result = run_multiparty(
            follow_leader_parties(), RendezvousWorld(NAMES), max_rounds=10, seed=0
        )
        final = result.final_world_state()
        assert final.agreed(3)
        # "alice" is the alphabetically smallest party: her colour wins.
        assert dict(final.announcements)["bob"] == "red"

    def test_agreed_requires_all_parties(self):
        state = RendezvousState(announcements=(("alice", "red"),))
        assert not state.agreed(3)

    def test_agreed_requires_unanimity(self):
        state = RendezvousState(
            announcements=(("alice", "red"), ("bob", "blue"), ("carol", "red"))
        )
        assert not state.agreed(3)

    def test_referee_tolerates_warmup(self):
        referee = rendezvous_referee(3, warmup=12)
        result = run_multiparty(
            follow_leader_parties(), RendezvousWorld(NAMES), max_rounds=40, seed=0
        )

        class _Wrapper:
            world_states = result.world_states

        verdict = referee.judge(_Wrapper())
        assert verdict.last_bad_round is None or verdict.last_bad_round <= 13


class TestFeedbackWorld:
    def test_broadcasts_agreement_bit(self):
        import random

        world = RendezvousWorld(NAMES, feedback=True)
        rng = random.Random(0)
        state = world.initial_state(rng)
        state, out = world.step(
            state,
            {"alice": "PICK:red", "bob": "PICK:red", "carol": "PICK:red"},
            rng,
        )
        assert out == {name: "AGREE:1" for name in NAMES}

    def test_disagreement_broadcasts_zero(self):
        import random

        world = RendezvousWorld(NAMES, feedback=True)
        rng = random.Random(0)
        state = world.initial_state(rng)
        state, out = world.step(
            state, {"alice": "PICK:red", "bob": "PICK:blue"}, rng
        )
        assert set(out.values()) == {"AGREE:0"}

    def test_no_feedback_by_default(self):
        import random

        world = RendezvousWorld(NAMES)
        rng = random.Random(0)
        state = world.initial_state(rng)
        _, out = world.step(state, {"alice": "PICK:red"}, rng)
        assert out == {}
