"""Tests for universal rendezvous across community languages."""

from __future__ import annotations

import pytest

from repro.comm.codecs import IdentityCodec, ReverseCodec, codec_family
from repro.core.execution import run_execution
from repro.multiparty.babel import (
    CodecFollowLeaderParty,
    agreement_sensing,
    babel_rendezvous_goal,
    babel_server,
    babel_user_class,
    community_names,
)
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration

CODECS = codec_family(4)
NAMES = community_names(4)
SYMBOLS = ["red", "green", "blue"]
GOAL = babel_rendezvous_goal(NAMES)


class TestCommunityNames:
    def test_newcomer_sorts_last(self):
        names = community_names(5)
        assert sorted(names)[-1] == "z-newcomer"

    def test_size_validated(self):
        with pytest.raises(ValueError):
            community_names(1)


class TestCodecParty:
    def test_encodes_peer_messages(self):
        import random

        party = CodecFollowLeaderParty("m0", "red", ["m0", "m1"], ReverseCodec())
        state = party.initial_state(random.Random(0))
        _, outbox = party.step(state, {}, random.Random(0))
        assert ReverseCodec().decode(outbox["m1"]) == "SYM:red"
        assert outbox["world"] == "PICK:red"  # World channel stays plain.

    def test_ignores_foreign_speech(self):
        import random

        party = CodecFollowLeaderParty("m1", "red", ["m0", "m1"], IdentityCodec())
        state = party.initial_state(random.Random(0))
        # m0 leads but speaks reversed; m1 cannot understand and keeps red.
        inbox = {"m0": ReverseCodec().encode("SYM:blue")}
        new_state, outbox = party.step(state, inbox, random.Random(0))
        assert new_state == "red"


class TestBabelRendezvous:
    def test_matched_newcomer_joins(self):
        users = babel_user_class(CODECS, NAMES)
        server = babel_server(CODECS[1], NAMES, SYMBOLS)
        result = run_execution(users[1], server, GOAL.world, max_rounds=200, seed=0)
        assert GOAL.evaluate(result).achieved
        final = result.final_world_state()
        # Agreement lands on the community leader's symbol, not the newcomer's.
        assert dict(final.announcements)["z-newcomer"] == SYMBOLS[0]

    def test_mismatched_newcomer_blocks_agreement(self):
        users = babel_user_class(CODECS, NAMES)
        server = babel_server(CODECS[1], NAMES, SYMBOLS)
        result = run_execution(users[0], server, GOAL.world, max_rounds=200, seed=0)
        assert not GOAL.evaluate(result).achieved

    def test_universal_newcomer_joins_any_community(self):
        for index, codec in enumerate(CODECS):
            server = babel_server(codec, NAMES, SYMBOLS)
            universal = CompactUniversalUser(
                ListEnumeration(babel_user_class(CODECS, NAMES)),
                agreement_sensing(),
            )
            result = run_execution(
                universal, server, GOAL.world, max_rounds=1500, seed=index
            )
            assert GOAL.evaluate(result).achieved, codec.name
            state = result.rounds[-1].user_state_after
            assert state.index == index  # Learned the community's language.

    def test_larger_community(self):
        names = community_names(6)
        goal = babel_rendezvous_goal(names)
        server = babel_server(CODECS[2], names, SYMBOLS)
        universal = CompactUniversalUser(
            ListEnumeration(babel_user_class(CODECS, names)), agreement_sensing()
        )
        result = run_execution(universal, server, goal.world, max_rounds=1500, seed=3)
        assert goal.evaluate(result).achieved
