"""Tests for strategy enumerations and cursors."""

from __future__ import annotations

import pytest

from repro.core.strategy import SilentUser
from repro.errors import EnumerationExhaustedError
from repro.universal.enumeration import (
    EnumerationCursor,
    GeneratorEnumeration,
    ListEnumeration,
    materialize,
)


def users(n):
    return [SilentUser() for _ in range(n)]


class TestListEnumeration:
    def test_preserves_order(self):
        items = users(3)
        enum = ListEnumeration(items)
        assert list(enum) == items

    def test_size_hint(self):
        assert ListEnumeration(users(4)).size_hint() == 4
        assert len(ListEnumeration(users(4))) == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ListEnumeration([])

    def test_name_includes_size(self):
        assert "[3]" in ListEnumeration(users(3), label="x").name


class TestGeneratorEnumeration:
    def test_lazy_and_repeatable(self):
        calls = []

        def factory():
            calls.append(1)
            return iter(users(2))

        enum = GeneratorEnumeration(factory)
        assert len(list(enum)) == 2
        assert len(list(enum)) == 2
        assert len(calls) == 2  # Fresh iterator per pass.

    def test_size_hint_defaults_to_none(self):
        assert GeneratorEnumeration(lambda: iter(users(1))).size_hint() is None


class TestCursor:
    def test_random_access_materializes_prefix(self):
        items = users(5)
        cursor = EnumerationCursor(ListEnumeration(items))
        assert cursor.get(3) is items[3]
        assert cursor.materialized == 4
        assert cursor.get(0) is items[0]  # Cached, no re-iteration.

    def test_exhaustion_raises(self):
        cursor = EnumerationCursor(ListEnumeration(users(2)))
        with pytest.raises(EnumerationExhaustedError):
            cursor.get(2)

    def test_known_size_after_exhaustion(self):
        cursor = EnumerationCursor(GeneratorEnumeration(lambda: iter(users(3))))
        assert cursor.known_size() is None
        with pytest.raises(EnumerationExhaustedError):
            cursor.get(10)
        assert cursor.known_size() == 3

    def test_negative_index_rejected(self):
        cursor = EnumerationCursor(ListEnumeration(users(1)))
        with pytest.raises(IndexError):
            cursor.get(-1)

    def test_materialize_returns_fresh_cursor(self):
        enum = ListEnumeration(users(2))
        a = materialize(enum)
        b = materialize(enum)
        a.get(1)
        assert b.materialized == 0
