"""Tests for the belief-weighted universal user."""

from __future__ import annotations

import pytest

from repro.core.execution import run_execution
from repro.core.sensing import ConstantSensing
from repro.universal.bayesian import BeliefWeightedUniversalUser

from tests.universal.helpers import (
    KeywordServer,
    KeywordUser,
    NullWorld,
    keyword_sensing,
)

WORDS = ["alpha", "beta", "gamma", "delta"]


def candidates():
    return [KeywordUser(w) for w in WORDS]


class TestConvergence:
    def test_uniform_prior_finds_target(self):
        user = BeliefWeightedUniversalUser(candidates(), keyword_sensing())
        result = run_execution(
            user, KeywordServer(WORDS[2]), NullWorld(), max_rounds=300, seed=0
        )
        state = result.rounds[-1].user_state_after
        assert state.index == 2

    def test_concentrated_correct_prior_switches_less(self):
        def switches_with(prior):
            user = BeliefWeightedUniversalUser(
                candidates(), keyword_sensing(), prior=prior
            )
            result = run_execution(
                user, KeywordServer(WORDS[3]), NullWorld(), max_rounds=300, seed=0
            )
            return result.rounds[-1].user_state_after.switches

        uniform = switches_with([1.0, 1.0, 1.0, 1.0])
        informed = switches_with([0.1, 0.1, 0.1, 10.0])
        assert informed < uniform
        assert informed <= 1

    def test_weight_decay_eventually_leaves_wrong_favourite(self):
        user = BeliefWeightedUniversalUser(
            candidates(), keyword_sensing(), prior=[100.0, 1.0, 1.0, 1.0]
        )
        result = run_execution(
            user, KeywordServer(WORDS[1]), NullWorld(), max_rounds=500, seed=0
        )
        state = result.rounds[-1].user_state_after
        assert state.index == 1


class TestValidation:
    def test_empty_class_rejected(self):
        with pytest.raises(ValueError):
            BeliefWeightedUniversalUser([], keyword_sensing())

    def test_prior_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BeliefWeightedUniversalUser(candidates(), keyword_sensing(), prior=[1.0])

    def test_nonpositive_prior_rejected(self):
        with pytest.raises(ValueError):
            BeliefWeightedUniversalUser(
                candidates(), keyword_sensing(), prior=[1.0, 0.0, 1.0, 1.0]
            )

    @pytest.mark.parametrize("decay", [0.0, 1.0, 1.5])
    def test_decay_range_validated(self, decay):
        with pytest.raises(ValueError):
            BeliefWeightedUniversalUser(candidates(), keyword_sensing(), decay=decay)


class TestHaltSuppression:
    def test_halt_under_negative_indication_is_stripped(self):
        from tests.universal.helpers import EagerHaltUser

        user = BeliefWeightedUniversalUser(
            [EagerHaltUser(), KeywordUser(WORDS[0])], ConstantSensing(False)
        )
        result = run_execution(
            user, KeywordServer(WORDS[0]), NullWorld(), max_rounds=50, seed=0
        )
        assert not result.halted
