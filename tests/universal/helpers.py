"""A minimal controlled scenario for universal-user tests.

:class:`KeywordServer` replies ``YES`` to its secret keyword and ``NO`` to
everything else; :class:`KeywordUser` sends one fixed keyword every round
(halting variants available).  Sensing reads the server's replies straight
from the view.  This gives the tests complete control over which candidate
index is "correct" with no world machinery in the way.
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.comm.messages import ServerInbox, ServerOutbox, UserInbox, UserOutbox, WorldOutbox
from repro.core.sensing import GraceSensing, Sensing
from repro.core.strategy import ServerStrategy, UserStrategy, WorldStrategy
from repro.core.views import UserView


class NullWorld(WorldStrategy):
    """A world with a constant state (the goal here is synthetic)."""

    def initial_state(self, rng: random.Random) -> int:
        return 0

    def step(self, state, inbox, rng):
        return state, WorldOutbox()


class KeywordServer(ServerStrategy):
    """Replies ``YES:<word>`` to the secret keyword, ``NO:<word>`` otherwise.

    Replies echo the word they answer — the attribution discipline all the
    real worlds use (``ACT:<obs>=..``, ``POLY:<i>:..``): without it, a YES
    earned by an abandoned trial's last message would arrive during the
    *next* trial and be credited to an innocent candidate.
    """

    def __init__(self, keyword: str) -> None:
        self._keyword = keyword

    @property
    def name(self) -> str:
        return f"keyword[{self._keyword}]"

    def initial_state(self, rng: random.Random) -> int:
        return 0

    def step(
        self, state: int, inbox: ServerInbox, rng: random.Random
    ) -> Tuple[int, ServerOutbox]:
        if not inbox.from_user:
            return state + 1, ServerOutbox()
        verdict = "YES" if inbox.from_user == self._keyword else "NO"
        return state + 1, ServerOutbox(to_user=f"{verdict}:{inbox.from_user}")


class KeywordUser(UserStrategy):
    """Sends one fixed keyword every round; optionally halts on its own YES."""

    def __init__(self, keyword: str, halt_on_yes: bool = False) -> None:
        self._keyword = keyword
        self._halt_on_yes = halt_on_yes

    @property
    def name(self) -> str:
        return f"say[{self._keyword}]"

    def initial_state(self, rng: random.Random) -> int:
        return 0

    def step(
        self, state: int, inbox: UserInbox, rng: random.Random
    ) -> Tuple[int, UserOutbox]:
        if self._halt_on_yes and inbox.from_server == f"YES:{self._keyword}":
            return state + 1, UserOutbox(halt=True, output=self._keyword)
        return state + 1, UserOutbox(to_server=self._keyword)


class EagerHaltUser(UserStrategy):
    """Halts immediately claiming success (the unsafe candidate)."""

    def __init__(self, output: str = "eager") -> None:
        self._output = output

    @property
    def name(self) -> str:
        return "eager-halt"

    def initial_state(self, rng: random.Random) -> int:
        return 0

    def step(self, state, inbox, rng):
        return state + 1, UserOutbox(halt=True, output=self._output)


class YesSensing(Sensing):
    """Positive iff the latest reply is a YES for a word *this trial* sent.

    The trial-locality check (the echoed word must appear in the view's own
    outgoing messages) is what makes the sensing *safe*: YES verdicts
    triggered by an abandoned trial's traffic are not credited.
    """

    def __init__(self, default: bool = True) -> None:
        self._default = default

    @property
    def name(self) -> str:
        return "yes"

    def indicate(self, view: UserView) -> bool:
        replies = view.messages_from_server()
        if not replies:
            return self._default
        verdict, _, word = replies[-1].partition(":")
        return verdict == "YES" and word in view.messages_to_server()


def keyword_sensing(grace: int = 2) -> Sensing:
    """YES-sensing with the 2-round channel-latency grace.

    The post-grace default is *negative*: a candidate with no server reply
    has produced no evidence, and endorsing silence would let mute
    candidates (e.g. GVM programs that never WRITE) squat forever.
    """
    return GraceSensing(YesSensing(default=False), grace_rounds=grace)
