"""Tests for the trial schedules, especially Levin's budget guarantees."""

from __future__ import annotations

import itertools

import pytest

from repro.universal.schedules import (
    doubling_sweep_trials,
    levin_trials,
    sequential_trials,
)


def take(iterator, n):
    return list(itertools.islice(iterator, n))


class TestLevin:
    def test_canonical_prefix(self):
        assert take(levin_trials(), 6) == [
            (0, 1), (0, 2), (1, 1), (0, 4), (1, 2), (2, 1),
        ]

    def test_budget_doubles_per_phase_per_candidate(self):
        trials = take(levin_trials(), 100)
        budgets_for_2 = [b for i, b in trials if i == 2]
        assert budgets_for_2[:4] == [1, 2, 4, 8]

    def test_total_budget_up_to_phase_t(self):
        """Candidate i's cumulative budget through phase t is 2^(t-i) - 1."""
        trials = []
        gen = levin_trials()
        # Phases 1..8 contain 1+2+...+8 = 36 trials.
        trials = take(gen, 36)
        cumulative_0 = sum(b for i, b in trials if i == 0)
        assert cumulative_0 == 2**8 - 1

    def test_max_index_caps_candidates(self):
        trials = take(levin_trials(max_index=1), 20)
        assert all(i <= 1 for i, _ in trials)
        # Budgets keep growing for the capped candidates.
        assert max(b for i, b in trials if i == 0) >= 16

    def test_infinite(self):
        gen = levin_trials()
        assert len(take(gen, 1000)) == 1000


class TestSequential:
    def test_fixed_budget_single_pass(self):
        trials = take(sequential_trials(5, max_index=2, repeat=False), 10)
        assert trials == [(0, 5), (1, 5), (2, 5)]

    def test_cyclic_repeat(self):
        trials = take(sequential_trials(3, max_index=1, repeat=True), 6)
        assert trials == [(0, 3), (1, 3)] * 3

    def test_budget_validated(self):
        with pytest.raises(ValueError):
            next(sequential_trials(0))


class TestDoublingSweep:
    def test_budget_doubles_per_sweep(self):
        trials = take(doubling_sweep_trials(max_index=2), 9)
        assert trials == [
            (0, 1), (1, 1), (2, 1),
            (0, 2), (1, 2), (2, 2),
            (0, 4), (1, 4), (2, 4),
        ]

    def test_every_candidate_gets_unbounded_budget(self):
        trials = take(doubling_sweep_trials(max_index=3), 100)
        budgets_for_3 = [b for i, b in trials if i == 3]
        assert max(budgets_for_3) >= 2**10

    def test_infinite_class_sweeps_grow(self):
        trials = take(doubling_sweep_trials(max_index=None), 50)
        max_index_seen = max(i for i, _ in trials)
        assert max_index_seen >= 4  # Coverage widens over sweeps.


from hypothesis import given, settings
from hypothesis import strategies as st


class TestLevinProperties:
    @given(
        index=st.integers(min_value=0, max_value=6),
        phases=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_cumulative_budget_formula(self, index, phases):
        """Candidate i's total budget through phase t is 2^(t-i) - 1 for
        t > i (and 0 before its first phase)."""
        trials = []
        gen = levin_trials()
        for t in range(1, phases + 1):
            for _ in range(t):
                trials.append(next(gen))
        total = sum(b for i, b in trials if i == index)
        expected = (2 ** (phases - index) - 1) if phases > index else 0
        assert total == expected

    @given(index=st.integers(min_value=0, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_first_appearance_phase(self, index):
        """Candidate i first appears in phase i+1, with budget 1."""
        gen = levin_trials()
        seen = []
        for t in range(1, index + 2):
            for _ in range(t):
                seen.append(next(gen))
        firsts = [trial for trial in seen if trial[0] == index]
        assert firsts == [(index, 1)]
