"""Tests for the finite-goal universal user (Levin-style parallel enumeration)."""

from __future__ import annotations

import pytest

from repro.core.execution import run_execution
from repro.core.sensing import ConstantSensing
from repro.universal.enumeration import GeneratorEnumeration, ListEnumeration
from repro.universal.finite import FiniteUniversalUser
from repro.universal.schedules import sequential_trials

from tests.universal.helpers import (
    EagerHaltUser,
    KeywordServer,
    KeywordUser,
    NullWorld,
    YesSensing,
    keyword_sensing,
)

WORDS = ["alpha", "beta", "gamma", "delta"]


def halting_class():
    return ListEnumeration(
        [KeywordUser(w, halt_on_yes=True) for w in WORDS], label="halting-words"
    )


class TestSuccess:
    @pytest.mark.parametrize("word", WORDS)
    def test_halts_with_correct_candidate_output(self, word):
        user = FiniteUniversalUser(halting_class(), keyword_sensing())
        result = run_execution(
            user, KeywordServer(word), NullWorld(), max_rounds=2000, seed=0
        )
        assert result.halted
        assert result.user_output == word

    def test_later_candidates_cost_more_rounds(self):
        def rounds_for(word):
            user = FiniteUniversalUser(halting_class(), keyword_sensing())
            result = run_execution(
                user, KeywordServer(word), NullWorld(), max_rounds=4000, seed=0
            )
            assert result.halted
            return result.rounds_executed

        assert rounds_for(WORDS[0]) < rounds_for(WORDS[3])


class TestSensingGatesHalting:
    def test_halt_without_positive_indication_is_suppressed(self):
        """An eager-halting candidate must not end the run unendorsed."""
        enum = ListEnumeration(
            [EagerHaltUser(), KeywordUser(WORDS[0], halt_on_yes=True)]
        )
        user = FiniteUniversalUser(enum, YesSensing(default=False))
        result = run_execution(
            user, KeywordServer(WORDS[0]), NullWorld(), max_rounds=500, seed=0
        )
        assert result.halted
        assert result.user_output == WORDS[0]  # Not "eager".

    def test_never_halts_with_always_negative_sensing(self):
        user = FiniteUniversalUser(halting_class(), ConstantSensing(False))
        result = run_execution(
            user, KeywordServer(WORDS[0]), NullWorld(), max_rounds=300, seed=0
        )
        assert not result.halted

    def test_never_halts_when_no_candidate_works(self):
        user = FiniteUniversalUser(halting_class(), keyword_sensing())
        result = run_execution(
            user, KeywordServer("unknown-word"), NullWorld(), max_rounds=500, seed=0
        )
        assert not result.halted


class TestSchedules:
    def test_custom_schedule_factory(self):
        user = FiniteUniversalUser(
            halting_class(),
            keyword_sensing(),
            schedule_factory=lambda cap: sequential_trials(
                20, max_index=None if cap is None else cap - 1
            ),
        )
        result = run_execution(
            user, KeywordServer(WORDS[2]), NullWorld(), max_rounds=500, seed=0
        )
        assert result.halted and result.user_output == WORDS[2]

    def test_finite_schedule_exhaustion_goes_quiet(self):
        user = FiniteUniversalUser(
            halting_class(),
            keyword_sensing(),
            schedule_factory=lambda cap: sequential_trials(
                1, max_index=0, repeat=False
            ),
        )
        result = run_execution(
            user, KeywordServer(WORDS[3]), NullWorld(), max_rounds=50, seed=0
        )
        assert not result.halted

    def test_unknown_size_enumeration_learns_cap(self):
        enum = GeneratorEnumeration(
            lambda: iter([KeywordUser(w, halt_on_yes=True) for w in WORDS]),
            label="lazy",
        )
        user = FiniteUniversalUser(enum, keyword_sensing())
        result = run_execution(
            user, KeywordServer(WORDS[3]), NullWorld(), max_rounds=4000, seed=0
        )
        assert result.halted and result.user_output == WORDS[3]


class TestStats:
    def test_trials_counted(self):
        user = FiniteUniversalUser(halting_class(), keyword_sensing())
        result = run_execution(
            user, KeywordServer(WORDS[2]), NullWorld(), max_rounds=2000, seed=0
        )
        state = result.rounds[-1].user_state_after
        stats = FiniteUniversalUser.stats(state)
        assert stats.trials_run >= 3
        assert stats.total_rounds == result.rounds_executed


class TestDegenerateSchedules:
    def test_schedule_with_only_out_of_range_indices_goes_quiet(self):
        """A schedule that never names an in-range candidate must not hang
        the engine — the user goes silent and the horizon ends the run."""

        def bad_factory(cap):
            def gen():
                while True:
                    yield (10_000_000, 1)  # Far past any class size.

            return gen()

        user = FiniteUniversalUser(
            halting_class(), keyword_sensing(), schedule_factory=bad_factory
        )
        result = run_execution(
            user, KeywordServer(WORDS[0]), NullWorld(), max_rounds=20, seed=0
        )
        assert not result.halted
        assert result.rounds_executed == 20
