"""Tests for the compact-goal universal user (Theorem 1, compact case)."""

from __future__ import annotations

import pytest

from repro.core.execution import run_execution
from repro.core.sensing import ConstantSensing
from repro.errors import EnumerationExhaustedError
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration

from tests.universal.helpers import (
    KeywordServer,
    KeywordUser,
    NullWorld,
    keyword_sensing,
)

WORDS = ["alpha", "beta", "gamma", "delta", "epsilon"]


def candidate_class():
    return ListEnumeration([KeywordUser(w) for w in WORDS], label="words")


def run_universal(target_word, max_rounds=200, **kwargs):
    user = CompactUniversalUser(candidate_class(), keyword_sensing(), **kwargs)
    result = run_execution(
        user, KeywordServer(target_word), NullWorld(), max_rounds=max_rounds, seed=0
    )
    return result, result.rounds[-1].user_state_after


class TestConvergence:
    @pytest.mark.parametrize("index,word", list(enumerate(WORDS)))
    def test_settles_on_correct_index(self, index, word):
        _, state = run_universal(word)
        assert state.index == index

    def test_switch_count_equals_index(self, ):
        """Candidates are visited strictly in enumeration order."""
        _, state = run_universal(WORDS[3])
        assert state.switches == 3
        assert state.wraps == 0

    def test_stays_settled_forever(self):
        result, state = run_universal(WORDS[1], max_rounds=500)
        assert state.index == 1
        # After settling, the correct keyword is sent every round.
        sent = [r.outbox.to_server for r in result.user_view][-100:]
        assert all(m == WORDS[1] for m in sent)


class TestSwitchingDiscipline:
    def test_never_switches_on_positive_indication(self):
        """With always-positive sensing the first candidate is never evicted."""
        user = CompactUniversalUser(candidate_class(), ConstantSensing(True))
        result = run_execution(
            user, KeywordServer(WORDS[4]), NullWorld(), max_rounds=100, seed=0
        )
        state = result.rounds[-1].user_state_after
        assert state.index == 0 and state.switches == 0

    def test_always_negative_sensing_cycles_forever(self):
        user = CompactUniversalUser(candidate_class(), ConstantSensing(False))
        result = run_execution(
            user, KeywordServer(WORDS[0]), NullWorld(), max_rounds=100, seed=0
        )
        state = result.rounds[-1].user_state_after
        assert state.switches == 100  # One eviction per round.
        assert state.wraps > 0

    def test_min_trial_rounds_floors_trial_length(self):
        user = CompactUniversalUser(
            candidate_class(), ConstantSensing(False), min_trial_rounds=10
        )
        result = run_execution(
            user, KeywordServer(WORDS[0]), NullWorld(), max_rounds=100, seed=0
        )
        state = result.rounds[-1].user_state_after
        assert state.switches == 10

    def test_wrap_around_disabled_raises(self):
        user = CompactUniversalUser(
            candidate_class(), ConstantSensing(False), wrap_around=False
        )
        with pytest.raises(EnumerationExhaustedError):
            run_execution(
                user, KeywordServer(WORDS[0]), NullWorld(), max_rounds=100, seed=0
            )


class TestHaltSuppression:
    def test_halt_under_negative_indication_is_stripped(self):
        """An evicted candidate cannot end the (infinite) execution."""
        from tests.universal.helpers import EagerHaltUser

        enum = ListEnumeration([EagerHaltUser(), KeywordUser(WORDS[0])])
        user = CompactUniversalUser(enum, ConstantSensing(False))
        result = run_execution(
            user, KeywordServer(WORDS[0]), NullWorld(), max_rounds=50, seed=0
        )
        assert not result.halted


class TestValidationAndStats:
    def test_negative_min_trial_rounds_rejected(self):
        with pytest.raises(ValueError):
            CompactUniversalUser(
                candidate_class(), ConstantSensing(True), min_trial_rounds=-1
            )

    def test_stats_extraction(self):
        _, state = run_universal(WORDS[2])
        stats = CompactUniversalUser.stats(state)
        assert stats.final_index == 2
        assert stats.switches == 2
        assert stats.total_rounds > 0

    def test_name_mentions_enumeration_and_sensing(self):
        user = CompactUniversalUser(candidate_class(), keyword_sensing())
        assert "words" in user.name
