"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.comm.codecs import codec_family
from repro.mathx.modular import Field


@pytest.fixture(scope="session")
def field() -> Field:
    """The default prime field used by all protocol tests."""
    return Field()


@pytest.fixture(scope="session")
def small_field() -> Field:
    """A deliberately small field (soundness-error edge cases)."""
    return Field(p=101)


@pytest.fixture
def rng() -> random.Random:
    """A fresh seeded RNG per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture(scope="session")
def codecs4():
    """A small deterministic codec family."""
    return codec_family(4)


@pytest.fixture(scope="session")
def codecs8():
    """A medium deterministic codec family."""
    return codec_family(8)
