"""Robustness and edge tests for counting users/provers."""

from __future__ import annotations

import random

import pytest

from repro.comm.codecs import IdentityCodec
from repro.core.execution import run_execution
from repro.mathx.modular import Field
from repro.qbf.formulas import Var
from repro.qbf.generators import random_cnf
from repro.servers.counting_provers import HonestCountingServer
from repro.servers.faulty import DroppingServer, GarblingServer
from repro.users.counting_users import CountingUser
from repro.worlds.counting import counting_goal

F = Field()
GOAL = counting_goal([random_cnf(random.Random(1), 4, 5)])


class TestFaultTolerance:
    def test_survives_dropped_replies(self):
        user = CountingUser(IdentityCodec(), F, resend_every=4)
        server = DroppingServer(HonestCountingServer(F), drop_probability=0.3)
        result = run_execution(user, server, GOAL.world, max_rounds=2000, seed=5)
        assert GOAL.evaluate(result).achieved

    def test_garbled_replies_never_cause_wrong_count(self):
        user = CountingUser(IdentityCodec(), F, resend_every=4)
        server = GarblingServer(HonestCountingServer(F), garble_probability=0.3)
        for seed in range(3):
            result = run_execution(
                user, server, GOAL.world, max_rounds=2000, seed=seed
            )
            if result.halted:
                assert GOAL.evaluate(result).achieved


class TestValidation:
    def test_resend_period_validated(self):
        with pytest.raises(ValueError):
            CountingUser(IdentityCodec(), F, resend_every=0)

    def test_single_variable_instance(self):
        goal = counting_goal([Var("x")])
        user = CountingUser(IdentityCodec(), F)
        result = run_execution(
            user, HonestCountingServer(F), goal.world, max_rounds=100, seed=0
        )
        assert result.halted
        assert result.user_output == "COUNT:1"
        assert goal.evaluate(result).achieved


class TestServerEdgeCases:
    def test_variable_free_instance_refused(self):
        from repro.comm.messages import ServerInbox

        server = HonestCountingServer(F)
        rng = random.Random(0)
        state = server.initial_state(rng)
        _, out = server.step(state, ServerInbox(from_user="COUNT:1"), rng)
        assert out.to_user == "ERR:no-variables"

    def test_bad_instance_refused(self):
        from repro.comm.messages import ServerInbox

        server = HonestCountingServer(F)
        rng = random.Random(0)
        state = server.initial_state(rng)
        _, out = server.step(state, ServerInbox(from_user="COUNT:((("), rng)
        assert out.to_user == "ERR:bad-instance"

    def test_round_before_count_refused(self):
        from repro.comm.messages import ServerInbox

        server = HonestCountingServer(F)
        rng = random.Random(0)
        state = server.initial_state(rng)
        _, out = server.step(state, ServerInbox(from_user="SROUND:0"), rng)
        assert out.to_user == "ERR:no-session"

    def test_reserves_rounds_idempotently(self):
        from repro.comm.messages import ServerInbox
        from repro.qbf.formulas import serialize

        formula = random_cnf(random.Random(2), 3, 3)
        server = HonestCountingServer(F)
        rng = random.Random(0)
        state = server.initial_state(rng)
        state, _ = server.step(
            state, ServerInbox(from_user=f"COUNT:{serialize(formula)}"), rng
        )
        state, first = server.step(state, ServerInbox(from_user="SROUND:0"), rng)
        state, second = server.step(state, ServerInbox(from_user="SROUND:0"), rng)
        assert first.to_user == second.to_user
