"""Unit tests for the guided navigator's latency discipline."""

from __future__ import annotations

import random

from repro.comm.codecs import IdentityCodec, ReverseCodec
from repro.comm.messages import UserInbox
from repro.users.navigation_users import GuidedNavigator, navigator_user_class


def step(user, state, from_world="", from_server="", seed=0):
    return user.step(
        state, UserInbox(from_world=from_world, from_server=from_server),
        random.Random(seed),
    )


class TestGuidedNavigator:
    def test_moves_on_matching_advice(self):
        user = GuidedNavigator(IdentityCodec())
        state = user.initial_state(random.Random(0))
        state, out = step(
            user, state, from_world="POS:1,1;AT:0", from_server="GO:1,1=east"
        )
        assert out.to_world == "MOVE:east"

    def test_ignores_stale_advice_for_other_position(self):
        user = GuidedNavigator(IdentityCodec())
        state = user.initial_state(random.Random(0))
        state, out = step(
            user, state, from_world="POS:2,1;AT:0", from_server="GO:1,1=east"
        )
        assert out.to_world == ""

    def test_one_move_per_observed_position(self):
        """The world's report lags a move by two rounds; repeated advice for
        the same still-reported position must not trigger repeat moves."""
        user = GuidedNavigator(IdentityCodec())
        state = user.initial_state(random.Random(0))
        state, first = step(
            user, state, from_world="POS:1,1;AT:0", from_server="GO:1,1=east"
        )
        state, second = step(
            user, state, from_world="POS:1,1;AT:0", from_server="GO:1,1=east"
        )
        assert first.to_world == "MOVE:east"
        assert second.to_world == ""

    def test_moves_again_after_position_update(self):
        user = GuidedNavigator(IdentityCodec())
        state = user.initial_state(random.Random(0))
        state, _ = step(
            user, state, from_world="POS:1,1;AT:0", from_server="GO:1,1=east"
        )
        state, out = step(
            user, state, from_world="POS:2,1;AT:0", from_server="GO:2,1=east"
        )
        assert out.to_world == "MOVE:east"

    def test_halts_on_arrival(self):
        user = GuidedNavigator(IdentityCodec())
        state = user.initial_state(random.Random(0))
        _, out = step(user, state, from_world="POS:3,3;AT:1")
        assert out.halt and out.output == "ARRIVED"

    def test_ignores_malformed_advice(self):
        user = GuidedNavigator(IdentityCodec())
        state = user.initial_state(random.Random(0))
        for bad in ("GO:1,1=up", "GO:east", "STOP:1,1=east", "garbage"):
            state, out = step(
                user, state, from_world="POS:1,1;AT:0", from_server=bad
            )
            assert out.to_world == "", bad

    def test_wrong_codec_silences_advice(self):
        user = GuidedNavigator(ReverseCodec())
        state = user.initial_state(random.Random(0))
        _, out = step(
            user, state, from_world="POS:1,1;AT:0", from_server="GO:1,1=east"
        )
        assert out.to_world == ""

    def test_class_builder_order(self):
        from repro.comm.codecs import codec_family

        codecs = codec_family(3)
        users = navigator_user_class(codecs)
        assert [u.name for u in users] == [f"navigate@{c.name}" for c in codecs]
