"""Tests for scripted and composite user strategies."""

from __future__ import annotations

import random

import pytest

from repro.comm.messages import UserInbox, UserOutbox
from repro.users.scripted import BabblingUser, JunkThenUser, ScriptedUser


def drive(user, rounds, seed=0):
    rng = random.Random(seed)
    state = user.initial_state(rng)
    outs = []
    for _ in range(rounds):
        state, out = user.step(state, UserInbox(), rng)
        outs.append(out)
    return outs


class TestScriptedUser:
    def test_plays_script_then_silence(self):
        user = ScriptedUser([UserOutbox(to_server="a"), UserOutbox(to_server="b")])
        outs = drive(user, 4)
        assert [o.to_server for o in outs] == ["a", "b", "", ""]
        assert not any(o.halt for o in outs)

    def test_halt_after_script(self):
        user = ScriptedUser([UserOutbox(to_server="a")], halt_after="fin")
        outs = drive(user, 3)
        assert outs[1].halt and outs[1].output == "fin"
        assert not outs[2].halt  # Engine would have stopped; strategy is total anyway.


class TestBabblingUser:
    def test_babbles_on_both_channels(self):
        outs = drive(BabblingUser(message_length=5), 3)
        assert all(len(o.to_server) == 5 and len(o.to_world) == 5 for o in outs)

    def test_deterministic_under_seed(self):
        a = [o.to_server for o in drive(BabblingUser(), 5, seed=1)]
        b = [o.to_server for o in drive(BabblingUser(), 5, seed=1)]
        assert a == b

    def test_length_validated(self):
        with pytest.raises(ValueError):
            BabblingUser(message_length=0)


class TestJunkThenUser:
    def test_switches_after_junk_rounds(self):
        junk = ScriptedUser([UserOutbox(to_server="junk")] * 10)
        real = ScriptedUser([UserOutbox(to_server="real")])
        user = JunkThenUser(junk=junk, then=real, junk_rounds=2)
        outs = drive(user, 4)
        assert [o.to_server for o in outs] == ["junk", "junk", "real", ""]

    def test_zero_junk_rounds_is_transparent(self):
        real = ScriptedUser([UserOutbox(to_server="real")])
        user = JunkThenUser(junk=BabblingUser(), then=real, junk_rounds=0)
        outs = drive(user, 1)
        assert outs[0].to_server == "real"

    def test_junk_phase_halt_suppressed(self):
        eager = ScriptedUser([], halt_after="bail")
        real = ScriptedUser([UserOutbox(to_server="real")])
        user = JunkThenUser(junk=eager, then=real, junk_rounds=2)
        outs = drive(user, 3)
        assert not outs[0].halt and not outs[1].halt
        assert outs[2].to_server == "real"

    def test_negative_junk_rounds_rejected(self):
        with pytest.raises(ValueError):
            JunkThenUser(junk=BabblingUser(), then=BabblingUser(), junk_rounds=-1)
