"""Unit tests for the multi-session delegation wrapper's parsing and races."""

from __future__ import annotations

import random

import pytest

from repro.comm.codecs import IdentityCodec
from repro.comm.messages import UserInbox
from repro.mathx.modular import Field
from repro.qbf.generators import random_qbf
from repro.users.delegation_users import RepeatedDelegationUser

F = Field()
QBF_WIRE = random_qbf(random.Random(1), 2).serialize()


class TestParseWorld:
    def test_well_formed(self):
        session, instance = RepeatedDelegationUser._parse_world(
            f"INSTANCE:7:{QBF_WIRE};FB:ok"
        )
        assert session == "7"
        assert instance == QBF_WIRE

    def test_instance_colons_preserved(self):
        _, instance = RepeatedDelegationUser._parse_world(
            f"INSTANCE:0:{QBF_WIRE};FB:none"
        )
        assert ":" in instance  # The QBF wire form itself contains colons.

    @pytest.mark.parametrize(
        "bad",
        ["", "garbage", "INSTANCE:", "INSTANCE:5", "OTHER:1:x;FB:ok", "INSTANCE::x"],
    )
    def test_malformed_rejected(self, bad):
        assert RepeatedDelegationUser._parse_world(bad) == (None, None)


class TestSessionDiscipline:
    def _user(self):
        return RepeatedDelegationUser(IdentityCodec(), F)

    def test_new_session_restarts_inner(self):
        user = self._user()
        rng = random.Random(0)
        state = user.initial_state(rng)
        state, out = user.step(
            state, UserInbox(from_world=f"INSTANCE:0:{QBF_WIRE};FB:none"), rng
        )
        assert out.to_server.startswith("PROVE:")
        first_inner = state.inner
        state, out = user.step(
            state, UserInbox(from_world=f"INSTANCE:1:{QBF_WIRE};FB:none"), rng
        )
        assert state.inner is not first_inner
        assert out.to_server.startswith("PROVE:")

    def test_same_session_does_not_restart(self):
        user = self._user()
        rng = random.Random(0)
        state = user.initial_state(rng)
        state, _ = user.step(
            state, UserInbox(from_world=f"INSTANCE:0:{QBF_WIRE};FB:none"), rng
        )
        inner = state.inner
        state, out = user.step(
            state, UserInbox(from_world=f"INSTANCE:0:{QBF_WIRE};FB:none"), rng
        )
        assert state.inner is inner
        assert not out.to_server.startswith("PROVE:")  # No re-open mid-proof.

    def test_done_flag_suppresses_stale_reverification(self):
        """After answering, announcements of the same session are ignored."""
        user = self._user()
        rng = random.Random(0)
        state = user.initial_state(rng)
        state, _ = user.step(
            state, UserInbox(from_world=f"INSTANCE:0:{QBF_WIRE};FB:none"), rng
        )
        state.done_with_session = True  # As set by a completed proof.
        state, out = user.step(
            state, UserInbox(from_world=f"INSTANCE:0:{QBF_WIRE};FB:none"), rng
        )
        assert out.to_server == ""
        assert out.to_world == ""
