"""Tests for the delegation (verifier) users."""

from __future__ import annotations

import random

import pytest

from repro.comm.codecs import IdentityCodec, ReverseCodec, codec_family
from repro.core.execution import run_execution
from repro.mathx.modular import Field
from repro.qbf.generators import random_qbf
from repro.servers.faulty import DroppingServer
from repro.servers.provers import (
    CheatingProverServer,
    HonestProverServer,
    LazyProverServer,
)
from repro.servers.wrappers import EncodedServer
from repro.users.delegation_users import DelegationUser, delegation_user_class
from repro.worlds.computation import delegation_goal

F = Field()
INSTANCES = [random_qbf(random.Random(s), 2) for s in (1, 4)]
GOAL = delegation_goal(INSTANCES)


def run_pair(user, server, max_rounds=300, seed=0):
    result = run_execution(user, server, GOAL.world, max_rounds=max_rounds, seed=seed)
    return GOAL.evaluate(result), result


class TestHonestInteraction:
    def test_matched_codec_answers_correctly(self):
        user = DelegationUser(IdentityCodec(), F)
        outcome, result = run_pair(user, HonestProverServer(F))
        assert outcome.achieved
        assert result.user_output.startswith("ANSWER:")

    def test_through_codec(self):
        user = DelegationUser(ReverseCodec(), F)
        server = EncodedServer(HonestProverServer(F), ReverseCodec())
        outcome, _ = run_pair(user, server)
        assert outcome.achieved

    def test_state_exposes_proof_accepted(self):
        user = DelegationUser(IdentityCodec(), F)
        _, result = run_pair(user, HonestProverServer(F))
        assert result.rounds[-1].user_state_after.proof_accepted

    def test_survives_reply_drops(self):
        """Request re-sending recovers from lost prover replies."""
        user = DelegationUser(IdentityCodec(), F, resend_every=4)
        server = DroppingServer(HonestProverServer(F), drop_probability=0.3)
        outcome, _ = run_pair(user, server, max_rounds=2000, seed=7)
        assert outcome.achieved


class TestMismatch:
    def test_wrong_codec_never_halts(self):
        user = DelegationUser(ReverseCodec(), F)
        outcome, result = run_pair(user, HonestProverServer(F))
        assert not result.halted
        assert not result.rounds[-1].user_state_after.proof_accepted


class TestMaliceResistance:
    @pytest.mark.parametrize("style", ["flip", "constant", "random"])
    def test_never_answers_wrong_against_cheaters(self, style):
        user = DelegationUser(IdentityCodec(), F)
        outcome, result = run_pair(user, CheatingProverServer(F, style))
        # Either it never halts, or (vanishing probability) it halts right;
        # it must never halt with a wrong answer.
        if result.halted:
            assert outcome.achieved
        assert not result.rounds[-1].user_state_after.proof_accepted

    def test_lazy_claim_never_trusted(self):
        user = DelegationUser(IdentityCodec(), F)
        _, result = run_pair(user, LazyProverServer(1))
        assert not result.halted


class TestValidation:
    def test_resend_period_validated(self):
        with pytest.raises(ValueError):
            DelegationUser(IdentityCodec(), F, resend_every=0)

    def test_class_builder(self):
        codecs = codec_family(4)
        users = delegation_user_class(codecs, F)
        assert len(users) == 4
        assert users[2].name == f"delegate@{codecs[2].name}"
