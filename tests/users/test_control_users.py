"""Tests for control followers and authenticating users."""

from __future__ import annotations

import random

import pytest

from repro.comm.codecs import IdentityCodec, ReverseCodec, codec_family
from repro.comm.messages import UserInbox
from repro.core.execution import run_execution
from repro.servers.advisors import AdvisorServer
from repro.servers.password import PasswordServer
from repro.servers.wrappers import EncodedServer
from repro.users.control_users import (
    AdvisorFollowingUser,
    AuthenticatingUser,
    follower_user_class,
    password_user_class,
)
from repro.worlds.control import control_goal

LAW = {"red": "blue", "blue": "red"}
GOAL = control_goal(LAW)


class TestAdvisorFollowingUser:
    def test_acts_on_decoded_advice(self):
        user = AdvisorFollowingUser(IdentityCodec())
        rng = random.Random(0)
        state = user.initial_state(rng)
        _, out = user.step(state, UserInbox(from_server="ADV:red=blue"), rng)
        assert out.to_world == "ACT:red=blue"

    def test_silent_on_undecodable_advice(self):
        user = AdvisorFollowingUser(ReverseCodec())
        rng = random.Random(0)
        state = user.initial_state(rng)
        # Identity-encoded advice misread through reverse codec -> garbage.
        _, out = user.step(state, UserInbox(from_server="ADV:red=blue"), rng)
        assert out.to_world == ""

    def test_silent_on_malformed_advice(self):
        user = AdvisorFollowingUser(IdentityCodec())
        rng = random.Random(0)
        state = user.initial_state(rng)
        for bad in ("ADV:redblue", "ADV:=blue", "ADV:red=", "NOT-ADVICE"):
            _, out = user.step(state, UserInbox(from_server=bad), rng)
            assert out.to_world == "", bad

    def test_end_to_end_through_codec(self):
        codec = ReverseCodec()
        user = AdvisorFollowingUser(codec)
        server = EncodedServer(AdvisorServer(LAW), codec)
        result = run_execution(user, server, GOAL.world, max_rounds=300, seed=3)
        assert GOAL.evaluate(result).achieved

    def test_class_builder_order(self):
        codecs = codec_family(3)
        users = follower_user_class(codecs)
        assert [u.name for u in users] == [f"follow@{c.name}" for c in codecs]


class TestAuthenticatingUser:
    def test_sends_auth_first(self):
        inner = AdvisorFollowingUser(IdentityCodec())
        user = AuthenticatingUser("101", inner)
        rng = random.Random(0)
        state = user.initial_state(rng)
        _, out = user.step(state, UserInbox(), rng)
        assert out.to_server == "AUTH:101"

    def test_unlocks_and_follows(self):
        user = AuthenticatingUser("101", AdvisorFollowingUser(IdentityCodec()))
        server = PasswordServer("101", AdvisorServer(LAW))
        result = run_execution(user, server, GOAL.world, max_rounds=400, seed=1)
        assert GOAL.evaluate(result).achieved

    def test_wrong_password_fails(self):
        user = AuthenticatingUser("100", AdvisorFollowingUser(IdentityCodec()))
        server = PasswordServer("101", AdvisorServer(LAW))
        result = run_execution(user, server, GOAL.world, max_rounds=400, seed=1)
        assert not GOAL.evaluate(result).achieved

    def test_empty_password_rejected(self):
        with pytest.raises(ValueError):
            AuthenticatingUser("", AdvisorFollowingUser(IdentityCodec()))

    def test_class_builder_makes_fresh_inners(self):
        users = password_user_class(
            ["00", "01"], lambda: AdvisorFollowingUser(IdentityCodec())
        )
        assert len(users) == 2
        assert users[0]._inner is not users[1]._inner
