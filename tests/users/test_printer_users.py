"""Tests for the printer protocol users."""

from __future__ import annotations

import pytest

from repro.comm.codecs import IdentityCodec, ReverseCodec, codec_family
from repro.core.execution import run_execution
from repro.servers.printer_servers import DIALECTS, make_printer, printer_server_class
from repro.servers.wrappers import EncodedServer
from repro.users.printer_users import PrinterProtocolUser, printer_user_class
from repro.worlds.printer import printing_goal

GOAL = printing_goal(["the document"])


def run_pair(user, server, max_rounds=64, seed=0):
    result = run_execution(user, server, GOAL.world, max_rounds=max_rounds, seed=seed)
    return GOAL.evaluate(result), result


class TestMatchedPairs:
    @pytest.mark.parametrize("dialect", DIALECTS)
    def test_each_dialect_prints_with_identity(self, dialect):
        user = PrinterProtocolUser(dialect, IdentityCodec())
        outcome, _ = run_pair(user, make_printer(dialect))
        assert outcome.achieved

    @pytest.mark.parametrize("dialect", DIALECTS)
    def test_each_dialect_prints_through_codec(self, dialect):
        user = PrinterProtocolUser(dialect, ReverseCodec())
        server = EncodedServer(make_printer(dialect), ReverseCodec())
        outcome, _ = run_pair(user, server)
        assert outcome.achieved


class TestMismatchedPairs:
    def test_wrong_dialect_never_halts(self):
        user = PrinterProtocolUser("space", IdentityCodec())
        outcome, result = run_pair(user, make_printer("tagged"))
        assert not result.halted
        assert not outcome.achieved

    def test_wrong_codec_never_halts(self):
        user = PrinterProtocolUser("space", ReverseCodec())
        outcome, result = run_pair(user, make_printer("space"))
        assert not result.halted

    def test_resends_command_periodically(self):
        user = PrinterProtocolUser("space", IdentityCodec(), resend_every=4)
        _, result = run_pair(user, make_printer("tagged"), max_rounds=20)
        commands = [r.outbox.to_server for r in result.user_view if r.outbox.to_server]
        assert len(commands) >= 3  # Initial send plus periodic retries.


class TestBlindHalting:
    def test_blind_user_halts_without_evidence(self):
        blind_goal = printing_goal(["the document"], feedback=False)
        user = PrinterProtocolUser(
            "space", IdentityCodec(), blind_halt_after=6
        )
        result = run_execution(
            user, make_printer("space"), blind_goal.world, max_rounds=64, seed=0
        )
        assert result.halted
        assert result.user_output == "PRINTED-BLIND"
        assert blind_goal.evaluate(result).achieved  # Got lucky: matched pair.

    def test_blind_halt_can_be_wrong(self):
        blind_goal = printing_goal(["the document"], feedback=False)
        user = PrinterProtocolUser("space", IdentityCodec(), blind_halt_after=6)
        result = run_execution(
            user, make_printer("tagged"), blind_goal.world, max_rounds=64, seed=0
        )
        assert result.halted  # Halted claiming success...
        assert not blind_goal.evaluate(result).achieved  # ...wrongly.


class TestValidation:
    def test_unknown_dialect_rejected(self):
        with pytest.raises(ValueError):
            PrinterProtocolUser("laser", IdentityCodec())

    def test_resend_period_validated(self):
        with pytest.raises(ValueError):
            PrinterProtocolUser("space", IdentityCodec(), resend_every=0)


class TestUserClass:
    def test_order_matches_server_class(self):
        codecs = codec_family(3)
        users = printer_user_class(DIALECTS, codecs)
        servers = printer_server_class(DIALECTS, codecs)
        assert len(users) == len(servers) == 9
        # The i-th user prints with the i-th server (matched language).
        for user, server in zip(users, servers):
            outcome, _ = run_pair(user, server)
            assert outcome.achieved, (user.name, server.name)
