"""Tests for quantified Boolean formulas."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormulaError
from repro.qbf.formulas import And, Not, Or, Var, evaluate
from repro.qbf.generators import random_qbf
from repro.qbf.qbf import EXISTS, FORALL, QBF


def brute_force(qbf: QBF) -> bool:
    """Reference QBF evaluation via explicit game-tree recursion."""

    def rec(depth, env):
        if depth == len(qbf.prefix):
            return evaluate(qbf.matrix, env)
        quantifier, name = qbf.prefix[depth]
        values = [rec(depth + 1, {**env, name: v}) for v in (False, True)]
        return all(values) if quantifier == FORALL else any(values)

    return rec(0, {})


class TestValidation:
    def test_duplicate_binding_rejected(self):
        with pytest.raises(FormulaError):
            QBF(((FORALL, "x"), (EXISTS, "x")), Var("x"))

    def test_unbound_variable_rejected(self):
        with pytest.raises(FormulaError):
            QBF(((FORALL, "x"),), And(Var("x"), Var("y")))

    def test_unknown_quantifier_rejected(self):
        with pytest.raises(FormulaError):
            QBF((("Q", "x"),), Var("x"))


class TestEvaluate:
    def test_forall_tautology(self):
        q = QBF(((FORALL, "x"),), Or(Var("x"), Not(Var("x"))))
        assert q.evaluate()

    def test_forall_contingent_is_false(self):
        q = QBF(((FORALL, "x"),), Var("x"))
        assert not q.evaluate()

    def test_exists_satisfiable(self):
        q = QBF(((EXISTS, "x"),), Var("x"))
        assert q.evaluate()

    def test_alternation(self):
        # ∀x ∃y (x ≠ y) is true over booleans.
        neq = Or(And(Var("x"), Not(Var("y"))), And(Not(Var("x")), Var("y")))
        q = QBF(((FORALL, "x"), (EXISTS, "y")), neq)
        assert q.evaluate()
        # ∃y ∀x (x ≠ y) is false.
        q2 = QBF(((EXISTS, "y"), (FORALL, "x")), neq)
        assert not q2.evaluate()

    @given(seed=st.integers(min_value=0, max_value=500), n=st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, seed, n):
        q = random_qbf(random.Random(seed), n)
        assert q.evaluate() == brute_force(q)


class TestWireForm:
    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_round_trip(self, seed):
        q = random_qbf(random.Random(seed), 3)
        assert QBF.deserialize(q.serialize()) == q

    def test_known_rendering(self):
        q = QBF(((FORALL, "x1"), (EXISTS, "x2")), And(Var("x1"), Var("x2")))
        assert q.serialize() == "Ax1.Ex2:&(x1,x2)"

    @pytest.mark.parametrize("bad", ["", "no separator", "Zx1:x1", "A:x1"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(FormulaError):
            QBF.deserialize(bad)

    def test_empty_prefix_round_trips_for_closed_matrix(self):
        from repro.qbf.formulas import Const

        q = QBF((), Const(True))
        assert QBF.deserialize(q.serialize()) == q


class TestProperties:
    def test_variable_names_in_prefix_order(self):
        q = QBF(((EXISTS, "b"), (FORALL, "a")), And(Var("a"), Var("b")))
        assert q.variable_names == ("b", "a")
        assert q.n_vars == 2
