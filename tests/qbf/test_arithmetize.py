"""Tests for arithmetization: agreement with Boolean semantics and degrees."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormulaError
from repro.mathx.modular import Field
from repro.qbf.arithmetize import arith_eval, base_grid, degree_vector
from repro.qbf.formulas import And, Not, Or, Var, evaluate, variables
from repro.qbf.generators import random_formula, variable_names

F = Field()


class TestBooleanAgreement:
    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50, deadline=None)
    def test_agrees_on_all_boolean_points(self, seed):
        f = random_formula(random.Random(seed), 3, 5)
        names = sorted(variables(f))
        for bits in itertools.product((0, 1), repeat=len(names)):
            env_bool = dict(zip(names, (bool(b) for b in bits)))
            env_field = dict(zip(names, bits))
            assert arith_eval(f, F, env_field) == int(evaluate(f, env_bool))

    def test_missing_variable_raises(self):
        with pytest.raises(FormulaError):
            arith_eval(Var("x"), F, {})


class TestDegreeVector:
    def test_matches_per_variable_degree(self):
        f = And(Var("x"), Or(Var("x"), Not(Var("y"))))
        assert degree_vector(f, ["x", "y"]) == (2, 1)

    def test_absent_variable_degree_zero(self):
        assert degree_vector(Var("x"), ["x", "z"]) == (1, 0)


class TestBaseGrid:
    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_grid_agrees_with_direct_evaluation(self, seed):
        rng = random.Random(seed)
        f = random_formula(rng, 3, 4)
        names = variable_names(3)
        grid = base_grid(f, F, names)
        point = {name: rng.randrange(F.p) for name in names}
        assert grid.evaluate(point) == arith_eval(f, F, point)

    def test_order_must_cover_formula(self):
        with pytest.raises(FormulaError):
            base_grid(Var("x1"), F, ["x2"])

    def test_unused_variables_get_degree_zero(self):
        grid = base_grid(Var("x1"), F, ["x1", "x2"])
        assert grid.degrees == (1, 0)
