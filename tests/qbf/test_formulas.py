"""Tests for Boolean formula ASTs, evaluation, degrees, and the wire form."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormulaError
from repro.qbf.formulas import (
    And,
    Const,
    Not,
    Or,
    Var,
    arithmetization_degree,
    conj,
    disj,
    evaluate,
    from_cnf,
    parse,
    serialize,
    variables,
)
from repro.qbf.generators import random_formula


@st.composite
def formulas(draw, max_connectives=6, n_vars=3):
    seed = draw(st.integers(min_value=0, max_value=10**6))
    connectives = draw(st.integers(min_value=0, max_value=max_connectives))
    return random_formula(random.Random(seed), n_vars, connectives)


class TestEvaluate:
    def test_var_lookup(self):
        assert evaluate(Var("x"), {"x": True})
        assert not evaluate(Var("x"), {"x": False})

    def test_missing_variable_raises(self):
        with pytest.raises(FormulaError):
            evaluate(Var("x"), {})

    def test_connectives(self):
        x, y = Var("x"), Var("y")
        env = {"x": True, "y": False}
        assert not evaluate(And(x, y), env)
        assert evaluate(Or(x, y), env)
        assert not evaluate(Not(x), env)
        assert evaluate(Const(True), {})

    @given(f=formulas())
    @settings(max_examples=30, deadline=None)
    def test_double_negation(self, f):
        env = {name: True for name in variables(f)}
        assert evaluate(Not(Not(f)), env) == evaluate(f, env)


class TestVariables:
    def test_collects_all(self):
        f = And(Var("a"), Or(Not(Var("b")), Var("a")))
        assert variables(f) == {"a", "b"}

    def test_const_has_none(self):
        assert variables(Const(True)) == frozenset()


class TestVarValidation:
    @pytest.mark.parametrize("bad", ["", "X", "1x", "x Y"])
    def test_bad_names_rejected(self, bad):
        with pytest.raises(FormulaError):
            Var(bad)

    @pytest.mark.parametrize("good", ["x", "x1", "foo_bar2"])
    def test_good_names_accepted(self, good):
        assert Var(good).name == good


class TestDegree:
    def test_var_degree(self):
        assert arithmetization_degree(Var("x"), "x") == 1
        assert arithmetization_degree(Var("x"), "y") == 0

    def test_degrees_add_across_connectives(self):
        f = And(Var("x"), Or(Var("x"), Var("y")))
        assert arithmetization_degree(f, "x") == 2
        assert arithmetization_degree(f, "y") == 1

    def test_not_preserves_degree(self):
        assert arithmetization_degree(Not(And(Var("x"), Var("x"))), "x") == 2


class TestBuilders:
    def test_conj_empty_is_true(self):
        assert evaluate(conj([]), {})

    def test_disj_empty_is_false(self):
        assert not evaluate(disj([]), {})

    def test_cnf_semantics(self):
        f = from_cnf([[("x", True), ("y", False)], [("y", True)]])
        assert evaluate(f, {"x": True, "y": True})
        assert not evaluate(f, {"x": False, "y": False})  # Second clause fails.
        assert not evaluate(f, {"x": False, "y": True})   # First clause fails.


class TestWireForm:
    @given(f=formulas())
    @settings(max_examples=50, deadline=None)
    def test_round_trip(self, f):
        assert parse(serialize(f)) == f

    def test_known_rendering(self):
        f = And(Or(Var("x1"), Not(Var("x2"))), Const(True))
        assert serialize(f) == "&(|(x1,!x2),1)"

    @pytest.mark.parametrize(
        "bad",
        ["", "&(x", "&(x,y", "|x,y)", "!(", "X", "&(x,y)z", "2"],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(FormulaError):
            parse(bad)
