"""Tests for the instance generators."""

from __future__ import annotations

import random

import pytest

from repro.qbf.formulas import variables
from repro.qbf.generators import (
    balanced_qbf_batch,
    parity_qbf,
    random_cnf,
    random_qbf,
    variable_names,
)


class TestVariableNames:
    def test_canonical_names(self):
        assert variable_names(3) == ["x1", "x2", "x3"]

    def test_zero(self):
        assert variable_names(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            variable_names(-1)


class TestRandomCnf:
    def test_deterministic_under_seed(self):
        a = random_cnf(random.Random(7), 4, 6)
        b = random_cnf(random.Random(7), 4, 6)
        assert a == b

    def test_uses_only_declared_variables(self):
        f = random_cnf(random.Random(1), 3, 10)
        assert variables(f) <= {"x1", "x2", "x3"}

    def test_clause_width_capped_by_vars(self):
        # Must not crash when width > n_vars.
        random_cnf(random.Random(2), 2, 4, clause_width=5)

    def test_rejects_zero_vars(self):
        with pytest.raises(ValueError):
            random_cnf(random.Random(0), 0, 1)


class TestRandomQbf:
    def test_closed(self):
        q = random_qbf(random.Random(3), 4)
        assert set(q.variable_names) >= variables(q.matrix)

    def test_every_variable_bound_and_used(self):
        # The generator pads the matrix so the prefix is never vacuous.
        for seed in range(10):
            q = random_qbf(random.Random(seed), 4)
            assert variables(q.matrix) == set(q.variable_names)

    def test_deterministic_under_seed(self):
        assert random_qbf(random.Random(5), 3) == random_qbf(random.Random(5), 3)

    def test_rejects_zero_vars(self):
        with pytest.raises(ValueError):
            random_qbf(random.Random(0), 0)


class TestBalancedBatch:
    def test_balances_truth_values(self):
        batch = balanced_qbf_batch(random.Random(0), 3, 6)
        truths = [q.evaluate() for q in batch]
        assert len(batch) == 6
        assert truths.count(True) == 3
        assert truths.count(False) == 3


class TestParity:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_parity_matrix_semantics(self, n):
        from repro.qbf.formulas import evaluate

        q = parity_qbf(n, target_parity=True)
        env = {f"x{i}": False for i in range(1, n + 1)}
        env["x1"] = True  # Parity 1.
        assert evaluate(q.matrix, env)
        env["x1"] = False  # Parity 0.
        assert not evaluate(q.matrix, env)

    def test_degree_grows_with_n(self):
        from repro.qbf.formulas import arithmetization_degree

        q3 = parity_qbf(3)
        q5 = parity_qbf(5)
        assert arithmetization_degree(q5.matrix, "x1") > arithmetization_degree(
            q3.matrix, "x1"
        )
