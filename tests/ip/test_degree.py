"""Tests for the operator sequence and degree schedule."""

from __future__ import annotations

import random

import pytest

from repro.errors import FormulaError
from repro.ip.degree import (
    LINEARIZE,
    QUANT_EXISTS,
    QUANT_FORALL,
    operator_schedule,
    soundness_error_bound,
)
from repro.qbf.formulas import And, Or, Var
from repro.qbf.generators import random_qbf
from repro.qbf.qbf import EXISTS, FORALL, QBF


def simple_qbf(n=3):
    return random_qbf(random.Random(0), n)


class TestScheduleShape:
    def test_length_is_n_plus_triangle(self):
        # n quantifier ops + sum_{k=1}^{n-1} k linearization ops.
        for n in (1, 2, 3, 4):
            q = random_qbf(random.Random(n), n)
            expected = n + n * (n - 1) // 2
            assert len(operator_schedule(q)) == expected

    def test_application_order_innermost_quantifier_first(self):
        q = QBF(((FORALL, "x1"), (EXISTS, "x2")), And(Var("x1"), Var("x2")))
        kinds = [(op.kind, op.var) for op in operator_schedule(q)]
        assert kinds == [
            (QUANT_EXISTS, "x2"),
            (LINEARIZE, "x1"),
            (QUANT_FORALL, "x1"),
        ]

    def test_empty_prefix_rejected(self):
        from repro.qbf.formulas import Const

        with pytest.raises(FormulaError):
            operator_schedule(QBF((), Const(True)))


class TestDegreeBounds:
    def test_innermost_quantifier_sees_base_degree(self):
        # deg_x2(x1 ∧ (x2 ∨ x2)) = 2.
        matrix = And(Var("x1"), Or(Var("x2"), Var("x2")))
        q = QBF(((FORALL, "x1"), (EXISTS, "x2")), matrix)
        ops = operator_schedule(q)
        assert ops[0].kind == QUANT_EXISTS and ops[0].degree_bound == 2

    def test_linearization_sees_doubled_degree(self):
        matrix = And(Var("x1"), Or(Var("x2"), Var("x2")))
        q = QBF(((FORALL, "x1"), (EXISTS, "x2")), matrix)
        ops = operator_schedule(q)
        # After ∃x2, x1's degree doubles: 1 -> 2.
        assert ops[1].kind == LINEARIZE and ops[1].var == "x1"
        assert ops[1].degree_bound == 2

    def test_outer_quantifier_sees_linearized_degree(self):
        matrix = And(Var("x1"), Or(Var("x2"), Var("x2")))
        q = QBF(((FORALL, "x1"), (EXISTS, "x2")), matrix)
        ops = operator_schedule(q)
        assert ops[2].kind == QUANT_FORALL and ops[2].degree_bound == 1

    def test_unused_variable_keeps_degree_zero(self):
        q = QBF(((FORALL, "x1"), (EXISTS, "x2")), Var("x2"))
        ops = operator_schedule(q)
        forall_op = [op for op in ops if op.kind == QUANT_FORALL][0]
        assert forall_op.degree_bound == 0

    def test_free_after_lists_remaining_variables(self):
        q = simple_qbf(3)
        ops = operator_schedule(q)
        names = list(q.variable_names)
        assert ops[0].free_after == tuple(names[:2])
        assert ops[-1].free_after == ()


class TestSoundnessBound:
    def test_bound_positive_and_small(self):
        q = simple_qbf(3)
        bound = soundness_error_bound(q, 2**31 - 1)
        assert 0 < bound < 1e-6

    def test_bound_scales_inversely_with_field(self):
        q = simple_qbf(3)
        assert soundness_error_bound(q, 101) > soundness_error_bound(q, 10007)
