"""Completeness and soundness tests for the sumcheck protocol."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AlgebraError
from repro.ip.sumcheck import (
    AdaptiveSumcheckCheater,
    HonestSumcheckProver,
    InflatingSumcheckProver,
    SumcheckVerifierSession,
    count_satisfying_assignments,
    run_sumcheck,
)
from repro.mathx.modular import Field
from repro.qbf.generators import random_cnf, variable_names

F = Field()


def instance(seed, n=3, clauses=4):
    return random_cnf(random.Random(seed), n, clauses), variable_names(n)


class TestCountSat:
    def test_known_count(self):
        from repro.qbf.formulas import Var, Or, Not

        f = Or(Var("x"), Not(Var("y")))
        assert count_satisfying_assignments(f, ["x", "y"]) == 3

    def test_order_must_cover(self):
        from repro.qbf.formulas import Var

        with pytest.raises(AlgebraError):
            count_satisfying_assignments(Var("x"), [])


class TestCompleteness:
    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_honest_prover_accepted_with_true_count(self, seed):
        formula, order = instance(seed)
        prover = HonestSumcheckProver(formula, F, order)
        assert prover.claimed_sum() == count_satisfying_assignments(formula, order)
        result = run_sumcheck(formula, prover, F, order, random.Random(seed + 1))
        assert result.accepted

    def test_rounds_equal_variable_count(self):
        formula, order = instance(5, n=4, clauses=5)
        result = run_sumcheck(
            formula, HonestSumcheckProver(formula, F, order), F, order,
            random.Random(0),
        )
        assert result.rounds_run == 4


class TestSoundness:
    @pytest.mark.parametrize("seed", range(6))
    def test_inflating_prover_rejected_at_round_one(self, seed):
        formula, order = instance(seed + 10)
        result = run_sumcheck(
            formula, InflatingSumcheckProver(formula, F, order), F, order,
            random.Random(seed),
        )
        assert not result.accepted
        assert result.rounds_run <= 1

    @pytest.mark.parametrize("seed", range(6))
    def test_adaptive_cheater_rejected_at_final_check(self, seed):
        formula, order = instance(seed + 20)
        result = run_sumcheck(
            formula, AdaptiveSumcheckCheater(formula, F, order), F, order,
            random.Random(seed),
        )
        assert not result.accepted
        # Locally consistent through all rounds; the final evaluation catches it.
        assert result.rounds_run == len(order)
        assert result.transcript.rejection_reason == "final evaluation mismatch"

    def test_cheater_must_actually_lie(self):
        formula, order = instance(1)
        with pytest.raises(AlgebraError):
            AdaptiveSumcheckCheater(formula, F, order, delta=0)

    def test_adaptive_cheater_requires_round_order(self):
        formula, order = instance(2)
        cheater = AdaptiveSumcheckCheater(formula, F, order)
        with pytest.raises(AlgebraError):
            cheater.round_message(1, {})


class TestVerifierSession:
    def test_overdegree_rejected(self):
        from repro.mathx.polynomials import Poly

        formula, order = instance(3)
        session = SumcheckVerifierSession(formula, F, order, random.Random(0))
        session.begin(count_satisfying_assignments(formula, order))
        huge = Poly.make(F, [1] * 10)
        session.receive_poly(huge)
        assert session.finished and not session.accepted

    def test_receive_before_begin_rejects(self):
        from repro.mathx.polynomials import Poly

        formula, order = instance(4)
        session = SumcheckVerifierSession(formula, F, order, random.Random(0))
        session.receive_poly(Poly.constant(F, 0))
        assert session.finished and not session.accepted
