"""Property-based tests for the protocol's algebraic operators.

The TQBF protocol is only sound if the operator algebra is exactly right;
these tests pin the semantic identities the proofs of Section 3 lean on,
over randomly generated formulas.
"""

from __future__ import annotations

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ip.degree import LINEARIZE, operator_schedule
from repro.ip.qbf_protocol import apply_operator
from repro.mathx.modular import Field
from repro.qbf.arithmetize import base_grid
from repro.qbf.generators import random_qbf
from repro.qbf.qbf import FORALL

F = Field()

seeds = st.integers(min_value=0, max_value=500)
sizes = st.integers(min_value=2, max_value=4)


def boolean_points(variables):
    return (
        dict(zip(variables, bits))
        for bits in itertools.product((0, 1), repeat=len(variables))
    )


@given(seed=seeds, n=sizes)
@settings(max_examples=20, deadline=None)
def test_quantifier_ops_compute_quantified_truth(seed, n):
    """Applying Q_{x_n} to the matrix grid agrees with Boolean quantification."""
    qbf = random_qbf(random.Random(seed), n)
    grid = base_grid(qbf.matrix, F, qbf.variable_names)
    op = operator_schedule(qbf)[0]  # Innermost quantifier.
    applied = apply_operator(grid, op, F)
    inner_q, inner_var = qbf.prefix[-1]
    for point in boolean_points(applied.variables):
        v0 = grid.evaluate({**point, inner_var: 0})
        v1 = grid.evaluate({**point, inner_var: 1})
        expected = F.mul(v0, v1) if inner_q == FORALL else F.bool_or(v0, v1)
        assert applied.evaluate(point) == expected


@given(seed=seeds, n=sizes)
@settings(max_examples=20, deadline=None)
def test_linearization_preserves_boolean_points_along_the_chain(seed, n):
    """Every L op in the schedule agrees with its operand on {0,1}^k."""
    qbf = random_qbf(random.Random(seed), n)
    grid = base_grid(qbf.matrix, F, qbf.variable_names)
    for op in operator_schedule(qbf):
        applied = apply_operator(grid, op, F)
        if op.kind == LINEARIZE:
            for point in boolean_points(grid.variables):
                assert applied.evaluate(point) == grid.evaluate(point)
        grid = applied


@given(seed=seeds, n=sizes)
@settings(max_examples=20, deadline=None)
def test_linearization_result_is_multilinear_in_its_variable(seed, n):
    """After L_v, the polynomial is degree <= 1 in v: f(r) is the line
    through f(0), f(1) for random r."""
    qbf = random_qbf(random.Random(seed), n)
    grid = base_grid(qbf.matrix, F, qbf.variable_names)
    schedule = operator_schedule(qbf)
    rng = random.Random(seed + 1)
    for op in schedule:
        applied = apply_operator(grid, op, F)
        if op.kind == LINEARIZE:
            others = {
                v: rng.randrange(F.p) for v in applied.variables if v != op.var
            }
            r = rng.randrange(F.p)
            f0 = applied.evaluate({**others, op.var: 0})
            f1 = applied.evaluate({**others, op.var: 1})
            fr = applied.evaluate({**others, op.var: r})
            line = F.add(F.mul(F.sub(1, r), f0), F.mul(r, f1))
            assert fr == line
        grid = applied


@given(seed=seeds, n=sizes)
@settings(max_examples=15, deadline=None)
def test_degree_schedule_bounds_are_tight_enough(seed, n):
    """The honest prover's message degrees never exceed the verifier's
    bounds at any protocol round (with random challenge prefixes)."""
    from repro.ip.qbf_protocol import HonestQBFProver

    qbf = random_qbf(random.Random(seed), n)
    prover = HonestQBFProver(qbf, F)
    schedule = list(reversed(operator_schedule(qbf)))
    rng = random.Random(seed + 2)
    challenges = {}
    for round_index, op in enumerate(schedule):
        poly = prover.round_message(round_index, dict(challenges))
        assert poly.degree <= op.degree_bound, (round_index, op)
        challenges[op.var] = rng.randrange(F.p)


@given(seed=seeds)
@settings(max_examples=15, deadline=None)
def test_full_chain_constant_equals_qbf_truth(seed):
    qbf = random_qbf(random.Random(seed), 3)
    grid = base_grid(qbf.matrix, F, qbf.variable_names)
    for op in operator_schedule(qbf):
        grid = apply_operator(grid, op, F)
    assert grid.arity == 0
    assert grid.as_constant() == int(qbf.evaluate())
