"""Tests for proof transcripts."""

from __future__ import annotations

from repro.ip.transcript import ProofRound, ProofTranscript
from repro.mathx.modular import Field
from repro.mathx.polynomials import Poly

F = Field()


def make_round(index=0, challenge=7):
    return ProofRound(
        index=index,
        op_kind="forall",
        var="x1",
        degree_bound=2,
        poly=Poly.make(F, [1, 2]),
        challenge=challenge,
        claim_before=1,
        claim_after=15,
    )


class TestProofTranscript:
    def test_records_rounds(self):
        t = ProofTranscript(claimed_value=1)
        t.record(make_round(0))
        t.record(make_round(1))
        assert t.rounds_run == 2

    def test_finish_sets_verdict(self):
        t = ProofTranscript(claimed_value=1)
        t.finish(False, "why not")
        assert t.accepted is False
        assert t.rejection_reason == "why not"

    def test_format_mentions_everything(self):
        t = ProofTranscript(claimed_value=1)
        t.record(make_round())
        t.finish(True)
        text = t.format()
        assert "claimed value: 1" in text
        assert "forall" in text and "x1" in text
        assert "ACCEPTED" in text

    def test_format_unfinished(self):
        t = ProofTranscript(claimed_value=0)
        assert "UNFINISHED" in t.format()

    def test_format_handles_no_challenge(self):
        t = ProofTranscript(claimed_value=1)
        t.record(make_round(challenge=None))
        assert "challenge=-" in t.format()
