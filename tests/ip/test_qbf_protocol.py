"""Completeness and soundness tests for the TQBF interactive proof."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ip.degree import operator_schedule
from repro.ip.qbf_protocol import (
    ConstantCheatingProver,
    FlipClaimProver,
    HonestQBFProver,
    QBFVerifierSession,
    RandomCheatingProver,
    apply_operator,
    run_qbf_protocol,
)
from repro.mathx.modular import Field
from repro.mathx.polynomials import Poly
from repro.qbf.arithmetize import base_grid
from repro.qbf.generators import parity_qbf, random_qbf

F = Field()


class TestOperatorApplication:
    def test_full_application_yields_truth_value(self):
        for seed in range(8):
            q = random_qbf(random.Random(seed), 3)
            grid = base_grid(q.matrix, F, q.variable_names)
            for op in operator_schedule(q):
                grid = apply_operator(grid, op, F)
            assert grid.as_constant() == int(q.evaluate())

    def test_linearization_preserves_boolean_points(self):
        import itertools

        q = random_qbf(random.Random(11), 3)
        grid = base_grid(q.matrix, F, q.variable_names)
        ops = operator_schedule(q)
        lin = [op for op in ops if op.kind == "linearize"][0]
        linearized = apply_operator(grid, lin, F)
        for bits in itertools.product((0, 1), repeat=3):
            env = dict(zip(q.variable_names, bits))
            assert linearized.evaluate(env) == grid.evaluate(env)


class TestCompleteness:
    @given(seed=st.integers(min_value=0, max_value=400),
           n=st.integers(min_value=1, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_honest_prover_always_accepted(self, seed, n):
        q = random_qbf(random.Random(seed), n)
        prover = HonestQBFProver(q, F)
        assert prover.claimed_value() == int(q.evaluate())
        result = run_qbf_protocol(q, prover, F, random.Random(seed + 1))
        assert result.accepted

    def test_parity_stress(self):
        q = parity_qbf(4)
        result = run_qbf_protocol(q, HonestQBFProver(q, F), F, random.Random(9))
        assert result.accepted

    def test_round_count_matches_schedule(self):
        q = random_qbf(random.Random(2), 3)
        result = run_qbf_protocol(q, HonestQBFProver(q, F), F, random.Random(0))
        assert result.rounds_run == len(operator_schedule(q))


class TestSoundness:
    @pytest.mark.parametrize("seed", range(8))
    def test_flip_claim_rejected_deterministically(self, seed):
        q = random_qbf(random.Random(seed + 50), 3)
        result = run_qbf_protocol(q, FlipClaimProver(q, F), F, random.Random(seed))
        assert not result.accepted
        # Caught by the very first consistency check.
        assert result.rounds_run <= 1

    @pytest.mark.parametrize("seed", range(8))
    def test_constant_cheater_rejected(self, seed):
        q = random_qbf(random.Random(seed + 100), 3)
        wrong = 1 - int(q.evaluate())
        result = run_qbf_protocol(
            q, ConstantCheatingProver(F, wrong), F, random.Random(seed)
        )
        assert not result.accepted

    def test_constant_cheater_survives_until_final_check(self):
        q = random_qbf(random.Random(4), 3)
        wrong = 1 - int(q.evaluate())
        result = run_qbf_protocol(
            q, ConstantCheatingProver(F, wrong), F, random.Random(0)
        )
        # Locally consistent every round; only the final evaluation kills it.
        assert result.rounds_run == len(operator_schedule(q))
        assert result.transcript.rejection_reason == "final matrix evaluation mismatch"

    @pytest.mark.parametrize("seed", range(8))
    def test_random_cheater_rejected(self, seed):
        q = random_qbf(random.Random(seed + 200), 3)
        prover = RandomCheatingProver(q, F, random.Random(seed))
        result = run_qbf_protocol(q, prover, F, random.Random(seed))
        assert not result.accepted

    def test_soundness_error_rate_under_small_field(self):
        """Statistically: cheater acceptance rate stays near deg/p, not 1."""
        small = Field(p=101)
        q = random_qbf(random.Random(7), 2)
        wrong = 1 - int(q.evaluate())
        accepted = sum(
            run_qbf_protocol(
                q, ConstantCheatingProver(small, wrong), small, random.Random(trial)
            ).accepted
            for trial in range(200)
        )
        # Bound is sum(degrees)/101; generous envelope to keep the test stable.
        assert accepted / 200 < 0.25


class TestVerifierSession:
    def test_rejects_non_bit_claim(self):
        q = random_qbf(random.Random(1), 2)
        session = QBFVerifierSession(q, F, random.Random(0))
        session.begin(7)
        assert session.finished and not session.accepted

    def test_rejects_overdegree_polynomial(self):
        q = random_qbf(random.Random(1), 2)
        session = QBFVerifierSession(q, F, random.Random(0))
        session.begin(int(q.evaluate()))
        too_big = Poly.make(F, [1] * (session.current_op().degree_bound + 2))
        session.receive_poly(too_big)
        assert session.finished and not session.accepted
        assert "degree" in session.transcript.rejection_reason

    def test_receive_before_begin_rejects(self):
        q = random_qbf(random.Random(1), 2)
        session = QBFVerifierSession(q, F, random.Random(0))
        session.receive_poly(Poly.constant(F, 1))
        assert session.finished and not session.accepted

    def test_accepted_raises_while_running(self):
        from repro.errors import AlgebraError

        q = random_qbf(random.Random(1), 2)
        session = QBFVerifierSession(q, F, random.Random(0))
        session.begin(1)
        with pytest.raises(AlgebraError):
            _ = session.accepted

    def test_transcript_records_every_round(self):
        q = random_qbf(random.Random(3), 3)
        result = run_qbf_protocol(q, HonestQBFProver(q, F), F, random.Random(1))
        assert len(result.transcript.rounds) == result.rounds_run
        assert result.transcript.accepted is True

    def test_protocol_deterministic_under_seed(self):
        q = random_qbf(random.Random(3), 3)
        r1 = run_qbf_protocol(q, HonestQBFProver(q, F), F, random.Random(42))
        r2 = run_qbf_protocol(q, HonestQBFProver(q, F), F, random.Random(42))
        challenges1 = [r.challenge for r in r1.transcript.rounds]
        challenges2 = [r.challenge for r in r2.transcript.rounds]
        assert challenges1 == challenges2
