#!/usr/bin/env python3
"""Delegating PSPACE computation to an untrusted, alien prover.

The Juba–Sudan delegation goal: the world poses a TQBF instance; we (a
polynomial-time user) must announce its truth value.  We cannot compute it
— but the server can, and the Shamir/Shen interactive proof lets us *check*
its answer without trusting it.  Soundness of the proof is exactly the
*safety* of our sensing: even a cheating prover cannot make "proof
verified" light up for a wrong claim.

The demo runs three sessions:
  1. an honest prover speaking a foreign language (codec) — we find the
     language by enumeration and accept its proof;
  2. a lying prover — every proof attempt is rejected, we never answer;
  3. a lazy prover that just asserts a bit — its bare claim goes nowhere.

Run:  python examples/delegation_qbf.py
"""

from __future__ import annotations

import random

from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.mathx.modular import Field
from repro.qbf.generators import random_qbf
from repro.servers.provers import (
    CheatingProverServer,
    HonestProverServer,
    LazyProverServer,
)
from repro.servers.wrappers import EncodedServer
from repro.universal.enumeration import ListEnumeration
from repro.universal.finite import FiniteUniversalUser
from repro.universal.schedules import doubling_sweep_trials
from repro.users.delegation_users import delegation_user_class
from repro.worlds.computation import delegation_goal, delegation_sensing


def make_universal(codecs, field):
    return FiniteUniversalUser(
        ListEnumeration(delegation_user_class(codecs, field), label="delegates"),
        delegation_sensing(),
        schedule_factory=lambda cap: doubling_sweep_trials(
            None if cap is None else cap - 1
        ),
    )


def main() -> None:
    field = Field()
    codecs = codec_family(4)
    instance = random_qbf(random.Random(5), 4)
    goal = delegation_goal([instance])
    print(f"instance: {instance.serialize()}")
    print(f"(truth value, which the user never computes: {int(instance.evaluate())})\n")

    # --- session 1: honest but alien prover.
    server = EncodedServer(HonestProverServer(field), codecs[2])
    result = run_execution(
        make_universal(codecs, field), server, goal.world, max_rounds=6000, seed=0
    )
    outcome = goal.evaluate(result)
    print(f"1. honest prover speaking {codecs[2].name!r}:")
    print(f"   halted={result.halted}  answer={result.user_output}  "
          f"correct={outcome.achieved}  rounds={result.rounds_executed}\n")
    assert outcome.achieved

    # --- session 2: a cheating prover (claims the wrong bit, argues hard).
    cheater = CheatingProverServer(field, "constant")
    result = run_execution(
        make_universal(codecs, field), cheater, goal.world, max_rounds=4000, seed=0
    )
    print("2. cheating prover (locally-consistent constant cheat):")
    print(f"   halted={result.halted}  (no halt = no proof survived our checks)\n")
    assert not result.halted

    # --- session 3: a lazy prover that asserts without proving.
    lazy = LazyProverServer(claim_bit=1 - int(instance.evaluate()))
    result = run_execution(
        make_universal(codecs, field), lazy, goal.world, max_rounds=3000, seed=0
    )
    print("3. lazy prover (bare assertion, wrong bit):")
    print(f"   halted={result.halted}  (a claim without a proof is just noise)")
    assert not result.halted

    print("\nSafe sensing from IP soundness: we answer iff we can verify —"
          "\nso we are universal over honest provers and immune to the rest.")


if __name__ == "__main__":
    main()
