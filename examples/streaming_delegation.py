#!/usr/bin/env python3
"""Streaming delegation: pay the Babel tax once, verify forever.

The extension experiment E12 live: a world that never stops posing TQBF
instances, each to be answered within a deadline; a compact referee that
demands mistakes eventually stop; a prover whose language we do not know.
The universal user burns a few sessions discovering the prover's codec,
then answers hundreds of sessions with a verified proof each — and keeps a
perfect score from then on.

Run:  python examples/streaming_delegation.py
"""

from __future__ import annotations

import random

from repro.analysis.tables import format_table
from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.mathx.modular import Field
from repro.qbf.generators import random_qbf
from repro.servers.provers import CheatingProverServer, HonestProverServer
from repro.servers.wrappers import EncodedServer
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.delegation_users import repeated_delegation_user_class
from repro.worlds.repeated import (
    RepeatedComputationState,
    repeated_delegation_goal,
    repeated_delegation_sensing,
)


def main() -> None:
    field = Field()
    codecs = codec_family(4)
    instances = [random_qbf(random.Random(s), 3) for s in (1, 2, 5, 8)]
    goal = repeated_delegation_goal(instances)
    print(f"instance pool: {len(instances)} TQBF formulas, 3 variables each")
    print(f"prover languages in class: {[c.name for c in codecs]}\n")

    def universal():
        return CompactUniversalUser(
            ListEnumeration(repeated_delegation_user_class(codecs, field)),
            repeated_delegation_sensing(),
        )

    rows = []
    for index, codec in enumerate(codecs):
        server = EncodedServer(HonestProverServer(field), codec)
        result = run_execution(
            universal(), server, goal.world, max_rounds=5000, seed=index
        )
        outcome = goal.evaluate(result)
        state = result.final_world_state()
        assert isinstance(state, RepeatedComputationState)
        rows.append(
            [server.name, outcome.achieved, state.answered, state.mistakes]
        )
        assert outcome.achieved

    cheater = CheatingProverServer(field, "constant")
    result = run_execution(universal(), cheater, goal.world, max_rounds=2000, seed=0)
    state = result.final_world_state()
    rows.append([cheater.name, goal.evaluate(result).achieved,
                 state.answered, state.mistakes])

    print(
        format_table(
            ["prover", "achieved", "sessions answered", "mistakes"],
            rows,
            title="5000 rounds of streaming TQBF delegation",
        )
    )
    print("\nMistakes = 2 x codec index: the enumeration overhead, paid once."
          "\nThe cheater answers nothing, ever — soundness never sleeps.")


if __name__ == "__main__":
    main()
