#!/usr/bin/env python3
"""Navigation: enumeration overhead you can watch walk through a maze.

A guide who knows the maze, a traveller who doesn't know the guide's
language.  The finite universal user enumerates language hypotheses; wrong
guesses leave the traveller standing still, the right one walks a
BFS-optimal path.  The maze is rendered before and after, with the
travelled path marked.

Run:  python examples/navigation_tour.py
"""

from __future__ import annotations

import random

from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.servers.guides import guide_server_class
from repro.universal.enumeration import ListEnumeration
from repro.universal.finite import FiniteUniversalUser
from repro.universal.schedules import doubling_sweep_trials
from repro.users.navigation_users import navigator_user_class
from repro.worlds.navigation import (
    Grid,
    NavigationState,
    navigation_goal,
    navigation_sensing,
    random_grid,
)


def render(grid: Grid, path=()) -> str:
    """ASCII maze: '#' wall, 'S' start, 'T' target, '.' travelled cell."""
    travelled = set(path)
    lines = []
    for y in range(grid.height):
        row = []
        for x in range(grid.width):
            cell = (x, y)
            if cell == grid.start:
                row.append("S")
            elif cell == grid.target:
                row.append("T")
            elif cell in grid.walls:
                row.append("#")
            elif cell in travelled:
                row.append(".")
            else:
                row.append(" ")
        lines.append("".join(row))
    return "\n".join(lines)


def main() -> None:
    grid = random_grid(random.Random(11), 10, 8, 0.28)
    goal = navigation_goal(grid)
    codecs = codec_family(4)
    print("the maze (S→T, shortest path "
          f"{grid.distance_from_target(grid.start)} steps):\n")
    print(render(grid))

    server = guide_server_class(grid, codecs)[3]  # Adversary's pick.
    print(f"\nguide secretly speaks: {codecs[3].name!r}\n")

    universal = FiniteUniversalUser(
        ListEnumeration(navigator_user_class(codecs)),
        navigation_sensing(),
        schedule_factory=lambda cap: doubling_sweep_trials(
            None if cap is None else cap - 1
        ),
    )
    result = run_execution(universal, server, goal.world, max_rounds=6000, seed=0)
    outcome = goal.evaluate(result)

    path = [
        state.position
        for state in result.world_states
        if isinstance(state, NavigationState)
    ]
    print("the journey:\n")
    print(render(grid, path))
    final = result.final_world_state()
    print(f"\narrived: {outcome.achieved}   moves: {final.moves} "
          f"(optimal: {grid.distance_from_target(grid.start)})   "
          f"bumps: {final.bumps}   rounds: {result.rounds_executed}")
    print("\nRounds paid for language discovery; the walk itself is optimal —"
          "\nthe overhead of universality prices ignorance, not competence.")
    assert outcome.achieved


if __name__ == "__main__":
    main()
