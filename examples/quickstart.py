#!/usr/bin/env python3
"""Quickstart: the whole theory in one runnable story.

We build the paper's model from its parts:

1. a **goal** — the compact control goal: keep acting correctly under a
   hidden observation→action law;
2. a **server class** — advisors that all know the law but each speaks a
   different language (codec);
3. **sensing** — the world's per-round ok/bad feedback, safe and viable;
4. the **universal user** of Theorem 1 — enumerate candidate interpreters,
   switch on negative indications —

and then watch it achieve the goal against an adversarially chosen server.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro.analysis.tables import format_table
from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.obs import MemorySink, StrategySwitch, Tracer
from repro.servers.advisors import advisor_server_class
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import follower_user_class
from repro.worlds.control import control_goal, control_sensing, random_law


def main() -> None:
    # --- the goal: a world with a hidden law, judged by a compact referee.
    law = random_law(random.Random(2024))
    goal = control_goal(law)
    print(f"hidden law (known to advisors, not to us): {law}\n")

    # --- the server class: one helpful advisor per language.
    codecs = codec_family(8)
    servers = advisor_server_class(law, codecs)
    print(f"server class: {len(servers)} advisors, languages "
          f"{[c.name for c in codecs]}\n")

    # --- the user class: one interpreter per language guess, and the
    #     universal user that enumerates them with sensing-driven switching.
    candidates = follower_user_class(codecs)
    universal = CompactUniversalUser(
        ListEnumeration(candidates, label="interpreters"), control_sensing()
    )

    # --- the adversary picks a server; we never get told which.
    adversary_pick = random.Random(7).randrange(len(servers))
    server = servers[adversary_pick]
    print(f"adversary secretly picked: server #{adversary_pick} ({server.name})\n")

    result = run_execution(universal, server, goal.world, max_rounds=2500, seed=0)
    outcome = goal.evaluate(result)
    state = result.rounds[-1].user_state_after

    verdict = outcome.compact_verdict
    print(
        format_table(
            ["metric", "value"],
            [
                ["goal achieved", outcome.achieved],
                ["strategy switches", state.switches],
                ["settled on candidate", f"#{state.index} ({candidates[state.index].name})"],
                ["last mistake at round", verdict.last_bad_round or 0],
                ["mistakes total", verdict.bad_prefixes],
                ["rounds simulated", result.rounds_executed],
            ],
            title="universal user vs adversarial server",
        )
    )
    assert outcome.achieved
    assert state.index == adversary_pick, "settled on exactly the right language"
    print("\nThe user found the server's language without any prior agreement —"
          "\nTheorem 1's promise, live.")

    # --- bonus: the same run, traced.  A tracer captures the enumerate-
    #     sense-switch dynamic as typed events (docs/OBSERVABILITY.md).
    tracer = Tracer(sink=MemorySink())
    traced_user = CompactUniversalUser(
        ListEnumeration(candidates, label="interpreters"), control_sensing(),
        tracer=tracer,
    )
    run_execution(traced_user, server, goal.world, max_rounds=2500, seed=0,
                  tracer=tracer)
    print("\nswitch timeline (from the trace):")
    for switch in tracer.sink.of_kind(StrategySwitch):
        print(f"  round {switch.round_index:4d}: interpreter "
              f"#{switch.from_index} -> #{switch.to_index}")
    print(f"counters: {tracer.counters.snapshot()}")

    # --- bonus: the full universality check, fanned out over processes.
    #     Sweep cells are shared-nothing, so executor= only changes where
    #     they run, never what they compute (docs/PERFORMANCE.md).
    from repro.analysis import ProcessExecutor, sweep

    fresh_universal = CompactUniversalUser(
        ListEnumeration(candidates, label="interpreters"), control_sensing()
    )
    class_sweep = sweep(
        fresh_universal, servers, goal, seeds=(0,), max_rounds=2500,
        executor=ProcessExecutor(max_workers=2),
    )
    print(f"\nparallel sweep over the whole class "
          f"({len(class_sweep.cells)} cells, 2 workers): "
          f"universal_success={class_sweep.universal_success}")
    assert class_sweep.universal_success


if __name__ == "__main__":
    main()
