#!/usr/bin/env python3
"""The Juba–Vempala view: universal users *are* online learners.

For simple multi-session goals (here: labelling queries under a hidden
threshold concept), a user strategy achieving the compact goal is the same
object as a mistake-bounded online learner.  The demo runs three users on
identical worlds and prints the mistake scaling:

* the Theorem-1 enumeration user  — mistakes grow with the target's index;
* the halving learner (as a user) — mistakes ≤ log2 |class|;
* the belief-weighted user        — interpolates, driven by its prior.

Run:  python examples/online_learning.py
"""

from __future__ import annotations

import math

from repro.analysis.tables import format_table
from repro.core.execution import run_execution
from repro.core.strategy import SilentServer
from repro.online.adapter import threshold_user_class
from repro.online.equivalence import (
    enumeration_user,
    halving_user,
    mistakes_in_world,
)
from repro.universal.bayesian import BeliefWeightedUniversalUser
from repro.worlds.lookup import lookup_goal, lookup_sensing

DOMAIN = 16


def belief_mistakes(theta: int, prior_weight: float) -> int:
    goal = lookup_goal(threshold=theta, domain=DOMAIN)
    candidates = threshold_user_class(DOMAIN)
    prior = [1.0] * len(candidates)
    prior[theta] = prior_weight
    user = BeliefWeightedUniversalUser(candidates, lookup_sensing(), prior=prior)
    result = run_execution(user, SilentServer(), goal.world, max_rounds=2500, seed=5)
    assert goal.evaluate(result).achieved
    return result.final_world_state().mistakes


def main() -> None:
    print(f"concept class: thresholds over 0..{DOMAIN - 1} "
          f"(|class| = {DOMAIN + 1}, log2 = {math.log2(DOMAIN + 1):.1f})\n")

    rows = []
    for theta in (2, 8, 14):
        enum = mistakes_in_world(
            enumeration_user(DOMAIN), theta, DOMAIN, horizon=2500, seed=5
        )
        halv = mistakes_in_world(
            halving_user(DOMAIN), theta, DOMAIN, horizon=2500, seed=5
        )
        informed = belief_mistakes(theta, prior_weight=40.0)
        rows.append([theta, enum, halv, informed])

    print(
        format_table(
            ["target θ", "enumeration user", "halving user", "informed-prior user"],
            rows,
            title="mistakes until the goal settles (same world, same seeds)",
        )
    )
    print("\nEnumeration pays for the target's position; structure (halving)"
          "\nand good priors (beliefs) pay ~log — the paper's closing point"
          "\nabout going beyond enumeration, made computable.")


if __name__ == "__main__":
    main()
