#!/usr/bin/env python3
"""A compact goal in motion: learning to follow an alien advisor.

Infinite-horizon control: each round-ish the world shows a colour and
expects the action prescribed by a hidden law.  The advisor knows the law
and tells us what to do — in its own vocabulary.  The compact universal
user cycles through interpreters until the world's feedback stops saying
"bad"; the compact-goal semantics ("finitely many unacceptable prefixes")
is visible as the error sparkline going flat.

Run:  python examples/control_advisor.py
"""

from __future__ import annotations

import random

from repro.analysis.tables import format_sparkline, format_table
from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.servers.advisors import advisor_server_class
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import follower_user_class
from repro.worlds.control import ControlState, control_goal, control_sensing, random_law


def main() -> None:
    law = random_law(random.Random(31))
    goal = control_goal(law)
    codecs = codec_family(6)
    servers = advisor_server_class(law, codecs)

    print(f"hidden law: {law}")
    print(f"advisor languages in class: {[c.name for c in codecs]}\n")

    rows = []
    for index, server in enumerate(servers):
        user = CompactUniversalUser(
            ListEnumeration(follower_user_class(codecs)), control_sensing()
        )
        result = run_execution(user, server, goal.world, max_rounds=2000, seed=3)
        outcome = goal.evaluate(result)
        state = result.rounds[-1].user_state_after

        mistakes_per_round = []
        last = 0
        for world_state in result.world_states[1:]:
            assert isinstance(world_state, ControlState)
            mistakes_per_round.append(world_state.mistakes - last)
            last = world_state.mistakes
        rows.append(
            [
                server.name,
                outcome.achieved,
                state.switches,
                result.final_world_state().mistakes,
                format_sparkline(mistakes_per_round, width=40),
            ]
        )
        assert outcome.achieved

    print(
        format_table(
            ["advisor", "achieved", "switches", "mistakes", "error curve (flat = settled)"],
            rows,
            title="compact universal user vs every advisor in the class",
        )
    )
    print("\nEvery curve flattens: after finitely many bad prefixes, none —"
          "\nthe definition of achieving a compact goal.")


if __name__ == "__main__":
    main()
