#!/usr/bin/env python3
"""The paper's printer story, end to end, with a visible transcript.

"The problem of using a printer to produce a document — which cannot be
cast as a problem of delegating computation in any reasonable sense — is
captured naturally by the simple model" (Section 1).

An unknown printer (dialect × codec drawn from a class of twelve) must
print our document.  The finite universal user enumerates protocol
hypotheses under a Levin-style schedule and halts only when the world —
the paper itself — confirms the document is on it.

Run:  python examples/printer_session.py
"""

from __future__ import annotations

import random

from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.servers.printer_servers import DIALECTS, printer_server_class
from repro.universal.enumeration import ListEnumeration
from repro.universal.finite import FiniteUniversalUser
from repro.universal.schedules import doubling_sweep_trials
from repro.users.printer_users import printer_user_class
from repro.worlds.printer import printing_goal, printing_sensing

DOCUMENT = "PODC 2011 camera-ready"


def main() -> None:
    goal = printing_goal([DOCUMENT])
    codecs = codec_family(4)
    servers = printer_server_class(DIALECTS, codecs)
    users = printer_user_class(DIALECTS, codecs)

    chosen = random.Random(99).randrange(len(servers))
    server = servers[chosen]
    print(f"unknown printer: one of {len(servers)} dialect/language combinations")
    print(f"(secretly: {server.name})\n")

    universal = FiniteUniversalUser(
        ListEnumeration(users, label="printer-protocols"),
        printing_sensing(),
        # The doubling sweep has the same completeness guarantee as Levin's
        # schedule with friendlier constants; swap in the default to watch
        # the classic Levin overhead instead.
        schedule_factory=lambda cap: doubling_sweep_trials(
            None if cap is None else cap - 1
        ),
    )

    result = run_execution(
        universal, server, goal.world, max_rounds=8000, seed=1,
        record_transcript=True,
    )
    outcome = goal.evaluate(result)

    print("last exchanges on the wire:")
    print(result.transcript.format(limit=12))
    print()
    state = result.rounds[-1].user_state_after
    print(f"halted: {result.halted}   output: {result.user_output}")
    print(f"goal achieved: {outcome.achieved}   rounds: {result.rounds_executed}"
          f"   protocol trials: {state.trials_run}")
    final = result.final_world_state()
    print(f"on paper: ...{final.printed[-60:]!r}")
    assert outcome.achieved


if __name__ == "__main__":
    main()
