"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e . --no-use-pep517`` works in offline environments that lack
the ``wheel`` package (PEP 660 editable installs require building a wheel).
"""

from setuptools import setup

setup()
