"""CI smoke: record a faulted run + a ledgered sweep, then read both back.

Writes into the directory named by argv[1]:

* ``run.jsonl`` / ``run.json`` — one traced execution of a compact
  universal user over a lossy channel, via ``record_run``;
* ``qbf.jsonl`` / ``qbf.json`` — one QBF delegation run whose trace
  carries the interactive-proof transcript;
* ``sweep/`` — per-cell manifests plus ``sweep.json`` from a small
  faulted sweep, via ``sweep(..., ledger_dir=)``.

Everything is recorded with ``certify=True``, so each artefact is
checked against its own trace before it is ever uploaded; the CI job
then re-certifies the traces through ``python -m repro.obs certify``
(the engine-free path) and uploads the certificates alongside.

Exits non-zero if any written manifest fails to round-trip, so the CI
step is a real gate, not just an artifact producer.
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

from repro.analysis.runner import sweep
from repro.comm.codecs import IdentityCodec, codec_family
from repro.faults.channel import drop_channel
from repro.mathx.modular import Field
from repro.obs.ledger import read_manifest, record_run
from repro.qbf.generators import random_qbf
from repro.servers.advisors import advisor_server_class
from repro.servers.provers import HonestProverServer
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import follower_user_class
from repro.users.delegation_users import DelegationUser
from repro.worlds.computation import delegation_goal
from repro.worlds.control import control_goal, control_sensing, random_law


def main() -> int:
    out = Path(sys.argv[1] if len(sys.argv) > 1 else "ledger-smoke")
    law = random_law(random.Random(11))
    goal = control_goal(law)
    codecs = codec_family(4)
    servers = advisor_server_class(law, codecs)

    def universal() -> CompactUniversalUser:
        return CompactUniversalUser(
            ListEnumeration(follower_user_class(codecs)), control_sensing()
        )

    recorded = record_run(
        universal(), servers[2], goal,
        max_rounds=1200, seed=0, out_dir=out, name="run",
        channel=drop_channel(0.05), certify=True,
    )
    assert recorded.manifest.achieved == 1, "smoke run failed to achieve"
    assert read_manifest(recorded.manifest_path) == recorded.manifest

    field = Field()
    delegated = record_run(
        DelegationUser(IdentityCodec(), field),
        HonestProverServer(field),
        delegation_goal([random_qbf(random.Random(s), 2) for s in (1, 4)]),
        max_rounds=300, seed=0, out_dir=out, name="qbf", certify=True,
    )
    assert delegated.manifest.achieved == 1, "delegation smoke failed"

    ledger = out / "sweep"
    sweep(
        universal(), servers, goal,
        seeds=(0, 1), max_rounds=1200,
        faults=[None, drop_channel(0.05)], ledger_dir=ledger, certify=True,
    )
    index = read_manifest(ledger / "sweep.json")
    ids = set()
    for cell_file in index.cells:
        manifest = read_manifest(ledger / cell_file)
        assert read_manifest(ledger / cell_file) == manifest
        ids.add(manifest.run_id())
    assert len(ids) == len(index.cells), "cell run_ids are not unique"

    print(f"ledger smoke OK: {recorded.manifest_path}, "
          f"{len(index.cells)} sweep cells under {ledger}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
