"""CI smoke: the session service under production-shaped load.

Drives 200 genuinely concurrent sessions — mixed goal families (relay /
control / universal), 10% Bernoulli message drop — through one
:class:`~repro.serve.engine.ServeEngine`, all admitted before the first
scheduler slice runs, and then holds the service to the reproduction
repo's standard of evidence:

* every session settles with an :class:`~repro.core.execution
  .ExecutionResult` **equal** to ``run_execution`` on the same cast/seed
  (the serve layer may change where rounds run, never what they compute),
  and the same goal verdict;
* every session leaves a manifest + trace in the ledger directory named
  by ``argv[1]``, each certified in-process here (``certify_run``) and
  re-certified by the CI job through the engine-free
  ``python -m repro.obs certify`` CLI before upload.

Exits non-zero on any parity break, failed session, or uncertifiable
trace, so the CI step is a real gate, not just an artifact producer.

Runs numpy-free on purpose: the smoke jobs install only pytest, pinning
the service to the stdlib.
"""

from __future__ import annotations

import asyncio
import sys
from pathlib import Path

from repro.core.execution import run_execution
from repro.obs.certify import certify_run
from repro.serve.engine import ServeEngine
from repro.serve.loadgen import demo_specs

SESSIONS = 200
HORIZON = 150
DROP = 0.1
SEED = 17


def main() -> int:
    out = Path(sys.argv[1] if len(sys.argv) > 1 else "serve-smoke")
    specs = demo_specs(
        "mixed", SESSIONS, seed=SEED, max_rounds=HORIZON, drop=DROP
    )

    async def serve():
        engine = ServeEngine(
            max_open=SESSIONS, workers=4, slice_rounds=16,
            ledger_dir=out, trace=True,
        )
        async with engine:
            # try_submit never awaits, so all 200 sessions are open before
            # the first worker slice runs: the high-water mark below is a
            # real concurrency witness, not a race.
            # Inline ledger open at admission is the serve design
            # (single-threaded write path, docs/SERVING.md).
            handles = [engine.try_submit(spec) for spec in specs]  # reprolint: disable=RL101
            outcomes = await asyncio.gather(*(h.future for h in handles))
            return engine, outcomes

    engine, outcomes = asyncio.run(serve())

    high_water = int(engine.counters.histogram("serve.open_sessions").maximum)
    assert high_water == SESSIONS, (
        f"expected {SESSIONS} concurrently open sessions, saw {high_water}"
    )
    assert engine.counters.get("serve.sessions_failed") == 0

    achieved = 0
    for spec, outcome in zip(specs, outcomes):
        reference = run_execution(
            spec.user, spec.server, spec.goal.world,
            max_rounds=spec.max_rounds, seed=spec.seed,
            recording=spec.recording, channel=spec.channel,
        )
        verdict = spec.goal.evaluate(reference)
        assert outcome.execution == reference, (
            f"served result diverged from batch run_execution: {spec.label}"
        )
        assert outcome.outcome == verdict, (
            f"served verdict diverged from batch evaluation: {spec.label}"
        )
        certify_run(outcome.trace_path, outcome.manifest_path)
        achieved += int(verdict.achieved)

    print(
        f"serve smoke OK: {len(outcomes)} sessions settled "
        f"({achieved} achieved), high water {high_water}, "
        f"{engine.counters.get('serve.rounds')} rounds, "
        f"traces certified in {out}/"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
