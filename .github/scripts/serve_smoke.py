"""CI smoke: the session service under production-shaped load.

Drives 200 genuinely concurrent sessions — mixed goal families (relay /
control / universal), 10% Bernoulli message drop — through one
:class:`~repro.serve.engine.ServeEngine`, all admitted before the first
scheduler slice runs, and then holds the service to the reproduction
repo's standard of evidence:

* every session settles with an :class:`~repro.core.execution
  .ExecutionResult` **equal** to ``run_execution`` on the same cast/seed
  (the serve layer may change where rounds run, never what they compute),
  and the same goal verdict;
* every session leaves a manifest + trace in the ledger directory named
  by ``argv[1]``, each certified in-process here (``certify_run``) and
  re-certified by the CI job through the engine-free
  ``python -m repro.obs certify`` CLI before upload;
* the live telemetry plane holds up under the same load: a mid-run
  admin scrape returns live gauges and Prometheus text that parses, the
  ``metrics.jsonl`` stream's cumulative counters exactly equal the final
  ``engine.json``, and a deliberately broken incident session leaves a
  flight dump under ``<ledger>/flight/`` that certifies as a fragment.

Exits non-zero on any parity break, failed session, or uncertifiable
trace, so the CI step is a real gate, not just an artifact producer.

Runs numpy-free on purpose: the smoke jobs install only pytest, pinning
the service to the stdlib.
"""

from __future__ import annotations

import asyncio
import json
import sys
from pathlib import Path

from repro.core.execution import run_execution
from repro.core.strategy import UserStrategy
from repro.obs.certify import certify_run, certify_trace
from repro.obs.live import (
    cumulative_counters,
    fetch_admin,
    parse_prometheus,
    read_metrics,
)
from repro.serve.engine import ServeEngine
from repro.serve.loadgen import demo_specs

SESSIONS = 200
HORIZON = 150
DROP = 0.1
SEED = 17


class BrokenTenant(UserStrategy):
    """Steps fine for a while, then raises — the incident under test."""

    def initial_state(self, rng):
        return 0

    def step(self, state, inbox, rng):
        if state >= 8:
            raise RuntimeError("incident: tenant bug")
        from repro.comm.messages import UserOutbox

        return state + 1, UserOutbox()


def main() -> int:
    out = Path(sys.argv[1] if len(sys.argv) > 1 else "serve-smoke")
    metrics = out / "metrics.jsonl"
    specs = demo_specs(
        "mixed", SESSIONS, seed=SEED, max_rounds=HORIZON, drop=DROP
    )

    async def serve():
        engine = ServeEngine(
            max_open=SESSIONS + 1, workers=4, slice_rounds=16,
            ledger_dir=out, trace=True,
            metrics_path=metrics, metrics_interval_s=0.25,
            admin="127.0.0.1:0", flight=64,
        )
        async with engine:
            # try_submit never awaits, so all 200 sessions are open before
            # the first worker slice runs: the high-water mark below is a
            # real concurrency witness, not a race.
            # Inline ledger open at admission is the serve design
            # (single-threaded write path, docs/SERVING.md).
            handles = [engine.try_submit(spec) for spec in specs]  # reprolint: disable=RL101

            # Mid-run admin scrape: live gauges + Prometheus exposition
            # while every session is still open.
            address = await engine.admin_address()
            status = json.loads(await fetch_admin(address, "/status"))
            assert status["gauges"]["open_sessions"] == SESSIONS, status
            assert status["gauges"]["draining"] == 0.0, status
            scraped = parse_prometheus(await fetch_admin(address, "/metrics"))
            assert scraped["repro_open_sessions"] == float(SESSIONS), scraped

            outcomes = await asyncio.gather(*(h.future for h in handles))
            return engine, outcomes, scraped

    engine, outcomes, scraped = asyncio.run(serve())

    high_water = int(engine.counters.histogram("serve.open_sessions").maximum)
    assert high_water == SESSIONS, (
        f"expected {SESSIONS} concurrently open sessions, saw {high_water}"
    )
    assert engine.counters.get("serve.sessions_failed") == 0

    achieved = 0
    for spec, outcome in zip(specs, outcomes):
        reference = run_execution(
            spec.user, spec.server, spec.goal.world,
            max_rounds=spec.max_rounds, seed=spec.seed,
            recording=spec.recording, channel=spec.channel,
        )
        verdict = spec.goal.evaluate(reference)
        assert outcome.execution == reference, (
            f"served result diverged from batch run_execution: {spec.label}"
        )
        assert outcome.outcome == verdict, (
            f"served verdict diverged from batch evaluation: {spec.label}"
        )
        certify_run(outcome.trace_path, outcome.manifest_path)
        achieved += int(verdict.achieved)

    # The metrics stream and the final summary are two views of one
    # CounterSet: summed per-tick deltas must equal engine.json exactly,
    # and the mid-run scrape must agree on everything frozen by then.
    summary = json.loads((out / "engine.json").read_text())
    _, samples = read_metrics(metrics)
    totals = cumulative_counters(samples)
    for name, value in summary.items():
        if isinstance(value, int) and name.startswith("serve."):
            assert totals.get(name, 0) == value, (name, totals.get(name), value)
    assert scraped["repro_serve_sessions_submitted_total"] == float(
        summary["serve.sessions_submitted"]
    )

    # Incident drill: one broken session through a flight-recording
    # engine leaves a fragment-certifiable dump for the postmortem.
    incident_spec = specs[0].__class__(
        user=BrokenTenant(), server=specs[0].server, goal=specs[0].goal,
        seed=1, max_rounds=HORIZON, label="incident",
    )

    # The incident engine gets its own ledger subdirectory so its
    # engine.json cannot recompose over the 200-session run's summary.
    async def crash():
        async with ServeEngine(
            max_open=4, workers=1, slice_rounds=4,
            ledger_dir=out / "incident", flight=32,
        ) as eng:
            # Same inline-ledger-open-at-admission design note as above.
            handle = eng.try_submit(incident_spec, session_id="incident-0")  # reprolint: disable=RL101
            try:
                await handle.future
            except RuntimeError:
                return
            raise AssertionError("incident session settled cleanly?")

    asyncio.run(crash())
    dump = out / "incident" / "flight" / "incident-0.jsonl"
    assert dump.exists(), "incident left no flight dump"
    report = certify_trace(dump, fragment=True)
    assert report.certifiable, report.issues

    print(
        f"serve smoke OK: {len(outcomes)} sessions settled "
        f"({achieved} achieved), high water {high_water}, "
        f"{engine.counters.get('serve.rounds')} rounds, "
        f"{len(samples)} metrics samples agree with engine.json, "
        f"traces + flight dump certified in {out}/"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
