"""CI smoke: one batched, ledgered, certified sweep — read back and compared.

Writes into the directory named by argv[1]:

* ``sweep/`` — per-cell manifests plus ``sweep.json`` from a relay-grid
  sweep run through the vectorized batch backend
  (``sweep(..., batch=8, ledger_dir=..., certify=True)``).

Gates, in order:

1. the sweep manifest round-trips and is stamped ``backend="batch"``
   with the requested ``batch_width``;
2. every cell manifest round-trips with a unique run id;
3. the batched report equals a serial re-run of the same grid — the
   ledger records a backend, never a different result.

Exits non-zero on any failure, so the CI step is a real gate, not just
an artifact producer.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis.runner import sweep
from repro.core.batch import HAVE_NUMPY
from repro.machines.tabular import (
    coded_server_class,
    relay_decoder_class,
    relay_goal,
)
from repro.obs.ledger import read_manifest

SYMBOLS = ("a", "b", "c", "d")
BATCH_WIDTH = 8


def main() -> int:
    assert HAVE_NUMPY, "batched smoke requires numpy (install step missing?)"
    out = Path(sys.argv[1] if len(sys.argv) > 1 else "batched-ledger-smoke")
    goal = relay_goal(SYMBOLS)
    user = relay_decoder_class(SYMBOLS)[0]
    servers = coded_server_class(SYMBOLS)

    ledger = out / "sweep"
    batched = sweep(
        user, servers, goal,
        seeds=(0, 1), max_rounds=200,
        batch=BATCH_WIDTH, ledger_dir=ledger, certify=True,
    )

    index = read_manifest(ledger / "sweep.json")
    assert index.backend == "batch", f"backend stamp: {index.backend!r}"
    assert index.batch_width == BATCH_WIDTH, (
        f"batch_width stamp: {index.batch_width!r}"
    )
    ids = set()
    for cell_file in index.cells:
        manifest = read_manifest(ledger / cell_file)
        assert read_manifest(ledger / cell_file) == manifest
        ids.add(manifest.run_id())
    assert len(ids) == len(index.cells), "cell run_ids are not unique"

    serial = sweep(user, servers, goal, seeds=(0, 1), max_rounds=200)
    assert batched == serial, "batched sweep diverged from serial"

    print(f"batched ledger smoke OK: backend={index.backend} "
          f"width={index.batch_width}, {len(index.cells)} cells under {ledger}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
