"""E14 (extension) — navigation: enumeration overhead in physical steps.

The thesis's navigation motif: a guide who knows the maze, a traveller who
does not know the guide's language.  This goal makes the cost structure of
Theorem 1 tactile — rounds pay for language discovery, *moves* pay for the
path — and cleanly separates them: wrong-language candidates stay silent,
so the executed path remains BFS-optimal while discovery rounds grow with
the language's enumeration position.

Expected shape: every guide handled; moves == shortest-path length and
bumps == 0 in every row; rounds grow linearly with codec index and with
maze size.
"""

from __future__ import annotations

import random

from conftest import emit

from repro.analysis.tables import format_table
from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.servers.guides import guide_server_class
from repro.universal.enumeration import ListEnumeration
from repro.universal.finite import FiniteUniversalUser
from repro.universal.schedules import doubling_sweep_trials
from repro.users.navigation_users import navigator_user_class
from repro.worlds.navigation import corridor_grid, navigation_goal, navigation_sensing, random_grid

CODECS = codec_family(4)


def universal():
    return FiniteUniversalUser(
        ListEnumeration(navigator_user_class(CODECS), label="navigators"),
        navigation_sensing(),
        schedule_factory=lambda cap: doubling_sweep_trials(
            None if cap is None else cap - 1
        ),
    )


def run_navigation_matrix():
    mazes = [
        ("random 6x6", random_grid(random.Random(7), 6, 6, 0.2)),
        ("random 10x10", random_grid(random.Random(9), 10, 10, 0.25)),
        ("corridor 14", corridor_grid(14)),
    ]
    rows = []
    for label, grid in mazes:
        goal = navigation_goal(grid)
        optimal = grid.distance_from_target(grid.start)
        for index, server in enumerate(guide_server_class(grid, CODECS)):
            result = run_execution(
                universal(), server, goal.world, max_rounds=6000, seed=index
            )
            outcome = goal.evaluate(result)
            state = result.final_world_state()
            rows.append(
                [label, optimal, server.name.split("@")[1], outcome.achieved,
                 state.moves, state.bumps, result.rounds_executed]
            )
    return rows


def test_e14_navigation(benchmark):
    rows = benchmark.pedantic(run_navigation_matrix, rounds=1, iterations=1)
    emit(
        format_table(
            ["maze", "shortest", "language", "arrived", "moves", "bumps", "rounds"],
            rows,
            title="E14: guided navigation — optimal paths, language-priced rounds",
        )
    )
    assert all(row[3] for row in rows)
    assert all(row[4] == row[1] for row in rows)  # Step-optimal everywhere.
    assert all(row[5] == 0 for row in rows)       # Never bumps a wall.
    # Rounds grow with the language's enumeration position within each maze.
    for maze in dict.fromkeys(row[0] for row in rows):
        series = [row[6] for row in rows if row[0] == maze]
        assert series == sorted(series)
