"""Compare a fresh BENCH_sweep.json against the committed baseline.

The CI bench gate works in three steps: stash the committed baseline,
re-run ``benchmarks/bench_sweep.py`` (which overwrites the JSON), then
invoke this script with both files::

    python benchmarks/check_bench_regression.py baseline.json BENCH_sweep.json

The gate is throughput, not wall-clock: ``cells_per_s`` (serial cells per
second) is the one figure that is comparable across runs of the same
machine class, and ``batched_cells_per_s`` (the vectorized lockstep
backend) gates the same way when both files carry it.  A candidate more
than ``--tolerance`` (default 25%) slower than baseline fails with exit
code 1.  Wall-clock fields and speedups are printed for context but never
gate — CI runners vary too much in core count for the parallel numbers to
be stable.

``--metric KEY`` points the gate at a different throughput figure; the
serve capacity gate compares ``BENCH_serve.json`` files the same way::

    python benchmarks/check_bench_regression.py \
        baseline_serve.json BENCH_serve.json --metric sessions_per_s

(The secondary ``batched_cells_per_s`` check only applies to the default
``cells_per_s`` metric.  The serve gate also bounds tail latency: when
both files carry ``latency_p95_ms`` — the loadgen's streaming-histogram
p95 — the candidate may not exceed the baseline by more than the same
tolerance.)

Baselines recorded on a different core count are reported but not
enforced, since serial throughput also shifts with the machine class.

``--record FILE`` additionally appends one ``{"manifest", "metrics"}``
line for the candidate to a bench-history JSONL file (conventionally
``BENCH_history.jsonl``); ``python -m repro.obs diff --history FILE``
compares the two newest entries.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# CI runs this script without PYTHONPATH=src; the ledger import for
# --record needs the in-repo package.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(f"error: benchmark file not found: {path}")
    except json.JSONDecodeError as exc:
        sys.exit(f"error: {path} is not valid JSON: {exc}")


def throughput(payload: dict, label: str, metric: str = "cells_per_s") -> float:
    if metric in payload:
        return float(payload[metric])
    if metric == "cells_per_s":
        # Older baselines predate the explicit field; derive it.
        try:
            return payload["cells"] / payload["serial_s"]
        except (KeyError, ZeroDivisionError):
            pass
    sys.exit(f"error: {label} has no usable {metric} figures")


def unit(metric: str) -> str:
    """Human display unit for a ``*_per_s`` metric key."""
    if metric.endswith("_per_s"):
        return metric[: -len("_per_s")].replace("_", " ") + "/s"
    return metric


def record_history(history: Path, candidate: dict, source: Path) -> None:
    """Append one ``{"manifest", "metrics"}`` line for the candidate.

    The manifest half is provenance (version, commit, machine class); the
    metrics half is every numeric figure in the bench payload, which is
    exactly the shape ``python -m repro.obs diff --history`` consumes.
    """
    from repro.obs.ledger import LEDGER_SCHEMA, git_sha
    from repro.version import __version__

    metrics = {
        key: value
        for key, value in candidate.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    entry = {
        "manifest": {
            "ledger_schema": LEDGER_SCHEMA,
            "kind": "bench",
            "source": source.name,
            "repro_version": __version__,
            "git_sha": git_sha(),
            "cores": candidate.get("cores"),
        },
        "metrics": metrics,
    }
    with history.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
    print(f"recorded candidate metrics to {history}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed BENCH_sweep.json")
    parser.add_argument("candidate", type=Path, help="freshly generated JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    parser.add_argument(
        "--record",
        type=Path,
        metavar="FILE",
        help="append the candidate's {manifest, metrics} to this "
        "bench-history JSONL file (see python -m repro.obs diff --history)",
    )
    parser.add_argument(
        "--metric",
        default="cells_per_s",
        metavar="KEY",
        help="throughput key to gate on (default cells_per_s; the serve "
        "gate passes sessions_per_s for BENCH_serve.json pairs)",
    )
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    candidate = load(args.candidate)

    if args.record is not None:
        record_history(args.record, candidate, args.candidate)

    base_tp = throughput(baseline, "baseline", args.metric)
    cand_tp = throughput(candidate, "candidate", args.metric)
    ratio = cand_tp / base_tp if base_tp else float("inf")
    figures = unit(args.metric)

    print(f"baseline  : {base_tp:.2f} {figures} ({baseline.get('cores')} cores)")
    print(f"candidate : {cand_tp:.2f} {figures} ({candidate.get('cores')} cores)")
    print(f"ratio     : {ratio:.3f} (floor {1 - args.tolerance:.2f})")

    if baseline.get("cores") != candidate.get("cores"):
        print("note: core counts differ — skipping the throughput gate")
        return 0
    if ratio < 1 - args.tolerance:
        print(
            f"FAIL: {figures} throughput regressed by {(1 - ratio) * 100:.1f}% "
            f"(> {args.tolerance * 100:.0f}% allowed)"
        )
        return 1

    # The batched backend gates only when both sides measured it (older
    # baselines predate it; numpy-less runs skip the batched bench), and
    # only alongside the default serial metric.
    base_batched = baseline.get("batched_cells_per_s")
    cand_batched = candidate.get("batched_cells_per_s")
    if args.metric == "cells_per_s" and base_batched and cand_batched:
        batched_ratio = float(cand_batched) / float(base_batched)
        print(
            f"batched   : {float(cand_batched):.2f} vs "
            f"{float(base_batched):.2f} cells/s "
            f"(ratio {batched_ratio:.3f}, floor {1 - args.tolerance:.2f})"
        )
        if batched_ratio < 1 - args.tolerance:
            print(
                f"FAIL: batched throughput regressed by "
                f"{(1 - batched_ratio) * 100:.1f}% "
                f"(> {args.tolerance * 100:.0f}% allowed)"
            )
            return 1

    # Tail latency gates the serve bench the other way around: higher is
    # worse.  Only when both sides measured it (burst runs without
    # settled sessions report null p95s; older baselines lack the key).
    base_p95 = baseline.get("latency_p95_ms")
    cand_p95 = candidate.get("latency_p95_ms")
    if args.metric == "sessions_per_s" and base_p95 and cand_p95:
        p95_ratio = float(cand_p95) / float(base_p95)
        print(
            f"p95       : {float(cand_p95):.1f} vs {float(base_p95):.1f} ms "
            f"(ratio {p95_ratio:.3f}, ceiling {1 + args.tolerance:.2f})"
        )
        if p95_ratio > 1 + args.tolerance:
            print(
                f"FAIL: p95 latency grew by {(p95_ratio - 1) * 100:.1f}% "
                f"(> {args.tolerance * 100:.0f}% allowed)"
            )
            return 1
    print("OK: throughput within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
