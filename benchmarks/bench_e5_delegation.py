"""E5 — delegation of PSPACE computation (Juba–Sudan via the TQBF IP).

Claim: a polynomial-time user can delegate TQBF to an untrusted,
possibly-misunderstood prover; IP soundness makes its sensing safe, so it
answers correctly with every honest prover under every codec and is never
fooled by cheaters.

Two tables: (a) universal success vs honest encoded provers with rounds
and verifier work; (b) the malice matrix — cheating/lazy provers vs
whether the user ever emitted a wrong answer (must be all-no).
"""

from __future__ import annotations

import random

from conftest import emit

from repro.analysis.tables import format_table
from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.mathx.modular import Field
from repro.qbf.generators import balanced_qbf_batch
from repro.servers.provers import (
    CheatingProverServer,
    HonestProverServer,
    LazyProverServer,
)
from repro.servers.wrappers import EncodedServer
from repro.universal.enumeration import ListEnumeration
from repro.universal.finite import FiniteUniversalUser
from repro.universal.schedules import doubling_sweep_trials
from repro.users.delegation_users import delegation_user_class
from repro.worlds.computation import delegation_goal, delegation_sensing

F = Field()
CODECS = codec_family(4)
INSTANCES = balanced_qbf_batch(random.Random(7), 4, 4)
GOAL = delegation_goal(INSTANCES)
USERS = delegation_user_class(CODECS, F)


def universal():
    return FiniteUniversalUser(
        ListEnumeration(USERS, label="delegates"),
        delegation_sensing(),
        schedule_factory=lambda cap: doubling_sweep_trials(
            None if cap is None else cap - 1
        ),
    )


def run_honest_sweep():
    rows = []
    for index, codec in enumerate(CODECS):
        server = EncodedServer(HonestProverServer(F), codec)
        for seed in range(2):
            result = run_execution(
                universal(), server, GOAL.world, max_rounds=8000, seed=seed
            )
            outcome = GOAL.evaluate(result)
            rows.append(
                [
                    server.name,
                    seed,
                    outcome.achieved,
                    result.rounds_executed,
                    result.user_output,
                ]
            )
    return rows


def run_malice_matrix():
    adversaries = [
        CheatingProverServer(F, "flip"),
        CheatingProverServer(F, "constant"),
        CheatingProverServer(F, "random"),
        LazyProverServer(0),
        LazyProverServer(1),
    ]
    rows = []
    for server in adversaries:
        wrong_answers = 0
        halts = 0
        for seed in range(3):
            result = run_execution(
                universal(), server, GOAL.world, max_rounds=4000, seed=seed
            )
            if result.halted:
                halts += 1
                if not GOAL.evaluate(result).achieved:
                    wrong_answers += 1
        rows.append([server.name, halts, wrong_answers])
    return rows


def test_e5_honest_provers_universal(benchmark):
    rows = benchmark.pedantic(run_honest_sweep, rounds=1, iterations=1)
    emit(
        format_table(
            ["prover", "seed", "achieved", "rounds", "answer"],
            rows,
            title=f"E5a: delegation vs honest encoded provers "
                  f"(n_vars={INSTANCES[0].n_vars})",
        )
    )
    assert all(row[2] for row in rows)


def test_e5_malice_matrix(benchmark):
    rows = benchmark.pedantic(run_malice_matrix, rounds=1, iterations=1)
    emit(
        format_table(
            ["adversary", "halts", "wrong answers"],
            rows,
            title="E5b: safety against dishonest provers (wrong answers must be 0)",
        )
    )
    assert all(row[2] == 0 for row in rows)
