"""E9 — the printer goal: side-effect goals and the value of feedback.

Claim: the printing goal — not delegation-shaped in any reasonable sense —
is handled by the same theory; and in the feedback-free world no safe and
viable sensing exists, so universality collapses.  The table contrasts the
feedback world (universal success) with the blind world under a bold
(blindly-halting) and a cautious user.

Expected shape: feedback rows all achieved; blind+cautious never halts;
blind+bold halts everywhere but is wrong off the diagonal.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.tables import format_table
from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.servers.printer_servers import DIALECTS, printer_server_class
from repro.universal.enumeration import ListEnumeration
from repro.universal.finite import FiniteUniversalUser
from repro.universal.schedules import doubling_sweep_trials
from repro.users.printer_users import PrinterProtocolUser, printer_user_class
from repro.worlds.printer import printing_goal, printing_sensing

CODECS = codec_family(3)
SERVERS = printer_server_class(DIALECTS, CODECS)
GOAL = printing_goal(["annual report 2011"])
BLIND_GOAL = printing_goal(["annual report 2011"], feedback=False)


def universal():
    return FiniteUniversalUser(
        ListEnumeration(printer_user_class(DIALECTS, CODECS)),
        printing_sensing(),
        schedule_factory=lambda cap: doubling_sweep_trials(
            None if cap is None else cap - 1
        ),
    )


def run_feedback_matrix():
    rows = []
    for index, server in enumerate(SERVERS):
        result = run_execution(
            universal(), server, GOAL.world, max_rounds=6000, seed=index
        )
        rows.append(
            ["feedback", server.name, result.halted,
             GOAL.evaluate(result).achieved]
        )
    # Blind world, cautious universal: never halts.
    result = run_execution(
        universal(), SERVERS[0], BLIND_GOAL.world, max_rounds=4000, seed=0
    )
    rows.append(["blind", f"{SERVERS[0].name} (cautious)", result.halted,
                 BLIND_GOAL.evaluate(result).achieved])
    # Blind world, bold rigid user: halts everywhere, wrong off-diagonal.
    bold = PrinterProtocolUser("space", CODECS[0], blind_halt_after=5)
    for server in (SERVERS[0], SERVERS[-1]):
        result = run_execution(
            bold, server, BLIND_GOAL.world, max_rounds=400, seed=0
        )
        rows.append(["blind", f"{server.name} (bold)", result.halted,
                     BLIND_GOAL.evaluate(result).achieved])
    return rows


def test_e9_feedback_vs_blind(benchmark):
    rows = benchmark.pedantic(run_feedback_matrix, rounds=1, iterations=1)
    emit(
        format_table(
            ["world", "server (user)", "halted", "achieved"],
            rows,
            title="E9: printing with and without world feedback",
        )
    )
    feedback_rows = [r for r in rows if r[0] == "feedback"]
    assert all(r[3] for r in feedback_rows)
    cautious = [r for r in rows if "cautious" in r[1]][0]
    assert not cautious[2]  # Never halts without evidence.
    bold_rows = [r for r in rows if "bold" in r[1]]
    assert all(r[2] for r in bold_rows)           # Bold always halts...
    assert any(not r[3] for r in bold_rows)       # ...and is wrong somewhere.
