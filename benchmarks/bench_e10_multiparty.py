"""E10 — multiparty goals reduce to the two-party setting (footnote 1).

Claim: boxing N−1 parties into a composite server preserves behaviour.
The table compares, for N = 3..6 parties, the native N-party rendezvous
execution with its two-party reduction: final agreement, agreed symbol,
and rounds to agreement, which must coincide.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.tables import format_table
from repro.core.execution import run_execution
from repro.multiparty.reduction import reduce_to_two_party
from repro.multiparty.symmetric import (
    FollowLeaderParty,
    RendezvousState,
    RendezvousWorld,
    run_multiparty,
)

COLOURS = ["red", "green", "blue", "yellow", "violet", "orange"]


def rounds_to_agreement(states, n):
    for i, state in enumerate(states):
        if isinstance(state, RendezvousState) and state.agreed(n):
            return i
    return None


def run_reduction_comparison():
    rows = []
    for n in (3, 4, 5, 6):
        names = [f"p{i}" for i in range(n)]
        parties = {
            name: FollowLeaderParty(name, COLOURS[i], names)
            for i, name in enumerate(names)
        }
        native = run_multiparty(
            parties, RendezvousWorld(names), max_rounds=30, seed=n
        )
        user, server, world = reduce_to_two_party(
            parties, RendezvousWorld(names), names[0]
        )
        reduced = run_execution(user, server, world, max_rounds=30, seed=n)

        native_final = native.final_world_state()
        reduced_final = reduced.final_world_state()
        rows.append(
            [
                n,
                native_final.agreed(n),
                reduced_final.agreed(n),
                dict(native_final.announcements).get(names[1]),
                dict(reduced_final.announcements).get(names[1]),
                rounds_to_agreement(native.world_states, n),
                rounds_to_agreement(reduced.world_states, n),
            ]
        )
    return rows


def test_e10_reduction_preserves_behaviour(benchmark):
    rows = benchmark.pedantic(run_reduction_comparison, rounds=1, iterations=1)
    emit(
        format_table(
            ["N", "native agreed", "reduced agreed", "native symbol",
             "reduced symbol", "native rounds", "reduced rounds"],
            rows,
            title="E10: native N-party rendezvous vs two-party reduction",
        )
    )
    for row in rows:
        assert row[1] and row[2]
        assert row[3] == row[4] == "red"  # Lowest-named party's preference.
        assert row[5] == row[6]
