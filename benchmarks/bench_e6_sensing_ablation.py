"""E6 — Theorem 1's hypotheses are necessary: sensing ablations.

Claim: safety and viability are not decorative.  The table runs the same
universal constructions with (a) proper sensing, (b) unsafe
(always-positive) sensing, (c) non-viable (always-negative) sensing, and
reports goal achievement and failure mode.

Expected shape: proper = achieved; unsafe = false success (finite: halts
wrong / compact: sticks with a failing candidate); non-viable = starvation
(never halts / cycles forever).
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.tables import format_table
from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.core.sensing import ConstantSensing
from repro.core.strategy import SilentServer
from repro.online.adapter import threshold_user_class
from repro.servers.printer_servers import printer_server_class
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.universal.finite import FiniteUniversalUser
from repro.users.printer_users import printer_user_class
from repro.worlds.lookup import lookup_goal, lookup_sensing
from repro.worlds.printer import printing_goal, printing_sensing

CODECS = codec_family(3)
DIALECTS = ("space", "tagged")

PRINT_GOAL = printing_goal(["memo"])
PRINT_SERVER = printer_server_class(DIALECTS, CODECS)[-1]
BLIND_USERS = printer_user_class(DIALECTS, CODECS, blind_halt_after=5)
CAUTIOUS_USERS = printer_user_class(DIALECTS, CODECS)

LOOKUP_GOAL = lookup_goal(threshold=3, domain=8)


def run_ablation_matrix():
    rows = []

    def finite_case(label, users, sensing):
        user = FiniteUniversalUser(ListEnumeration(users), sensing)
        result = run_execution(
            user, PRINT_SERVER, PRINT_GOAL.world, max_rounds=3000, seed=0
        )
        achieved = PRINT_GOAL.evaluate(result).achieved
        mode = (
            "ok" if achieved
            else ("false success" if result.halted else "starvation")
        )
        rows.append(["finite/printing", label, achieved, mode])

    finite_case("proper", BLIND_USERS, printing_sensing())
    finite_case("unsafe (always+)", BLIND_USERS, ConstantSensing(True))
    finite_case("non-viable (always-)", CAUTIOUS_USERS, ConstantSensing(False))

    def compact_case(label, sensing):
        user = CompactUniversalUser(
            ListEnumeration(threshold_user_class(8)), sensing
        )
        result = run_execution(
            user, SilentServer(), LOOKUP_GOAL.world, max_rounds=1500, seed=0
        )
        achieved = LOOKUP_GOAL.evaluate(result).achieved
        state = result.rounds[-1].user_state_after
        mode = (
            "ok" if achieved
            else ("stuck on failer" if state.switches == 0 else "cycling")
        )
        rows.append(["compact/lookup", label, achieved, mode])

    compact_case("proper", lookup_sensing())
    compact_case("unsafe (always+)", ConstantSensing(True))
    compact_case("non-viable (always-)", ConstantSensing(False))
    return rows


def test_e6_ablation_matrix(benchmark):
    rows = benchmark.pedantic(run_ablation_matrix, rounds=1, iterations=1)
    emit(
        format_table(
            ["goal", "sensing", "achieved", "failure mode"],
            rows,
            title="E6: sensing ablation (proper vs unsafe vs non-viable)",
        )
    )
    by_label = {(r[0], r[1]): (r[2], r[3]) for r in rows}
    assert by_label[("finite/printing", "proper")][0]
    assert by_label[("compact/lookup", "proper")][0]
    assert by_label[("finite/printing", "unsafe (always+)")][1] == "false success"
    assert by_label[("finite/printing", "non-viable (always-)")][1] == "starvation"
    assert not by_label[("compact/lookup", "unsafe (always+)")][0]
    assert not by_label[("compact/lookup", "non-viable (always-)")][0]
