"""E7 — compact-goal semantics: the error curve goes flat.

Claim: achieving a compact goal means the number of unacceptable prefixes
is *finite* — in an execution trace, all mistakes cluster in the learning
phase and then stop.  The series reports cumulative mistakes at checkpoints
along one long execution, per server, plus a sparkline of the error
indicator.

Expected shape: each curve rises during enumeration and is exactly flat
afterwards; higher codec indices flatten later.
"""

from __future__ import annotations

import random

from conftest import emit

from repro.analysis.tables import format_sparkline, format_table
from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.servers.advisors import advisor_server_class
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import follower_user_class
from repro.worlds.control import ControlState, control_goal, control_sensing, random_law

CODECS = codec_family(6)
LAW = random_law(random.Random(9))
GOAL = control_goal(LAW)
SERVERS = advisor_server_class(LAW, CODECS)
HORIZON = 2400
CHECKPOINTS = (300, 600, 1200, 2400)


def run_error_curves():
    curves = []
    for index in (0, 2, 5):
        user = CompactUniversalUser(
            ListEnumeration(follower_user_class(CODECS)), control_sensing()
        )
        result = run_execution(
            user, SERVERS[index], GOAL.world, max_rounds=HORIZON, seed=4
        )
        mistakes_at = {}
        per_round = []
        last = 0
        for record, state in zip(result.rounds, result.world_states[1:]):
            assert isinstance(state, ControlState)
            per_round.append(state.mistakes - last)
            last = state.mistakes
            if record.index + 1 in CHECKPOINTS:
                mistakes_at[record.index + 1] = state.mistakes
        final = result.final_world_state()
        curves.append((index, mistakes_at, final.mistakes, per_round))
    return curves


def test_e7_error_decay(benchmark):
    curves = benchmark.pedantic(run_error_curves, rounds=1, iterations=1)
    rows = [
        [f"codec #{index}"] + [at.get(cp, total) for cp in CHECKPOINTS] + [total]
        for index, at, total, _ in curves
    ]
    emit(
        format_table(
            ["server", *(f"@{cp}" for cp in CHECKPOINTS), "total"],
            rows,
            title="E7: cumulative mistakes at checkpoints (horizon 2400)",
        )
    )
    for index, _, _, per_round in curves:
        emit(f"  codec #{index} error pattern: {format_sparkline(per_round)}")
    for _, at, total, _ in curves:
        # Flat tail: no mistakes added in the second half.
        assert at[1200] == at[2400] == total
    # Later codecs accumulate more mistakes before flattening.
    totals = [total for _, _, total, _ in curves]
    assert totals[0] <= totals[1] <= totals[2]
    assert totals[2] > totals[0]
