"""E2 — Theorem 1, finite case: Levin-scheduled universal printing.

Paper claim: for finite goals, "strategies are enumerated 'in parallel' as
in Levin's approach, and sensing is used to decide when to stop."  The
table reports rounds-to-halt per printer (dialect × codec) for the Levin
schedule and for the doubling-sweep schedule, plus the trials each spent.

Expected shape: both schedules succeed on every member; Levin's cost grows
exponentially with the matched candidate's index (its hallmark overhead),
the sweep schedule's only linearly.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.tables import format_table
from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.servers.printer_servers import DIALECTS, printer_server_class
from repro.universal.enumeration import ListEnumeration
from repro.universal.finite import FiniteUniversalUser
from repro.universal.schedules import doubling_sweep_trials
from repro.users.printer_users import printer_user_class
from repro.worlds.printer import printing_goal, printing_sensing

CODECS = codec_family(3)
GOAL = printing_goal(["the quick brown fox"])
SERVERS = printer_server_class(DIALECTS, CODECS)
USERS = printer_user_class(DIALECTS, CODECS)


def make_user(schedule):
    if schedule == "levin":
        return FiniteUniversalUser(
            ListEnumeration(USERS, label="printers"), printing_sensing()
        )
    return FiniteUniversalUser(
        ListEnumeration(USERS, label="printers"),
        printing_sensing(),
        schedule_factory=lambda cap: doubling_sweep_trials(
            None if cap is None else cap - 1
        ),
    )


def run_schedule_comparison():
    rows = []
    for index, server in enumerate(SERVERS):
        row = [index, server.name]
        for schedule in ("levin", "sweep"):
            result = run_execution(
                make_user(schedule), server, GOAL.world,
                max_rounds=60000, seed=index,
            )
            achieved = GOAL.evaluate(result).achieved
            state = result.rounds[-1].user_state_after
            row.extend([result.rounds_executed if achieved else None,
                        state.trials_run])
        rows.append(row)
    return rows


def test_e2_levin_vs_sweep(benchmark):
    rows = benchmark.pedantic(run_schedule_comparison, rounds=1, iterations=1)
    emit(
        format_table(
            ["idx", "server", "levin rounds", "levin trials",
             "sweep rounds", "sweep trials"],
            rows,
            title="E2: finite universal printing, Levin vs doubling-sweep",
        )
    )
    assert all(row[2] is not None and row[4] is not None for row in rows)
    # Levin's overhead is exponential in index; the last member costs far
    # more than the first under Levin, mildly more under the sweep.
    assert rows[-1][2] > 16 * rows[0][2]
    assert rows[-1][4] < 16 * max(1, rows[0][4])


def test_e2_levin_single_worst_case(benchmark):
    def run_once():
        return run_execution(
            make_user("levin"), SERVERS[-1], GOAL.world, max_rounds=60000, seed=1
        )

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert result.halted
