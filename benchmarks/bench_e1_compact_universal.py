"""E1 — Theorem 1, compact case: universal success over a server class.

Paper claim: "for any compact goal and any class of server strategies for
which there exists safe and viable sensing, there exists a universal user
strategy."  The table reports, for every codec-wrapped advisor in the
class: whether the goal was achieved, the index the universal user settled
on, the switches spent, and the last round with a mistake.

Expected shape: every row achieved=yes; settled index = server's codec
index; switches = index (enumeration order is respected).
"""

from __future__ import annotations

import random

from conftest import emit

from repro.analysis.tables import format_table
from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.servers.advisors import advisor_server_class
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import follower_user_class
from repro.worlds.control import control_goal, control_sensing, random_law

CODECS = codec_family(8)
LAW = random_law(random.Random(1))
GOAL = control_goal(LAW)
SERVERS = advisor_server_class(LAW, CODECS)
HORIZON = 3000


def universal():
    return CompactUniversalUser(
        ListEnumeration(follower_user_class(CODECS), label="followers"),
        control_sensing(),
    )


def run_class_sweep():
    rows = []
    for index, server in enumerate(SERVERS):
        result = run_execution(
            universal(), server, GOAL.world, max_rounds=HORIZON, seed=index
        )
        outcome = GOAL.evaluate(result)
        state = result.rounds[-1].user_state_after
        verdict = outcome.compact_verdict
        rows.append(
            [
                server.name,
                outcome.achieved,
                state.index,
                state.switches,
                verdict.last_bad_round or 0,
            ]
        )
    return rows


def test_e1_universal_over_advisor_class(benchmark):
    rows = benchmark.pedantic(run_class_sweep, rounds=1, iterations=1)
    emit(
        format_table(
            ["server", "achieved", "settled idx", "switches", "last mistake @"],
            rows,
            title="E1: compact universal user vs advisor class "
                  f"(|class|={len(SERVERS)}, horizon={HORIZON})",
        )
    )
    assert all(row[1] for row in rows), "universality violated"
    assert [row[2] for row in rows] == list(range(len(SERVERS)))


def test_e1_single_settled_execution_cost(benchmark):
    """Micro: cost of one full execution against the last class member."""

    def run_once():
        return run_execution(
            universal(), SERVERS[-1], GOAL.world, max_rounds=HORIZON, seed=0
        )

    result = benchmark(run_once)
    assert GOAL.evaluate(result).achieved


def test_e1_jsonl_trace_replays_switch_count(tmp_path):
    """A JSONL trace replays to the switch count RunMetrics reports.

    Acceptance check for the tracing layer: write the full event stream of
    one E1 execution to disk, parse it back, and confirm the replayed
    :class:`StrategySwitch` events agree with both the live counters and
    the post-hoc metrics — the trace is a faithful account of the run.
    """
    from repro.analysis.metrics import collect_metrics
    from repro.obs import JsonlSink, StrategySwitch, Tracer, read_jsonl

    path = tmp_path / "e1_trace.jsonl"
    tracer = Tracer(sink=JsonlSink(path))
    user = universal()
    user.tracer = tracer
    result = run_execution(
        user, SERVERS[-1], GOAL.world, max_rounds=HORIZON, seed=0, tracer=tracer
    )
    tracer.close()

    metrics = collect_metrics(result, GOAL)
    replayed = read_jsonl(path)
    switch_events = [e for e in replayed if isinstance(e, StrategySwitch)]
    assert metrics.switches == len(SERVERS) - 1
    assert len(switch_events) == metrics.switches
    assert tracer.counters.get("switches") == metrics.switches
    assert tracer.counters.get("rounds") == result.rounds_executed
