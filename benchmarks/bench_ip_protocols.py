"""Micro-benchmarks of the interactive-proof substrate.

Not tied to a single paper claim; these measure the machinery E5 is built
on — honest-prover precomputation, per-round message cost, verifier cost,
and how they scale with instance size — plus a soundness-rate table under a
deliberately small field, where the ≈ deg/p escape probability is visible.
"""

from __future__ import annotations

import random

from conftest import emit

from repro.analysis.tables import format_table
from repro.ip.degree import operator_schedule, soundness_error_bound
from repro.ip.qbf_protocol import (
    ConstantCheatingProver,
    HonestQBFProver,
    run_qbf_protocol,
)
from repro.ip.sumcheck import HonestSumcheckProver, run_sumcheck
from repro.mathx.modular import Field
from repro.qbf.generators import random_cnf, random_qbf, variable_names

F = Field()


def test_honest_prover_construction_n4(benchmark):
    qbf = random_qbf(random.Random(1), 4)
    benchmark(lambda: HonestQBFProver(qbf, F))


def test_full_protocol_n4(benchmark):
    qbf = random_qbf(random.Random(2), 4)
    prover = HonestQBFProver(qbf, F)

    def run():
        return run_qbf_protocol(qbf, prover, F, random.Random(3))

    result = benchmark(run)
    assert result.accepted


def test_full_protocol_n6(benchmark):
    qbf = random_qbf(random.Random(4), 6)
    prover = HonestQBFProver(qbf, F)

    def run():
        return run_qbf_protocol(qbf, prover, F, random.Random(5))

    result = benchmark(run)
    assert result.accepted


def test_sumcheck_n6(benchmark):
    formula = random_cnf(random.Random(6), 6, 8)
    order = variable_names(6)
    prover = HonestSumcheckProver(formula, F, order)

    def run():
        return run_sumcheck(formula, prover, F, order, random.Random(7))

    result = benchmark(run)
    assert result.accepted


def test_protocol_scaling_table(benchmark):
    def run_scaling():
        rows = []
        for n in (2, 3, 4, 5, 6):
            qbf = random_qbf(random.Random(n), n)
            prover = HonestQBFProver(qbf, F)
            result = run_qbf_protocol(qbf, prover, F, random.Random(n + 1))
            assert result.accepted
            rows.append(
                [
                    n,
                    len(operator_schedule(qbf)),
                    result.rounds_run,
                    f"{soundness_error_bound(qbf, F.p):.1e}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    emit(
        format_table(
            ["n vars", "operators", "rounds", "soundness error bound"],
            rows,
            title="IP scaling: TQBF protocol vs instance size (p = 2^31 - 1)",
        )
    )


def test_soundness_rate_small_field(benchmark):
    """Empirical cheater acceptance under GF(101) vs the deg/p bound."""
    small = Field(p=101)

    def measure():
        qbf = random_qbf(random.Random(11), 2)
        wrong = 1 - int(qbf.evaluate())
        trials = 300
        accepted = sum(
            run_qbf_protocol(
                qbf, ConstantCheatingProver(small, wrong), small,
                random.Random(t),
            ).accepted
            for t in range(trials)
        )
        return accepted / trials, soundness_error_bound(qbf, small.p)

    rate, bound = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        format_table(
            ["empirical cheater acceptance", "analytic bound"],
            [[f"{rate:.3f}", f"{bound:.3f}"]],
            title="IP soundness under GF(101) (acceptance should be ~bound, << 1)",
        )
    )
    assert rate <= bound * 3 + 0.02
