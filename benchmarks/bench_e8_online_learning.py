"""E8 — beyond enumeration: the online-learning equivalence (Juba–Vempala)
and prior-guided users (Juba–Sudan ICS'11).

Claim: on simple multi-session goals, the generic enumeration overhead
(mistakes ≈ index of the target) can be beaten by structure-aware users —
halving/weighted-majority make only O(log |class|) mistakes — and by
belief-weighted enumeration when the prior is informative.

Series: mistakes vs class size for (enumeration, halving, WM) at the
worst-case target (last index); table: prior quality ablation.

Expected shape: the enumeration curve grows linearly with the class size,
the learners' stay logarithmic (near-flat); informed priors collapse the
enumeration cost toward zero.
"""

from __future__ import annotations

import math

from conftest import emit

from repro.analysis.tables import format_table
from repro.core.execution import run_execution
from repro.core.strategy import SilentServer
from repro.online.adapter import threshold_user_class
from repro.online.equivalence import (
    enumeration_user,
    halving_user,
    mistakes_in_world,
    weighted_majority_user,
)
from repro.universal.bayesian import BeliefWeightedUniversalUser
from repro.worlds.lookup import lookup_goal, lookup_sensing

DOMAINS = (4, 8, 16, 32)


def run_scaling_series():
    rows = []
    for domain in DOMAINS:
        theta = domain - 1  # Worst case for the enumeration order.
        horizon = 250 * domain
        enum = mistakes_in_world(
            enumeration_user(domain), theta, domain, horizon=horizon, seed=1
        )
        halv = mistakes_in_world(
            halving_user(domain), theta, domain, horizon=horizon, seed=1
        )
        wm = mistakes_in_world(
            weighted_majority_user(domain), theta, domain, horizon=horizon, seed=1
        )
        rows.append([domain + 1, enum, halv, wm, round(math.log2(domain + 1), 1)])
    return rows


def run_prior_ablation():
    domain, theta = 16, 14
    horizon = 2500
    goal = lookup_goal(threshold=theta, domain=domain)
    rows = []
    for label, weight in (("uniform", 1.0), ("mildly informed", 8.0),
                          ("sharply informed", 64.0)):
        candidates = threshold_user_class(domain)
        prior = [1.0] * len(candidates)
        prior[theta] = weight
        user = BeliefWeightedUniversalUser(candidates, lookup_sensing(), prior=prior)
        result = run_execution(
            user, SilentServer(), goal.world, max_rounds=horizon, seed=2
        )
        assert goal.evaluate(result).achieved, label
        rows.append([label, result.final_world_state().mistakes])
    return rows


def test_e8_mistakes_scaling(benchmark):
    rows = benchmark.pedantic(run_scaling_series, rounds=1, iterations=1)
    emit(
        format_table(
            ["|class|", "enumeration", "halving", "weighted-maj", "log2|class|"],
            rows,
            title="E8a: mistakes vs class size (worst-case target)",
        )
    )
    enums = [row[1] for row in rows]
    halvs = [row[2] for row in rows]
    assert enums[-1] > 4 * enums[0]          # Linear growth.
    assert halvs[-1] <= math.log2(DOMAINS[-1] + 1) + 2  # Log bound.
    assert all(h < e for _, e, h, _, _ in [(r[0], r[1], r[2], r[3], r[4]) for r in rows[1:]])


def test_e8_prior_ablation(benchmark):
    rows = benchmark.pedantic(run_prior_ablation, rounds=1, iterations=1)
    emit(
        format_table(
            ["prior on true candidate", "mistakes"],
            rows,
            title="E8b: belief-weighted user, prior quality vs mistakes",
        )
    )
    mistakes = [row[1] for row in rows]
    assert mistakes[0] >= mistakes[1] >= mistakes[2]
    assert mistakes[2] < mistakes[0]
