"""Sweep-level performance: executor backends, recording, and batching.

Four questions, answered with tables and a JSON baseline
(``BENCH_sweep.json``, repo root):

1. Does the process-pool executor pay for itself?  A 4-worker sweep over
   8 independent cells must return the *same* :class:`SweepResult` as the
   serial reference — asserted unconditionally — and complete at least 2×
   faster when the machine actually has 4 cores (asserted only then:
   on a shared single-core runner the pool can only add overhead, which
   the table still reports honestly).  The executor is created once and
   reused across the timed repeats, so the number reflects the persistent
   pool, not per-call process spawning.
2. What does metrics-only recording save at sweep scale?
3. What do the cells cost per second, for capacity planning.
4. What does the vectorized lockstep backend buy?  A width sweep
   (1/64/1024) over the table-compilable relay grid, with the serial
   engine on the same grid as the reference — the ≥100× claim is gated
   here against the serial universal-grid figure from the same run.

Run with ``pytest benchmarks/bench_sweep.py -s``, or directly with
``python benchmarks/bench_sweep.py [--record BENCH_history.jsonl]`` to
refresh the baseline and stamp the figures into the bench history.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from conftest import emit

from repro.analysis.parallel import BatchProcessExecutor, ProcessExecutor
from repro.analysis.runner import merge_telemetry, sweep
from repro.analysis.tables import format_table
from repro.comm.codecs import codec_family
from repro.core.batch import HAVE_NUMPY
from repro.core.execution import FULL_RECORDING, METRICS_RECORDING
from repro.machines.tabular import (
    coded_server_class,
    relay_decoder_class,
    relay_goal,
)
from repro.servers.advisors import advisor_server_class
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import follower_user_class
from repro.worlds.control import control_goal, control_sensing, random_law

CODECS = codec_family(8)
LAW = random_law(random.Random(1))
GOAL = control_goal(LAW)
SERVERS = advisor_server_class(LAW, CODECS)  # 8 independent cells
HORIZON = 2000
SEEDS = (0, 1)
WORKERS = 4
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

#: The vectorizable relay grid (see repro.machines.tabular): one relay
#: decoder against the cyclic coded-server class, horizon as above.
RELAY_SYMBOLS = tuple("abcdefgh")
RELAY_GOAL = relay_goal(RELAY_SYMBOLS)
RELAY_SERVERS = coded_server_class(RELAY_SYMBOLS)
BATCH_WIDTHS = (1, 64, 1024)


def universal():
    return CompactUniversalUser(
        ListEnumeration(follower_user_class(CODECS), label="followers"),
        control_sensing(),
    )


def relay_user():
    return relay_decoder_class(RELAY_SYMBOLS)[0]


def relay_grid(n_cells):
    """``n_cells`` relay cells (the 8 coded servers, tiled)."""
    return [RELAY_SERVERS[i % len(RELAY_SERVERS)] for i in range(n_cells)]


def run_sweep(executor=None, recording=FULL_RECORDING, telemetry=False):
    return sweep(
        universal(), SERVERS, GOAL,
        seeds=SEEDS, max_rounds=HORIZON,
        telemetry=telemetry, recording=recording, executor=executor,
    )


def run_relay_sweep(n_cells, batch=None, executor=None):
    return sweep(
        relay_user(), relay_grid(n_cells), RELAY_GOAL,
        seeds=SEEDS, max_rounds=HORIZON, batch=batch, executor=executor,
    )


def timed(fn, repeats=2):
    """(best wall-clock seconds, last result) — min is the noise-robust
    estimator for "how fast can this go"."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _update_baseline(fields):
    """Merge ``fields`` into BENCH_sweep.json (bench tests compose it)."""
    payload = {}
    if BASELINE_PATH.exists():
        payload = json.loads(BASELINE_PATH.read_text())
    payload.update(fields)
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_sweep_backends_and_recording():
    cores = os.cpu_count() or 1
    cells = len(SERVERS)

    serial_s, serial = timed(lambda: run_sweep())
    # One executor across the repeats: the second call reuses the warm
    # pool, and min() picks it — the steady-state persistent-pool figure.
    executor = ProcessExecutor(max_workers=WORKERS)
    try:
        parallel_s, parallel = timed(lambda: run_sweep(executor=executor))
    finally:
        executor.close()
    metrics_s, lean = timed(lambda: run_sweep(recording=METRICS_RECORDING))

    # Correctness before speed: every backend/policy agrees exactly.
    assert parallel == serial, "process pool changed sweep results"
    assert lean == serial, "metrics recording changed sweep results"
    assert serial.universal_success

    speedup = serial_s / parallel_s
    recording_gain = serial_s / metrics_s
    rows = [
        ["serial / full", f"{serial_s:.3f}", f"{cells / serial_s:.1f}", "1.00"],
        [
            f"process×{WORKERS} / full",
            f"{parallel_s:.3f}",
            f"{cells / parallel_s:.1f}",
            f"{speedup:.2f}",
        ],
        [
            "serial / metrics",
            f"{metrics_s:.3f}",
            f"{cells / metrics_s:.1f}",
            f"{recording_gain:.2f}",
        ],
    ]
    emit(
        format_table(
            ["backend / recording", "seconds", "cells/s", "speedup"],
            rows,
            title=f"sweep throughput ({cells} cells, horizon={HORIZON}, "
                  f"{cores} cores)",
        )
    )

    _update_baseline(
        {
            "cells": cells,
            "horizon": HORIZON,
            "seeds": len(SEEDS),
            "cores": cores,
            "workers": WORKERS,
            "serial_s": round(serial_s, 4),
            "cells_per_s": round(cells / serial_s, 3),
            "parallel_s": round(parallel_s, 4),
            "parallel_speedup": round(speedup, 3),
            "metrics_recording_s": round(metrics_s, 4),
            "metrics_recording_speedup": round(recording_gain, 3),
        }
    )

    # The scaling gate only means something when the cores exist.
    if cores >= WORKERS:
        assert speedup >= 2.0, (
            f"{WORKERS}-worker speedup {speedup:.2f}x < 2x on {cores} cores"
        )


def test_batched_lockstep_throughput():
    """Width sweep for the vectorized lockstep backend, serial-referenced.

    Parity is asserted on the 64-cell grid (batched == serial sweep,
    cell by cell); throughput is measured per width on a grid of exactly
    ``width`` cells, so each figure is one kernel dispatch.  The ≥100×
    acceptance gate compares the widest batch against the *universal*
    serial figure recorded by the backend bench above — the committed
    capacity-planning baseline this issue targets.
    """
    if not HAVE_NUMPY:  # the scalar tiers are exercised by tests/core
        emit("batched bench skipped: numpy unavailable")
        return
    cores = os.cpu_count() or 1

    serial_s, serial = timed(lambda: run_relay_sweep(64), repeats=1)
    batched = run_relay_sweep(64, batch=64)
    assert batched == serial, "batched backend changed sweep results"

    relay_serial_cps = 64 / serial_s
    rows = [["serial", "-", f"{serial_s:.3f}", f"{relay_serial_cps:.1f}", "1.00"]]
    width_cps = {}
    for width in BATCH_WIDTHS:
        batch_s, _ = timed(lambda: run_relay_sweep(width, batch=width), repeats=1)
        cps = width / batch_s
        width_cps[width] = cps
        rows.append(
            [
                "batch", str(width), f"{batch_s:.3f}", f"{cps:.1f}",
                f"{cps / relay_serial_cps:.2f}",
            ]
        )
    emit(
        format_table(
            ["backend", "width", "seconds", "cells/s", "vs serial"],
            rows,
            title=f"batched relay throughput (horizon={HORIZON}, "
                  f"{len(RELAY_SYMBOLS)} symbols, {cores} cores)",
        )
    )

    top_width = max(BATCH_WIDTHS)
    batched_cps = width_cps[top_width]
    payload = _update_baseline(
        {
            "relay_cells_per_s": round(relay_serial_cps, 3),
            "batched_width": top_width,
            "batched_cells_per_s": round(batched_cps, 3),
            "batched_speedup_vs_relay_serial": round(
                batched_cps / relay_serial_cps, 3
            ),
        }
    )

    # The headline gate: vectorized lockstep vs the committed serial
    # capacity figure (the universal grid), same machine, same run.
    universal_cps = payload.get("cells_per_s")
    if universal_cps:
        ratio = batched_cps / universal_cps
        emit(
            f"batched({top_width}) = {batched_cps:.0f} cells/s — "
            f"{ratio:.0f}x the serial universal-grid baseline "
            f"({universal_cps:.1f} cells/s)"
        )
        assert ratio >= 100.0, (
            f"vectorized path {batched_cps:.0f} cells/s is only {ratio:.1f}x "
            f"the serial baseline {universal_cps:.1f} cells/s (need >= 100x)"
        )


def test_batch_process_composes():
    """Processes × lockstep parity (and an honest timing row)."""
    if not HAVE_NUMPY:
        emit("batch-process bench skipped: numpy unavailable")
        return
    cores = os.cpu_count() or 1
    executor = BatchProcessExecutor(max_workers=2, width=512)
    try:
        bp_s, composed = timed(
            lambda: run_relay_sweep(256, executor=executor), repeats=2
        )
    finally:
        executor.close()
    reference = run_relay_sweep(256, batch=512)
    assert composed == reference, "batch-process changed sweep results"
    emit(
        f"batch-process(2 workers x width 512): 256 cells in {bp_s:.3f}s "
        f"({256 / bp_s:.0f} cells/s, {cores} cores)"
    )


def test_parallel_telemetry_totals_match_serial():
    """Telemetry merged across workers equals the serial totals."""
    serial = run_sweep(telemetry=True)
    executor = ProcessExecutor(max_workers=WORKERS)
    try:
        parallel = run_sweep(telemetry=True, executor=executor)
    finally:
        executor.close()
    serial_totals = merge_telemetry([c.telemetry for c in serial.cells])
    parallel_totals = merge_telemetry([c.telemetry for c in parallel.cells])
    assert parallel_totals == serial_totals
    assert serial_totals.get("rounds") > 0


def main(argv=None):
    """Refresh BENCH_sweep.json outside pytest; optionally record history."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--record",
        type=Path,
        metavar="FILE",
        help="append the fresh figures to this bench-history JSONL file",
    )
    args = parser.parse_args(argv)
    test_sweep_backends_and_recording()
    test_batched_lockstep_throughput()
    test_batch_process_composes()
    if args.record is not None:
        from check_bench_regression import record_history

        record_history(
            args.record, json.loads(BASELINE_PATH.read_text()), BASELINE_PATH
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
