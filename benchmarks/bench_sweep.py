"""Sweep-level performance: executor backends and recording policies.

Three questions, answered with one table and a JSON baseline
(``BENCH_sweep.json``, repo root):

1. Does the process-pool executor pay for itself?  A 4-worker sweep over
   8 independent cells must return the *same* :class:`SweepResult` as the
   serial reference — asserted unconditionally — and complete at least 2×
   faster when the machine actually has 4 cores (asserted only then:
   on a shared single-core runner the pool can only add overhead, which
   the table still reports honestly).
2. What does metrics-only recording save at sweep scale?
3. What do the cells cost per second, for capacity planning.

Run with ``pytest benchmarks/bench_sweep.py -s``.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

from conftest import emit

from repro.analysis.parallel import ProcessExecutor
from repro.analysis.runner import merge_telemetry, sweep
from repro.analysis.tables import format_table
from repro.comm.codecs import codec_family
from repro.core.execution import FULL_RECORDING, METRICS_RECORDING
from repro.servers.advisors import advisor_server_class
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import follower_user_class
from repro.worlds.control import control_goal, control_sensing, random_law

CODECS = codec_family(8)
LAW = random_law(random.Random(1))
GOAL = control_goal(LAW)
SERVERS = advisor_server_class(LAW, CODECS)  # 8 independent cells
HORIZON = 2000
SEEDS = (0, 1)
WORKERS = 4
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


def universal():
    return CompactUniversalUser(
        ListEnumeration(follower_user_class(CODECS), label="followers"),
        control_sensing(),
    )


def run_sweep(executor=None, recording=FULL_RECORDING, telemetry=False):
    return sweep(
        universal(), SERVERS, GOAL,
        seeds=SEEDS, max_rounds=HORIZON,
        telemetry=telemetry, recording=recording, executor=executor,
    )


def timed(fn, repeats=2):
    """(best wall-clock seconds, last result) — min is the noise-robust
    estimator for "how fast can this go"."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_sweep_backends_and_recording():
    cores = os.cpu_count() or 1
    cells = len(SERVERS)

    serial_s, serial = timed(lambda: run_sweep())
    parallel_s, parallel = timed(
        lambda: run_sweep(executor=ProcessExecutor(max_workers=WORKERS))
    )
    metrics_s, lean = timed(lambda: run_sweep(recording=METRICS_RECORDING))

    # Correctness before speed: every backend/policy agrees exactly.
    assert parallel == serial, "process pool changed sweep results"
    assert lean == serial, "metrics recording changed sweep results"
    assert serial.universal_success

    speedup = serial_s / parallel_s
    recording_gain = serial_s / metrics_s
    rows = [
        ["serial / full", f"{serial_s:.3f}", f"{cells / serial_s:.1f}", "1.00"],
        [
            f"process×{WORKERS} / full",
            f"{parallel_s:.3f}",
            f"{cells / parallel_s:.1f}",
            f"{speedup:.2f}",
        ],
        [
            "serial / metrics",
            f"{metrics_s:.3f}",
            f"{cells / metrics_s:.1f}",
            f"{recording_gain:.2f}",
        ],
    ]
    emit(
        format_table(
            ["backend / recording", "seconds", "cells/s", "speedup"],
            rows,
            title=f"sweep throughput ({cells} cells, horizon={HORIZON}, "
                  f"{cores} cores)",
        )
    )

    BASELINE_PATH.write_text(
        json.dumps(
            {
                "cells": cells,
                "horizon": HORIZON,
                "seeds": len(SEEDS),
                "cores": cores,
                "workers": WORKERS,
                "serial_s": round(serial_s, 4),
                "cells_per_s": round(cells / serial_s, 3),
                "parallel_s": round(parallel_s, 4),
                "parallel_speedup": round(speedup, 3),
                "metrics_recording_s": round(metrics_s, 4),
                "metrics_recording_speedup": round(recording_gain, 3),
            },
            indent=2,
        )
        + "\n"
    )

    # The scaling gate only means something when the cores exist.
    if cores >= WORKERS:
        assert speedup >= 2.0, (
            f"{WORKERS}-worker speedup {speedup:.2f}x < 2x on {cores} cores"
        )


def test_parallel_telemetry_totals_match_serial():
    """Telemetry merged across workers equals the serial totals."""
    serial = run_sweep(telemetry=True)
    parallel = run_sweep(
        telemetry=True, executor=ProcessExecutor(max_workers=WORKERS)
    )
    serial_totals = merge_telemetry([c.telemetry for c in serial.cells])
    parallel_totals = merge_telemetry([c.telemetry for c in parallel.cells])
    assert parallel_totals == serial_totals
    assert serial_totals.get("rounds") > 0
