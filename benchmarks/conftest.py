"""Shared helpers for the benchmark/experiment harness.

Each ``bench_e*.py`` module reproduces one experiment from DESIGN.md's
index: it *benchmarks* the core computation (so pytest-benchmark reports
cost) and *prints* the experiment's table or series — the paper being a
theory paper, these tables are the reproduction targets recorded in
EXPERIMENTS.md.

Run with::

    pytest benchmarks/ --benchmark-only -s

(``-s`` shows the experiment tables; without it they are captured.)
"""

from __future__ import annotations

import sys


def emit(text: str) -> None:
    """Print an experiment table, flushed, with surrounding blank lines."""
    sys.stdout.write("\n" + text + "\n")
    sys.stdout.flush()
