"""E12 (extension) — delegation as a compact goal: answer forever.

Composes the paper's two goal families on one task: an endless stream of
TQBF sessions, each to be answered within a deadline, with compact
semantics (mistakes must stop).  A universal user pays the enumeration
overhead once — mistakes scale with the codec's index — and then verifies
proofs indefinitely with zero further errors.

Expected shape: achieved for every codec; sessions answered in the
hundreds; mistakes ≈ 2 × codec index (deadline expiries during discovery),
flat afterwards; a cheating prover gets *zero* answers accepted ever.
"""

from __future__ import annotations

import random

from conftest import emit

from repro.analysis.tables import format_table
from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.mathx.modular import Field
from repro.qbf.generators import random_qbf
from repro.servers.provers import CheatingProverServer, HonestProverServer
from repro.servers.wrappers import EncodedServer
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.delegation_users import repeated_delegation_user_class
from repro.worlds.repeated import (
    repeated_delegation_goal,
    repeated_delegation_sensing,
)

F = Field()
CODECS = codec_family(4)
INSTANCES = [random_qbf(random.Random(s), 3) for s in (1, 2, 5, 8)]
GOAL = repeated_delegation_goal(INSTANCES)
HORIZON = 5000


def universal():
    return CompactUniversalUser(
        ListEnumeration(repeated_delegation_user_class(CODECS, F), label="redelegates"),
        repeated_delegation_sensing(),
    )


def run_streaming_matrix():
    rows = []
    for index, codec in enumerate(CODECS):
        server = EncodedServer(HonestProverServer(F), codec)
        result = run_execution(
            universal(), server, GOAL.world, max_rounds=HORIZON, seed=index
        )
        outcome = GOAL.evaluate(result)
        state = result.final_world_state()
        rows.append(
            [server.name, outcome.achieved, state.answered, state.mistakes,
             result.rounds[-1].user_state_after.index]
        )
    cheater = CheatingProverServer(F, "constant")
    result = run_execution(
        universal(), cheater, GOAL.world, max_rounds=2000, seed=0
    )
    state = result.final_world_state()
    rows.append(
        [cheater.name, GOAL.evaluate(result).achieved, state.answered,
         state.mistakes, None]
    )
    return rows


def test_e12_streaming_delegation(benchmark):
    rows = benchmark.pedantic(run_streaming_matrix, rounds=1, iterations=1)
    emit(
        format_table(
            ["server", "achieved", "sessions answered", "mistakes", "settled idx"],
            rows,
            title=f"E12: streaming (compact) delegation, horizon {HORIZON}",
        )
    )
    honest = rows[:-1]
    assert all(r[1] for r in honest)
    assert all(r[2] > 50 for r in honest)
    # Mistakes track the enumeration position (deadline per evicted codec).
    assert honest[0][3] <= honest[1][3] <= honest[-1][3]
    # The cheater: zero sessions ever answered.
    assert rows[-1][2] == 0 and not rows[-1][1]
