"""Ablation — the sensing grace period (a DESIGN.md design choice).

The shipped sensing functions wrap world feedback in a trial-local grace
period, on the theory that a fresh candidate must not be condemned for the
previous candidate's stale in-flight mistakes (the "viability" concern of
Theorem 1's hypotheses).

**Finding:** in the final design the grace is *not* load-bearing — and this
ablation documents why.  Three structural mechanisms already isolate
trials: (1) *attribution* — acts/predictions/answers name what they answer
(``ACT:<obs>=..``, ``PRED:<x>=..``, ``ANSWER:<k>=..``), so a stale message
can never be mis-scored against fresh work; (2) *re-announcement* — worlds
keep announcing unanswered work, so a fresh candidate can still serve
items the evicted one abandoned; (3) *advance-on-score* — deadline
expiries open a fresh session/item, so the bad event that triggers a
switch also clears the stale state.  What remains of the grace period is
its cost: a failing candidate survives ``grace`` extra rounds, so mistakes
and settle time grow with it.

Expected shape: achieved at every grace value on both goals, with the
error/settle columns weakly increasing in grace.  (In an earlier design
with bare FIFO scoring, grace=0 cycled forever — the regression tests in
``tests/worlds/test_control.py::TestScoring`` pin the attribution
mechanics that retired it.)

Where grace still earns its keep is *server noise*: against an
intermittent advisor, grace=0 converges but churns (extra switches and
enumeration wraps while the advisor is dead), while a modest grace rides
out the off-phases — see
``tests/integration/test_robustness.py::TestControlUnderFaults``.
"""

from __future__ import annotations

import random

from conftest import emit

from repro.analysis.tables import format_table
from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.core.strategy import SilentServer
from repro.online.adapter import threshold_user_class
from repro.servers.advisors import advisor_server_class
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import follower_user_class
from repro.worlds.control import control_goal, control_sensing, random_law
from repro.worlds.lookup import lookup_goal, lookup_sensing

GRACES = (0, 2, 6, 14, 30, 60)

CODECS = codec_family(6)
LAW = random_law(random.Random(13))
CONTROL_GOAL = control_goal(LAW)
CONTROL_SERVER = advisor_server_class(LAW, CODECS)[-1]

LOOKUP_GOAL = lookup_goal(threshold=12, domain=16)


def run_grace_sweep():
    rows = []
    for grace in GRACES:
        user = CompactUniversalUser(
            ListEnumeration(follower_user_class(CODECS)),
            control_sensing(grace_rounds=grace),
        )
        result = run_execution(
            user, CONTROL_SERVER, CONTROL_GOAL.world, max_rounds=3000, seed=2
        )
        outcome = CONTROL_GOAL.evaluate(result)
        state = result.rounds[-1].user_state_after
        rows.append(
            ["control", grace, outcome.achieved, state.wraps,
             outcome.compact_verdict.last_bad_round or 0]
        )
    for grace in GRACES:
        user = CompactUniversalUser(
            ListEnumeration(threshold_user_class(16)),
            lookup_sensing(grace_rounds=grace),
        )
        result = run_execution(
            user, SilentServer(), LOOKUP_GOAL.world, max_rounds=3000, seed=1
        )
        outcome = LOOKUP_GOAL.evaluate(result)
        state = result.rounds[-1].user_state_after
        rows.append(
            ["lookup", grace, outcome.achieved, state.wraps,
             result.final_world_state().mistakes]
        )
    return rows


def test_ablation_grace_period(benchmark):
    rows = benchmark.pedantic(run_grace_sweep, rounds=1, iterations=1)
    emit(
        format_table(
            ["goal", "grace rounds", "achieved", "wraps", "settle/mistakes"],
            rows,
            title="Ablation: grace period — structural isolation makes it "
                  "pure cost",
        )
    )
    # Viability holds at every grace value, including zero.
    assert all(row[2] for row in rows)
    assert all(row[3] == 0 for row in rows)
    # Grace is a cost: the error/settle column weakly increases in grace.
    for goal_name in ("control", "lookup"):
        series = [row[4] for row in rows if row[0] == goal_name]
        assert series[0] <= series[-1]
        assert all(b >= a for a, b in zip(series, series[1:]))
