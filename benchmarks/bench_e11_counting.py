"""E11 (extension) — #SAT delegation via sumcheck.

The TQBF experiment (E5) with the other classic interactive proof: the
world asks for the number of satisfying assignments, the prover proves its
count by sumcheck.  Includes the modular-overflow adversary — a prover
whose *proof is honest* but whose claimed integer is ``count + p`` — which
only the verifier's range check stops.

Expected shape: mirror of E5 — universal success over honest encoded
counters, zero wrong counts against every adversary.
"""

from __future__ import annotations

import random

from conftest import emit

from repro.analysis.tables import format_table
from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.mathx.modular import Field
from repro.qbf.generators import random_cnf
from repro.servers.counting_provers import (
    CheatingCountingServer,
    HonestCountingServer,
    OverflowCountingServer,
)
from repro.servers.wrappers import EncodedServer
from repro.universal.enumeration import ListEnumeration
from repro.universal.finite import FiniteUniversalUser
from repro.universal.schedules import doubling_sweep_trials
from repro.users.counting_users import counting_user_class
from repro.worlds.counting import counting_goal, counting_sensing

F = Field()
CODECS = codec_family(4)
INSTANCES = [random_cnf(random.Random(s), 5, 7) for s in (0, 4, 9)]
GOAL = counting_goal(INSTANCES)


def universal():
    return FiniteUniversalUser(
        ListEnumeration(counting_user_class(CODECS, F), label="counters"),
        counting_sensing(),
        schedule_factory=lambda cap: doubling_sweep_trials(
            None if cap is None else cap - 1
        ),
    )


def run_counting_matrix():
    rows = []
    for codec in CODECS:
        server = EncodedServer(HonestCountingServer(F), codec)
        result = run_execution(
            universal(), server, GOAL.world, max_rounds=6000, seed=1
        )
        outcome = GOAL.evaluate(result)
        rows.append(
            ["honest", server.name, result.halted, outcome.achieved,
             result.user_output]
        )
    adversaries = [
        CheatingCountingServer(F, "inflate"),
        CheatingCountingServer(F, "adaptive"),
        OverflowCountingServer(F),
    ]
    for server in adversaries:
        result = run_execution(
            universal(), server, GOAL.world, max_rounds=3000, seed=1
        )
        outcome = GOAL.evaluate(result)
        rows.append(
            ["adversary", server.name, result.halted, outcome.achieved,
             result.user_output]
        )
    return rows


def test_e11_counting_delegation(benchmark):
    rows = benchmark.pedantic(run_counting_matrix, rounds=1, iterations=1)
    emit(
        format_table(
            ["kind", "server", "halted", "achieved", "output"],
            rows,
            title=f"E11: #SAT delegation via sumcheck (n_vars=5)",
        )
    )
    honest = [r for r in rows if r[0] == "honest"]
    adversarial = [r for r in rows if r[0] == "adversary"]
    assert all(r[3] for r in honest)
    # Adversaries may stall the user, but never extract a wrong count.
    assert all((not r[2]) or r[3] for r in adversarial)
