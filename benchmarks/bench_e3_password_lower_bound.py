"""E3 — the enumeration overhead is necessary: password-locked servers.

Paper claim: "the overhead introduced by the enumeration is essentially
necessary; there exist natural cases in which any universal strategy must
incur such an overhead."  Against 2^k password-locked (but otherwise
helpful) advisors, candidates are indistinguishable until the right
password is uttered, so information-theoretically *any* universal user
needs (2^k+1)/2 expected password trials against a uniform member.

The series reports, per password length k: mean and worst switches (i.e.
passwords tried) and mean settle round, against members sampled uniformly.

Expected shape: both curves double (≈ 2^k) with each extra bit, hugging
the (2^k−1)/2 mean envelope — exponential, not an artifact of a bad
algorithm.
"""

from __future__ import annotations

import random
import statistics

from conftest import emit

from repro.analysis.tables import format_table
from repro.comm.codecs import IdentityCodec
from repro.core.execution import run_execution
from repro.servers.password import password_server_class
from repro.servers.password import all_passwords
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import AdvisorFollowingUser, password_user_class
from repro.worlds.control import control_goal, control_sensing

LAW = {"red": "blue", "blue": "red"}
GOAL = control_goal(LAW)
BITS_RANGE = (2, 3, 4, 5)
SAMPLES_PER_BITS = 6


def universal_for(bits):
    users = password_user_class(
        all_passwords(bits), lambda: AdvisorFollowingUser(IdentityCodec())
    )
    return CompactUniversalUser(
        ListEnumeration(users, label=f"pw{bits}"), control_sensing()
    )


def run_password_sweep():
    rows = []
    rng = random.Random(0)
    for bits in BITS_RANGE:
        servers = password_server_class(bits, LAW)
        horizon = 1200 * (2 ** bits)
        switches = []
        settle_rounds = []
        for sample in range(SAMPLES_PER_BITS):
            server = servers[rng.randrange(len(servers))]
            result = run_execution(
                universal_for(bits), server, GOAL.world,
                max_rounds=horizon, seed=sample,
            )
            outcome = GOAL.evaluate(result)
            assert outcome.achieved, (bits, server.name)
            state = result.rounds[-1].user_state_after
            switches.append(state.switches)
            settle_rounds.append(outcome.compact_verdict.last_bad_round or 0)
        envelope = (2 ** bits - 1) / 2
        rows.append(
            [
                bits,
                2 ** bits,
                statistics.mean(switches),
                max(switches),
                statistics.mean(settle_rounds),
                envelope,
            ]
        )
    return rows


def test_e3_password_lower_bound(benchmark):
    rows = benchmark.pedantic(run_password_sweep, rounds=1, iterations=1)
    emit(
        format_table(
            ["k bits", "|class|", "mean trials", "worst trials",
             "mean settle round", "envelope (2^k-1)/2"],
            rows,
            title="E3: rounds-to-success vs password length "
                  "(uniform member, enumeration user)",
        )
    )
    # Exponential shape: mean trials roughly doubles per bit.
    means = [row[2] for row in rows]
    assert means[-1] > 3 * means[0]
    # Means sit inside a generous band around the information envelope.
    for row in rows:
        assert 0.2 * row[5] <= row[2] <= 2.5 * row[5] + 1
