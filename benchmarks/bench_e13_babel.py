"""E13 (extension) — Theorem 1 through the multiparty reduction.

A newcomer joins a community whose members coordinate in a shared language
the newcomer does not know.  The footnote-1 reduction boxes the community
as one composite server; the compact universal user then enumerates
candidate languages and the world's agreement feedback drives switching.

Expected shape: the newcomer joins every community, settling on exactly
the community's language; rounds-to-agreement grow linearly with the
language's enumeration position and mildly with community size.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.tables import format_table
from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.multiparty.babel import (
    agreement_sensing,
    babel_rendezvous_goal,
    babel_server,
    babel_user_class,
    community_names,
)
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration

CODECS = codec_family(5)
SYMBOLS = ["red", "green", "blue"]


def run_babel_matrix():
    rows = []
    for size in (3, 5):
        names = community_names(size)
        # A short warmup makes the learning phase visible in the "agreed by
        # round" column instead of hiding it under the referee's tolerance.
        goal = babel_rendezvous_goal(names, warmup=6)
        for index, codec in enumerate(CODECS):
            server = babel_server(codec, names, SYMBOLS)
            universal = CompactUniversalUser(
                ListEnumeration(babel_user_class(CODECS, names)),
                agreement_sensing(),
            )
            result = run_execution(
                universal, server, goal.world, max_rounds=1500, seed=index
            )
            outcome = goal.evaluate(result)
            state = result.rounds[-1].user_state_after
            settle = (
                outcome.compact_verdict.last_bad_round
                if outcome.compact_verdict is not None else None
            )
            rows.append(
                [size, codec.name, outcome.achieved, state.index, settle or 0]
            )
    return rows


def test_e13_babel_rendezvous(benchmark):
    rows = benchmark.pedantic(run_babel_matrix, rounds=1, iterations=1)
    emit(
        format_table(
            ["community size", "language", "joined", "settled idx", "agreed by round"],
            rows,
            title="E13: universal newcomer vs communities of unknown language",
        )
    )
    assert all(row[2] for row in rows)
    # Settles on exactly the community's language, in enumeration order.
    for size in (3, 5):
        series = [row for row in rows if row[0] == size]
        assert [row[3] for row in series] == list(range(len(CODECS)))
        settles = [row[4] for row in series]
        assert settles[-1] > settles[0]
