"""Micro-benchmarks of the execution engine and codec substrate.

Baseline numbers for everything else: raw engine round throughput, the
cost codec wrapping adds per round, universal-user overhead per round,
and the tracing layer's overhead in its three modes (off / no-op / live)
— useful when judging whether an experiment's horizon is engine-bound and
whether leaving telemetry on for a sweep is affordable.
"""

from __future__ import annotations

import random
import time
import tracemalloc
from pathlib import Path

from conftest import emit

from repro.comm.codecs import ComposedCodec, ReverseCodec, XorMaskCodec, codec_family
from repro.core.execution import FULL_RECORDING, METRICS_RECORDING, run_execution
from repro.core.strategy import SilentServer, SilentUser
from repro.obs import MemorySink, NoopTracer, Tracer
from repro.servers.advisors import AdvisorServer, advisor_server_class
from repro.servers.wrappers import EncodedServer
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import AdvisorFollowingUser, follower_user_class
from repro.worlds.control import ControlWorld, control_goal, control_sensing

LAW = {"red": "blue", "blue": "green", "green": "red"}
ROUNDS = 2000


def test_engine_raw_rounds(benchmark):
    """Throughput with trivial strategies: the engine's own overhead."""
    world = ControlWorld(LAW)

    def run():
        return run_execution(
            SilentUser(), SilentServer(), world, max_rounds=ROUNDS, seed=0
        )

    result = benchmark(run)
    assert result.rounds_executed == ROUNDS


def test_engine_active_pairing(benchmark):
    """Throughput with a live follower/advisor conversation."""
    goal = control_goal(LAW)
    from repro.comm.codecs import IdentityCodec

    def run():
        return run_execution(
            AdvisorFollowingUser(IdentityCodec()), AdvisorServer(LAW),
            goal.world, max_rounds=ROUNDS, seed=0,
        )

    result = benchmark(run)
    assert goal.evaluate(result).achieved


def test_engine_universal_settled(benchmark):
    """Per-round overhead of the universal wrapper after settling."""
    goal = control_goal(LAW)
    codecs = codec_family(4)
    user = CompactUniversalUser(
        ListEnumeration(follower_user_class(codecs)), control_sensing()
    )
    server = advisor_server_class(LAW, codecs)[0]

    def run():
        return run_execution(user, server, goal.world, max_rounds=ROUNDS, seed=0)

    result = benchmark(run)
    assert goal.evaluate(result).achieved


def _active_run(tracer):
    """One live follower/advisor execution under the given tracer mode."""
    goal = control_goal(LAW)
    from repro.comm.codecs import IdentityCodec

    result = run_execution(
        AdvisorFollowingUser(IdentityCodec()), AdvisorServer(LAW),
        goal.world, max_rounds=ROUNDS, seed=0, tracer=tracer,
    )
    assert goal.evaluate(result).achieved
    return result


def test_tracing_off_baseline(benchmark):
    """``tracer=None``: the default path every experiment runs on."""
    benchmark(lambda: _active_run(None))


def test_tracing_noop_overhead(benchmark):
    """``NoopTracer``: must cost one hoisted branch, nothing more."""
    tracer = NoopTracer()
    benchmark(lambda: _active_run(tracer))


def test_tracing_live_memory_sink(benchmark):
    """Full tracing into a bounded ring buffer: the worst-case mode."""

    def run():
        tracer = Tracer(sink=MemorySink(capacity=4 * ROUNDS))
        return _active_run(tracer)

    benchmark(run)


def test_tracing_noop_within_five_percent():
    """Acceptance gate: NoopTracer ≤ 5% over tracer=None.

    Measured directly (not via the benchmark fixture) so the assertion
    also runs in plain test mode.  Compares best-of-N over interleaved
    repeats — the minimum is the standard noise-robust estimator for "how
    fast can this go", which is the quantity the 5% bound is about.
    """
    _active_run(None)  # Warm caches before timing.
    noop = NoopTracer()
    off_times, noop_times = [], []
    for _ in range(9):
        start = time.perf_counter()
        _active_run(None)
        off_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        _active_run(noop)
        noop_times.append(time.perf_counter() - start)
    off, on = min(off_times), min(noop_times)
    assert on <= off * 1.05, f"noop tracer overhead {on / off - 1:.1%} > 5%"


def test_engine_raw_rounds_metrics_recording(benchmark):
    """Raw-round throughput under the lean recording policy."""
    world = ControlWorld(LAW)

    def run():
        return run_execution(
            SilentUser(), SilentServer(), world, max_rounds=ROUNDS, seed=0,
            recording=METRICS_RECORDING,
        )

    result = benchmark(run)
    assert result.rounds_executed == ROUNDS
    assert result.rounds == []


def test_metrics_recording_reduces_allocations():
    """Acceptance gate: METRICS retains a fraction of FULL's allocations.

    Measured with tracemalloc over the raw-rounds run: FULL keeps one
    RoundRecord + ViewRecord (plus inbox/outbox tuples) per round, METRICS
    keeps counters and world states only.  The documented numbers live in
    ``docs/PERFORMANCE.md``; the gate asserts the ratio, not absolutes.
    """
    world = ControlWorld(LAW)

    def traced_run(recording):
        run_execution(  # warm allocator and caches outside the window
            SilentUser(), SilentServer(), world, max_rounds=ROUNDS, seed=0,
            recording=recording,
        )
        tracemalloc.start()
        result = run_execution(
            SilentUser(), SilentServer(), world, max_rounds=ROUNDS, seed=0,
            recording=recording,
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert result.rounds_executed == ROUNDS
        return peak

    full_peak = traced_run(FULL_RECORDING)
    metrics_peak = traced_run(METRICS_RECORDING)
    emit(
        f"raw-rounds peak allocations over {ROUNDS} rounds: "
        f"full={full_peak / 1024:.0f} KiB, metrics={metrics_peak / 1024:.0f} KiB "
        f"({full_peak / metrics_peak:.1f}x less retained)"
    )
    assert metrics_peak < full_peak / 2, (
        f"metrics recording retained {metrics_peak}B vs full {full_peak}B"
    )


def test_incremental_sensing_per_round_cost_is_flat():
    """Acceptance gate: doubling the horizon less-than-doubles round cost.

    The universal user evaluates sensing every round; with the
    O(len(view)) ``indicate`` path that made a T-round trial quadratic —
    per-round cost at horizon 2H would be ~2x the cost at H.  The
    incremental monitors make it O(1), so per-round cost must stay flat.
    Best-of-N over interleaved repeats, same estimator as the tracing
    gate above.
    """
    goal = control_goal(LAW)
    codecs = codec_family(4)
    server = advisor_server_class(LAW, codecs)[0]

    def per_round_cost(horizon):
        user = CompactUniversalUser(
            ListEnumeration(follower_user_class(codecs)), control_sensing()
        )
        start = time.perf_counter()
        result = run_execution(
            user, server, goal.world, max_rounds=horizon, seed=0
        )
        elapsed = time.perf_counter() - start
        assert result.rounds_executed == horizon
        return elapsed / horizon

    short_horizon, long_horizon = 1500, 3000
    per_round_cost(long_horizon)  # Warm caches before timing.
    short_times, long_times = [], []
    for _ in range(7):
        short_times.append(per_round_cost(short_horizon))
        long_times.append(per_round_cost(long_horizon))
    short, long_ = min(short_times), min(long_times)
    emit(
        f"universal per-round cost: {short * 1e6:.2f}us @ {short_horizon} rounds, "
        f"{long_ * 1e6:.2f}us @ {long_horizon} rounds (ratio {long_ / short:.2f})"
    )
    assert long_ < short * 1.5, (
        f"per-round cost grew {long_ / short:.2f}x when the horizon doubled "
        "— sensing is no longer O(1) per round"
    )


CERTIFY_TRACE = Path(__file__).parent / "data" / "certify_demo.jsonl"


def test_certify_trace_throughput(benchmark):
    """End-to-end certification of the committed demo trace."""
    from repro.obs.certify import certify_trace

    report = benchmark(lambda: certify_trace(CERTIFY_TRACE))
    assert report.ok, report.format()


def test_certify_overhead_within_four_x_of_parsing():
    """Acceptance gate: certify ≤ 4x the cost of merely reading the trace.

    The checker replays seeds, faults, switches, and verdict arithmetic
    on top of the JSONL parse, so it can never beat ``read_trace`` — but
    if it drifts past a small multiple of the parse cost, certifying
    every CI trace stops being free and the gate should catch the
    regression.  Best-of-N over interleaved repeats, same estimator as
    the tracing gate above.
    """
    from repro.obs.certify import certify_trace
    from repro.obs.sinks import read_trace

    certify_trace(CERTIFY_TRACE)  # Warm caches before timing.
    read_times, certify_times = [], []
    for _ in range(7):
        start = time.perf_counter()
        read_trace(CERTIFY_TRACE)
        read_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        report = certify_trace(CERTIFY_TRACE)
        certify_times.append(time.perf_counter() - start)
    assert report.ok, report.format()
    read, certify = min(read_times), min(certify_times)
    emit(
        f"certify {certify * 1e3:.1f}ms vs read {read * 1e3:.1f}ms over "
        f"{report.events} events ({certify / read:.1f}x)"
    )
    assert certify <= read * 4.0, (
        f"certify took {certify / read:.1f}x the parse time — "
        "the checker grew a superlinear pass"
    )


def test_codec_roundtrip_throughput(benchmark):
    codec = ComposedCodec((ReverseCodec(), XorMaskCodec(mask=0x3C)))
    message = "ADV:observation=action " * 4

    def run():
        return codec.decode(codec.encode(message))

    assert benchmark(run) == message


def test_encoded_server_wrapping_cost(benchmark):
    """Marginal cost of the EncodedServer wrapper on a chatty server."""
    from repro.comm.messages import ServerInbox

    server = EncodedServer(AdvisorServer(LAW), ReverseCodec())
    rng = random.Random(0)
    state = server.initial_state(rng)
    inbox = ServerInbox(from_world="OBS:red")

    def run():
        return server.step(state, inbox, rng)

    _, out = benchmark(run)
    assert out.to_user
