"""Micro-benchmarks of the execution engine and codec substrate.

Baseline numbers for everything else: raw engine round throughput, the
cost codec wrapping adds per round, and universal-user overhead per round
— useful when judging whether an experiment's horizon is engine-bound.
"""

from __future__ import annotations

import random

from repro.comm.codecs import ComposedCodec, ReverseCodec, XorMaskCodec, codec_family
from repro.core.execution import run_execution
from repro.core.strategy import SilentServer, SilentUser
from repro.servers.advisors import AdvisorServer, advisor_server_class
from repro.servers.wrappers import EncodedServer
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import AdvisorFollowingUser, follower_user_class
from repro.worlds.control import ControlWorld, control_goal, control_sensing

LAW = {"red": "blue", "blue": "green", "green": "red"}
ROUNDS = 2000


def test_engine_raw_rounds(benchmark):
    """Throughput with trivial strategies: the engine's own overhead."""
    world = ControlWorld(LAW)

    def run():
        return run_execution(
            SilentUser(), SilentServer(), world, max_rounds=ROUNDS, seed=0
        )

    result = benchmark(run)
    assert result.rounds_executed == ROUNDS


def test_engine_active_pairing(benchmark):
    """Throughput with a live follower/advisor conversation."""
    goal = control_goal(LAW)
    from repro.comm.codecs import IdentityCodec

    def run():
        return run_execution(
            AdvisorFollowingUser(IdentityCodec()), AdvisorServer(LAW),
            goal.world, max_rounds=ROUNDS, seed=0,
        )

    result = benchmark(run)
    assert goal.evaluate(result).achieved


def test_engine_universal_settled(benchmark):
    """Per-round overhead of the universal wrapper after settling."""
    goal = control_goal(LAW)
    codecs = codec_family(4)
    user = CompactUniversalUser(
        ListEnumeration(follower_user_class(codecs)), control_sensing()
    )
    server = advisor_server_class(LAW, codecs)[0]

    def run():
        return run_execution(user, server, goal.world, max_rounds=ROUNDS, seed=0)

    result = benchmark(run)
    assert goal.evaluate(result).achieved


def test_codec_roundtrip_throughput(benchmark):
    codec = ComposedCodec((ReverseCodec(), XorMaskCodec(mask=0x3C)))
    message = "ADV:observation=action " * 4

    def run():
        return codec.decode(codec.encode(message))

    assert benchmark(run) == message


def test_encoded_server_wrapping_cost(benchmark):
    """Marginal cost of the EncodedServer wrapper on a chatty server."""
    from repro.comm.messages import ServerInbox

    server = EncodedServer(AdvisorServer(LAW), ReverseCodec())
    rng = random.Random(0)
    state = server.initial_state(rng)
    inbox = ServerInbox(from_world="OBS:red")

    def run():
        return server.step(state, inbox, rng)

    _, out = benchmark(run)
    assert out.to_user
