"""E4 — overhead tracks enumeration position.

Claim: the universal user's cost is governed by the index of the first
adequate strategy in its enumeration (the constant the follow-up works on
priors/beliefs attack).  We plant the matching codec at positions 0..N−1 of
the class and report switches and settle round per position.

Expected shape: switches = position exactly; settle round grows linearly.
"""

from __future__ import annotations

import random

from conftest import emit

from repro.analysis.tables import format_series
from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.servers.advisors import advisor_server_class
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import follower_user_class
from repro.worlds.control import control_goal, control_sensing, random_law

CODECS = codec_family(10)
LAW = random_law(random.Random(3))
GOAL = control_goal(LAW)
SERVERS = advisor_server_class(LAW, CODECS)


def run_position_sweep():
    user_class = follower_user_class(CODECS)
    points = []
    for position in range(len(SERVERS)):
        user = CompactUniversalUser(
            ListEnumeration(user_class), control_sensing()
        )
        result = run_execution(
            user, SERVERS[position], GOAL.world, max_rounds=4000, seed=position
        )
        outcome = GOAL.evaluate(result)
        assert outcome.achieved, position
        settle = outcome.compact_verdict.last_bad_round or 0
        points.append((position, settle))
    return points


def test_e4_overhead_vs_position(benchmark):
    points = benchmark.pedantic(run_position_sweep, rounds=1, iterations=1)
    emit(
        format_series(
            "E4: settle round vs enumeration position of the adequate codec",
            points,
            x_label="position",
            y_label="settle round",
        )
    )
    settles = [y for _, y in points]
    # Monotone (weakly) and roughly linear: the last position costs at
    # least 5x the second one, and each step is bounded.
    assert all(b >= a for a, b in zip(settles, settles[1:]))
    assert settles[-1] >= 5 * max(1, settles[1])
