"""E4 — overhead tracks enumeration position.

Claim: the universal user's cost is governed by the index of the first
adequate strategy in its enumeration (the constant the follow-up works on
priors/beliefs attack).  We plant the matching codec at positions 0..N−1 of
the class and report the measured enumeration overhead per position,
using the trace-level accounting in :mod:`repro.obs.overhead` — the same
`OverheadReport` the `python -m repro.obs overhead` CLI prints — rather
than re-deriving counts from referee verdicts.

Expected shape: switches = position exactly; overhead rounds grow
linearly with the position.
"""

from __future__ import annotations

import random

from conftest import emit

from repro.analysis.tables import format_series
from repro.comm.codecs import codec_family
from repro.core.execution import run_execution
from repro.obs import MemorySink, Tracer
from repro.obs.overhead import compute_overhead
from repro.servers.advisors import advisor_server_class
from repro.universal.compact import CompactUniversalUser
from repro.universal.enumeration import ListEnumeration
from repro.users.control_users import follower_user_class
from repro.worlds.control import control_goal, control_sensing, random_law

CODECS = codec_family(10)
LAW = random_law(random.Random(3))
GOAL = control_goal(LAW)
SERVERS = advisor_server_class(LAW, CODECS)


def run_position_sweep():
    user_class = follower_user_class(CODECS)
    points = []
    for position in range(len(SERVERS)):
        sink = MemorySink()
        tracer = Tracer(sink=sink)
        user = CompactUniversalUser(
            ListEnumeration(user_class), control_sensing(), tracer=tracer
        )
        result = run_execution(
            user, SERVERS[position], GOAL.world,
            max_rounds=4000, seed=position, tracer=tracer,
        )
        outcome = GOAL.evaluate(result)
        assert outcome.achieved, position
        report = compute_overhead(sink.events)
        # The accounting agrees with the user's own terminal statistics.
        assert report.switches == position, (report.switches, position)
        assert report.settled_index == position
        assert report.total_rounds == result.rounds_executed
        points.append((position, report.overhead_rounds))
    return points


def test_e4_overhead_vs_position(benchmark):
    points = benchmark.pedantic(run_position_sweep, rounds=1, iterations=1)
    emit(
        format_series(
            "E4: overhead rounds vs enumeration position of the adequate codec",
            points,
            x_label="position",
            y_label="overhead rounds",
        )
    )
    overheads = [y for _, y in points]
    # Position 0 pays nothing; after that, monotone (weakly) and roughly
    # linear: the last position costs at least 5x the second one.
    assert overheads[0] == 0
    assert all(b >= a for a, b in zip(overheads, overheads[1:]))
    assert overheads[-1] >= 5 * max(1, overheads[1])
